"""Byzantine placement strategies.

The theorems hold for *adversarially placed* Byzantine nodes, so experiments
exercise several qualitatively different placements.  Each function returns a
set of node indices of the requested size.
"""

from __future__ import annotations

import random
from typing import Optional, Set

from repro.graphs.graph import Graph
from repro.graphs.neighborhoods import ball

__all__ = [
    "random_placement",
    "clustered_placement",
    "cut_placement",
    "high_degree_placement",
    "spread_placement",
]


def _check_budget(graph: Graph, count: int) -> int:
    if count < 0:
        raise ValueError("number of Byzantine nodes must be non-negative")
    return min(count, graph.n)


def random_placement(graph: Graph, count: int, *, seed: Optional[int] = None) -> Set[int]:
    """``count`` nodes chosen uniformly at random (the prior work [14]'s model)."""
    count = _check_budget(graph, count)
    rng = random.Random(seed)
    return set(rng.sample(range(graph.n), count))


def clustered_placement(graph: Graph, count: int, *, seed: Optional[int] = None) -> Set[int]:
    """``count`` nodes forming a BFS ball around a random center.

    This is the Remark 1 worst case: the corrupted nodes surround a region of
    good nodes and control everything those good nodes learn about the rest of
    the network.
    """
    count = _check_budget(graph, count)
    if count == 0:
        return set()
    rng = random.Random(seed)
    center = rng.randrange(graph.n)
    chosen: Set[int] = set()
    radius = 0
    while len(chosen) < count and radius <= graph.n:
        shell = ball(graph, center, radius)
        for node in sorted(shell):
            if len(chosen) >= count:
                break
            chosen.add(node)
        radius += 1
    return chosen


def cut_placement(graph: Graph, count: int, *, seed: Optional[int] = None) -> Set[int]:
    """``count`` nodes straddling a (heuristic) sparse cut of the graph.

    Grows a BFS ball around a random center until it covers roughly half the
    nodes, then corrupts the boundary vertices of that ball (inside first).
    In a bottleneck graph (barbell, chained copies) this captures the actual
    cut; in an expander it corrupts a shell, which is a natural "separate the
    network" attempt.
    """
    count = _check_budget(graph, count)
    if count == 0:
        return set()
    rng = random.Random(seed)
    center = rng.randrange(graph.n)
    dist = graph.bfs_distances(center)
    reachable = [u for u in range(graph.n) if dist[u] >= 0]
    reachable.sort(key=lambda u: dist[u])
    half = len(reachable) // 2
    inner = set(reachable[:half])
    boundary = [u for u in inner for v in graph.neighbors(u) if v not in inner]
    # Deduplicate while preserving order, then fill from just inside the cut.
    ordered: list = []
    seen: Set[int] = set()
    for u in boundary:
        if u not in seen:
            seen.add(u)
            ordered.append(u)
    for u in reversed(reachable[:half]):
        if u not in seen:
            seen.add(u)
            ordered.append(u)
    return set(ordered[:count])


def high_degree_placement(graph: Graph, count: int, *, seed: Optional[int] = None) -> Set[int]:
    """``count`` nodes of highest degree (ties broken randomly).

    Irrelevant for regular graphs but meaningful for the irregular topologies
    (stars, barbells) used in the negative-control experiments.
    """
    count = _check_budget(graph, count)
    rng = random.Random(seed)
    nodes = list(range(graph.n))
    rng.shuffle(nodes)
    nodes.sort(key=lambda u: -graph.degree(u))
    return set(nodes[:count])


def spread_placement(graph: Graph, count: int, *, seed: Optional[int] = None) -> Set[int]:
    """``count`` nodes chosen greedily to be pairwise far apart.

    Maximizes the contaminated area ``B(Byz, r)`` for a given budget, the
    placement that stresses Lemma 1's ``Good``-set construction hardest.
    """
    count = _check_budget(graph, count)
    if count == 0:
        return set()
    rng = random.Random(seed)
    chosen = {rng.randrange(graph.n)}
    # Iteratively add the node maximizing its distance to the chosen set.
    dist_to_chosen = graph.bfs_distances(next(iter(chosen)))
    while len(chosen) < count:
        best_node = max(
            (u for u in range(graph.n) if u not in chosen),
            key=lambda u: dist_to_chosen[u] if dist_to_chosen[u] >= 0 else -1,
        )
        chosen.add(best_node)
        new_dist = graph.bfs_distances(best_node)
        dist_to_chosen = [
            min(a, b) if a >= 0 and b >= 0 else max(a, b)
            for a, b in zip(dist_to_chosen, new_dist)
        ]
    return chosen
