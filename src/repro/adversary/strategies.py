"""Byzantine behaviour strategies.

Each strategy is an :class:`~repro.adversary.base.Adversary` whose ``act``
method decides what every corrupted node sends in the current round, with full
knowledge of the topology, all honest states, and the honest messages of the
round.  Strategies target specific protocols:

=======================  =====================================================
Strategy                 Targets / effect
=======================  =====================================================
SilentAdversary          any protocol -- pure omission (in ``base``)
FakeTopologyAdversary    Algorithm 1 -- advertise a fabricated subnetwork
                         hanging behind each Byzantine node (Remark 1 attack)
InconsistentTopology-    Algorithm 1 -- claim false incident-edge sets for
Adversary                honest nodes, triggering the inconsistency predicate
BeaconFloodAdversary     Algorithm 2 -- emit fresh fake beacons every
                         iteration to keep good nodes from deciding
PathTamperAdversary      Algorithm 2 -- additionally replay received beacons
                         with scrambled path prefixes to dodge blacklists
ContinueFloodAdversary   Algorithm 2 -- spam continue messages to keep the
                         network from ever going quiescent
ContinueSuppressAdversary Algorithm 2 -- refuse to forward anything (Byzantine
                         nodes cannot suppress honest traffic, so this is the
                         omission attack restated for the CONGEST protocol)
ValueFakingAdversary     baselines -- inject absurd values into the
                         non-Byzantine-resilient estimators of §1.2
CombinedAdversary        union of several strategies
=======================  =====================================================
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.adversary.base import Adversary, AdversaryView, ByzantineOutbox
from repro.core.beacon import make_beacon_message, make_continue_message
from repro.core.congest_counting import PhaseSchedule
from repro.core.parameters import CongestParameters
from repro.simulator.messages import Message

__all__ = [
    "FakeTopologyAdversary",
    "InconsistentTopologyAdversary",
    "BeaconFloodAdversary",
    "PathTamperAdversary",
    "ContinueFloodAdversary",
    "ContinueSuppressAdversary",
    "ValueFakingAdversary",
    "CombinedAdversary",
]

_ID_BITS = 62


def _fresh_id(rng: random.Random) -> int:
    return rng.getrandbits(_ID_BITS)


# --------------------------------------------------------------------------- #
# Algorithm 1 attacks
# --------------------------------------------------------------------------- #
class FakeTopologyAdversary(Adversary):
    """Advertise a fabricated subnetwork behind every Byzantine node.

    Each corrupted node ``b`` claims (consistently, so that the inconsistency
    predicate never fires) that a tree of fake vertices hangs behind it: in
    round 0 it reports its own incident-edge set as a mix of real neighbors
    and fake root ids, and in every later round it reveals the edge sets of
    one further layer of the fake tree.  The per-round growth is bounded by
    ``max_new_per_round`` fake vertices per Byzantine node -- an unbounded
    adversary could grow the fake frontier faster, which only the exhaustive
    subset check of Algorithm 1 would detect (see the module docstring of
    :mod:`repro.core.local_counting`).

    Parameters
    ----------
    branching:
        Number of fake children revealed per fake vertex (capped by Δ-1).
    max_depth:
        Stop growing the fake tree after this many layers (``None`` = never).
    max_new_per_round:
        Cap on fake vertices newly revealed per Byzantine node per round.
    keep_real_neighbors:
        How many true neighbors the Byzantine node keeps in its claimed edge
        set (it must drop some to stay within the degree bound Δ while
        attaching fake roots).
    """

    def __init__(
        self,
        *,
        branching: int = 3,
        max_depth: Optional[int] = None,
        max_new_per_round: int = 16,
        keep_real_neighbors: int = 4,
    ) -> None:
        self.branching = branching
        self.max_depth = max_depth
        self.max_new_per_round = max_new_per_round
        self.keep_real_neighbors = keep_real_neighbors
        self._fake_frontier: Dict[int, List[int]] = {}
        self._depth: Dict[int, int] = {}
        self._announced_roots: Dict[int, Tuple[Tuple[int, Tuple[int, ...]], ...]] = {}

    def setup(self, graph, byzantine, rng) -> None:  # type: ignore[override]
        super().setup(graph, byzantine, rng)
        self._fake_frontier = {}
        self._depth = {}
        self._announced_roots = {}
        delta = max(2, graph.max_degree())
        for b in byzantine:
            real_neighbors = [graph.node_id(v) for v in graph.neighbors(b)]
            keep = real_neighbors[: min(self.keep_real_neighbors, len(real_neighbors))]
            num_fake_roots = max(1, delta - len(keep))
            fake_roots = [_fresh_id(rng) for _ in range(num_fake_roots)]
            own_edge_set = tuple(sorted(keep + fake_roots))
            self._announced_roots[b] = (
                (graph.node_id(b), own_edge_set),
            )
            self._fake_frontier[b] = fake_roots
            self._depth[b] = 0

    def _grow_layer(self, b: int, rng: random.Random, delta: int) -> List[Tuple[int, Tuple[int, ...]]]:
        """Reveal the next layer of b's fake tree: edge sets of the current frontier."""
        if self.max_depth is not None and self._depth[b] >= self.max_depth:
            return []
        frontier = self._fake_frontier[b]
        if not frontier:
            return []
        new_edge_sets: List[Tuple[int, Tuple[int, ...]]] = []
        next_frontier: List[int] = []
        budget = self.max_new_per_round
        branching = min(self.branching, max(1, delta - 1))
        for leaf in frontier:
            children = [_fresh_id(rng) for _ in range(min(branching, budget))]
            budget -= len(children)
            new_edge_sets.append((leaf, tuple(sorted(children))))
            next_frontier.extend(children)
            if budget <= 0:
                break
        # Frontier leaves whose edge sets were not revealed this round stay in
        # the frontier for the next round.
        revealed = {node_id for node_id, _ in new_edge_sets}
        carry_over = [leaf for leaf in frontier if leaf not in revealed]
        self._fake_frontier[b] = carry_over + next_frontier
        self._depth[b] += 1
        return new_edge_sets

    def act(self, view: AdversaryView) -> ByzantineOutbox:
        delta = max(2, view.graph.max_degree())
        outbox: ByzantineOutbox = {}
        for b in view.byzantine:
            if view.round == 0:
                edge_sets = list(self._announced_roots[b])
            else:
                edge_sets = self._grow_layer(b, view.rng, delta)
            if not edge_sets:
                # Keep sending *something* so honest neighbors never see this
                # node as mute.
                edge_sets = []
            payload = (tuple(edge_sets), ())
            num_ids = sum(1 + len(edges) for _, edges in edge_sets)
            message = Message(
                kind="topology",
                payload=payload,
                size_bits=8 * max(1, len(edge_sets)),
                num_ids=num_ids,
            )
            outbox[b] = self.broadcast_from(view, b, message)
        return outbox


class InconsistentTopologyAdversary(Adversary):
    """Claim false incident-edge sets for real honest nodes.

    Every round, each Byzantine node picks a few honest nodes and broadcasts
    fabricated edge sets for them.  Any honest node that has already learned
    (or later learns) the true edge set observes a conflict, triggering the
    inconsistency predicate and an immediate decision (Line 6 of
    Algorithm 1).
    """

    def __init__(self, *, claims_per_round: int = 2) -> None:
        self.claims_per_round = claims_per_round

    def act(self, view: AdversaryView) -> ByzantineOutbox:
        graph = view.graph
        honest = [u for u in range(graph.n) if u not in view.byzantine]
        outbox: ByzantineOutbox = {}
        for b in view.byzantine:
            edge_sets = []
            for _ in range(self.claims_per_round):
                target = honest[view.rng.randrange(len(honest))]
                fake_edges = tuple(
                    sorted(_fresh_id(view.rng) for _ in range(max(2, graph.degree(target))))
                )
                edge_sets.append((graph.node_id(target), fake_edges))
            payload = (tuple(edge_sets), ())
            num_ids = sum(1 + len(edges) for _, edges in edge_sets)
            message = Message(
                kind="topology", payload=payload, size_bits=16, num_ids=num_ids
            )
            outbox[b] = self.broadcast_from(view, b, message)
        return outbox


# --------------------------------------------------------------------------- #
# Algorithm 2 attacks
# --------------------------------------------------------------------------- #
class _ScheduledAdversary(Adversary):
    """Base for Algorithm 2 attacks: tracks the phase/iteration schedule."""

    def __init__(self, params: Optional[CongestParameters] = None) -> None:
        self.params = params if params is not None else CongestParameters()
        self.schedule = PhaseSchedule(self.params)

    def position(self, round_number: int):
        """Schedule position of the current round (None for round 0)."""
        if round_number < 1:
            return None
        return self.schedule.locate(round_number)


class BeaconFloodAdversary(_ScheduledAdversary):
    """Emit fresh fake beacons every round of every beacon window.

    The goal is to keep good nodes from ever observing a beacon-free
    iteration, inflating their estimates indefinitely.  The blacklisting
    mechanism defeats it for nodes far enough from every Byzantine node: the
    first honest forwarder appends the Byzantine sender's true id to the path
    field, so the sender is blacklisted after its first accepted beacon of the
    phase (Lemma 11's argument).

    Parameters
    ----------
    fake_path_length:
        Length of the fabricated path prefix attached to each fake beacon
        (makes the beacon look like it originated far away).
    """

    def __init__(
        self,
        params: Optional[CongestParameters] = None,
        *,
        fake_path_length: int = 2,
    ) -> None:
        super().__init__(params)
        self.fake_path_length = fake_path_length

    def act(self, view: AdversaryView) -> ByzantineOutbox:
        position = self.position(view.round)
        if position is None:
            return {}
        phase = position.phase
        if position.step > self.params.beacon_window(phase):
            return {}
        outbox: ByzantineOutbox = {}
        for b in view.byzantine:
            fake_prefix = tuple(_fresh_id(view.rng) for _ in range(self.fake_path_length))
            beacon = make_beacon_message(origin=_fresh_id(view.rng), path=fake_prefix)
            outbox[b] = self.broadcast_from(view, b, beacon)
        return outbox


class PathTamperAdversary(_ScheduledAdversary):
    """Flood fake beacons and additionally replay received beacons with
    scrambled path prefixes (attempting to dodge blacklists and to frame
    honest nodes by placing their ids in fabricated prefixes)."""

    def __init__(
        self,
        params: Optional[CongestParameters] = None,
        *,
        fake_path_length: int = 2,
        frame_honest: bool = True,
    ) -> None:
        super().__init__(params)
        self.fake_path_length = fake_path_length
        self.frame_honest = frame_honest

    def act(self, view: AdversaryView) -> ByzantineOutbox:
        position = self.position(view.round)
        if position is None:
            return {}
        phase = position.phase
        if position.step > self.params.beacon_window(phase):
            # Outside the beacon window also spam continue messages so that
            # decided nodes never exit the loop.
            cont = make_continue_message()
            return {b: self.broadcast_from(view, b, cont) for b in view.byzantine}
        graph = view.graph
        honest = [u for u in range(graph.n) if u not in view.byzantine]
        outbox: ByzantineOutbox = {}
        for b in view.byzantine:
            prefix: List[int] = []
            for _ in range(self.fake_path_length):
                if self.frame_honest and honest and view.rng.random() < 0.5:
                    prefix.append(graph.node_id(honest[view.rng.randrange(len(honest))]))
                else:
                    prefix.append(_fresh_id(view.rng))
            # Replay any beacon received this round with a scrambled prefix,
            # otherwise emit a brand new fake beacon.
            received = [
                m
                for m in view.byzantine_inboxes.get(b, [])
                if m.kind == "beacon"
            ]
            if received:
                origin = _fresh_id(view.rng)
            else:
                origin = _fresh_id(view.rng)
            beacon = make_beacon_message(origin=origin, path=tuple(prefix))
            outbox[b] = self.broadcast_from(view, b, beacon)
        return outbox


class ContinueFloodAdversary(_ScheduledAdversary):
    """Spam continue messages during every continue window.

    This cannot change any decision (decisions depend only on beacon-free
    iterations) but keeps nodes near the Byzantine region participating
    forever, preventing the quiescence of Corollary 1 -- exactly the behaviour
    the paper tolerates (termination is only claimed for the benign case).
    """

    def act(self, view: AdversaryView) -> ByzantineOutbox:
        position = self.position(view.round)
        if position is None:
            return {}
        phase = position.phase
        if position.step <= self.params.beacon_window(phase):
            return {}
        cont = make_continue_message()
        return {b: self.broadcast_from(view, b, cont) for b in view.byzantine}


class ContinueSuppressAdversary(Adversary):
    """Send nothing at all.

    Byzantine nodes cannot suppress or alter honest messages in this model,
    so the strongest "suppression" available to them is refusing to generate
    or forward anything themselves.  Functionally identical to
    :class:`~repro.adversary.base.SilentAdversary`; provided under this name
    so the Algorithm 2 adversary grid (experiment E9) reads naturally.
    """

    def act(self, view: AdversaryView) -> ByzantineOutbox:
        return {}


# --------------------------------------------------------------------------- #
# Baseline attacks
# --------------------------------------------------------------------------- #
class ValueFakingAdversary(Adversary):
    """Inject absurd values into the non-Byzantine-resilient baselines (§1.2).

    The baseline estimators propagate numeric values (geometric maxima,
    exponential minima, subtree counts, hop counters) in messages of kind
    ``"estimate"``.  A single Byzantine node faking a value corrupts them all,
    which is the paper's motivation for needing a genuinely Byzantine-resilient
    counting protocol.

    Parameters
    ----------
    mode:
        ``"inflate"`` sends a huge value, ``"deflate"`` sends a tiny one.
    magnitude:
        The injected value for ``inflate`` (interpreted by each baseline).
    """

    def __init__(self, *, mode: str = "inflate", magnitude: float = 1e6) -> None:
        if mode not in ("inflate", "deflate"):
            raise ValueError("mode must be 'inflate' or 'deflate'")
        self.mode = mode
        self.magnitude = magnitude

    def act(self, view: AdversaryView) -> ByzantineOutbox:
        value = self.magnitude if self.mode == "inflate" else 0.0
        outbox: ByzantineOutbox = {}
        for b in view.byzantine:
            message = Message(kind="estimate", payload=value, size_bits=64, num_ids=0)
            outbox[b] = self.broadcast_from(view, b, message)
        return outbox


# --------------------------------------------------------------------------- #
# Composition
# --------------------------------------------------------------------------- #
class CombinedAdversary(Adversary):
    """Run several strategies at once and merge their outboxes."""

    def __init__(self, strategies: Sequence[Adversary]) -> None:
        if not strategies:
            raise ValueError("CombinedAdversary needs at least one strategy")
        self.strategies = list(strategies)

    def setup(self, graph, byzantine, rng) -> None:  # type: ignore[override]
        super().setup(graph, byzantine, rng)
        for strategy in self.strategies:
            strategy.setup(graph, byzantine, rng)

    def act(self, view: AdversaryView) -> ByzantineOutbox:
        merged: ByzantineOutbox = {}
        for strategy in self.strategies:
            part = strategy.act(view) or {}
            for b, per_target in part.items():
                bucket = merged.setdefault(b, {})
                for target, messages in per_target.items():
                    bucket.setdefault(target, []).extend(messages)
        return merged
