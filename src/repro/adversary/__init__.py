"""Byzantine adversary framework.

The paper's model (Section 2) allows Byzantine nodes that are *arbitrarily
(adversarially) placed* and have *full information* (they see all states and
all honest random choices before acting).  This package separates the two
degrees of freedom:

* :mod:`repro.adversary.placement` -- where the corrupted nodes sit
  (uniformly random, clustered in a ball, on a cut, at high-centrality
  positions);
* :mod:`repro.adversary.strategies` -- what they do (stay silent, inject fake
  topology, flood fake beacons, tamper with path fields, suppress or spam
  continue messages, fake the values of the baseline protocols).
"""

from repro.adversary.base import Adversary, AdversaryView, ByzantineOutbox, SilentAdversary
from repro.adversary.placement import (
    random_placement,
    clustered_placement,
    cut_placement,
    high_degree_placement,
    spread_placement,
)
from repro.adversary.strategies import (
    FakeTopologyAdversary,
    InconsistentTopologyAdversary,
    BeaconFloodAdversary,
    PathTamperAdversary,
    ContinueFloodAdversary,
    ContinueSuppressAdversary,
    ValueFakingAdversary,
    CombinedAdversary,
)

__all__ = [
    "Adversary",
    "AdversaryView",
    "ByzantineOutbox",
    "SilentAdversary",
    "random_placement",
    "clustered_placement",
    "cut_placement",
    "high_degree_placement",
    "spread_placement",
    "FakeTopologyAdversary",
    "InconsistentTopologyAdversary",
    "BeaconFloodAdversary",
    "PathTamperAdversary",
    "ContinueFloodAdversary",
    "ContinueSuppressAdversary",
    "ValueFakingAdversary",
    "CombinedAdversary",
]
