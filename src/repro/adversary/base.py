"""Public re-export of the Byzantine adversary interface.

The interface itself lives in :mod:`repro.simulator.byzantine` (the engine
depends on it, the concrete strategies depend on the protocols, and keeping
the interface with the engine avoids a circular import).  Importing it from
``repro.adversary.base`` is the intended spelling for user code.
"""

from repro.simulator.byzantine import (
    Adversary,
    AdversaryView,
    ByzantineOutbox,
    SilentAdversary,
)

__all__ = ["Adversary", "AdversaryView", "ByzantineOutbox", "SilentAdversary"]
