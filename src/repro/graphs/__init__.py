"""Graph substrates used throughout the reproduction.

This package provides every topology the paper relies on:

* :mod:`repro.graphs.hnd` -- the ``H(n, d)`` permutation-model random regular
  graph (union of ``d/2`` random Hamiltonian cycles) and the configuration
  model, the substrate of the randomized CONGEST algorithm (Theorem 2).
* :mod:`repro.graphs.expanders` -- explicit bounded-degree expanders
  (hypercubes, Margulis-style torus expanders) used by the deterministic
  LOCAL algorithm (Theorem 1).
* :mod:`repro.graphs.generators` -- low-expansion topologies (cycles, paths,
  barbells) and the chained-copies construction of the impossibility result
  (Theorem 3), plus small-world graphs for comparison with prior work.
* :mod:`repro.graphs.neighborhoods` -- ball/boundary utilities ``B(u, i)`` and
  ``D(u, i)`` used by both algorithms and by the structural lemmas.
* :mod:`repro.graphs.expansion` -- vertex-expansion computation (exact and
  sampled), spectral bounds, and the Good/GoodTL set machinery of Lemma 1.
* :mod:`repro.graphs.treelike` -- the locally-tree-like classification of
  Lemma 2.
"""

from repro.graphs.graph import Graph
from repro.graphs.hnd import hnd_random_regular_graph, configuration_model_graph
from repro.graphs.expanders import hypercube_graph, margulis_torus_graph
from repro.graphs.generators import (
    cycle_graph,
    path_graph,
    barbell_graph,
    chained_copies_graph,
    small_world_graph,
    complete_graph,
    star_graph,
    two_cliques_bridge_graph,
)
from repro.graphs.neighborhoods import ball, boundary, induced_subgraph, distances_from
from repro.graphs.expansion import (
    vertex_expansion_exact,
    vertex_expansion_of_set,
    vertex_expansion_sampled,
    spectral_gap,
    cheeger_lower_bound,
    good_set,
    good_treelike_set,
)
from repro.graphs.treelike import is_locally_treelike, treelike_nodes, treelike_radius

__all__ = [
    "Graph",
    "hnd_random_regular_graph",
    "configuration_model_graph",
    "hypercube_graph",
    "margulis_torus_graph",
    "cycle_graph",
    "path_graph",
    "barbell_graph",
    "chained_copies_graph",
    "small_world_graph",
    "complete_graph",
    "star_graph",
    "two_cliques_bridge_graph",
    "ball",
    "boundary",
    "induced_subgraph",
    "distances_from",
    "vertex_expansion_exact",
    "vertex_expansion_of_set",
    "vertex_expansion_sampled",
    "spectral_gap",
    "cheeger_lower_bound",
    "good_set",
    "good_treelike_set",
    "is_locally_treelike",
    "treelike_nodes",
    "treelike_radius",
]
