"""A lightweight undirected graph tailored to the simulator.

The simulator runs protocols over thousands of synchronous rounds, so graph
access must be cheap.  ``networkx`` is excellent for analysis but its per-call
overhead dominates a tight simulation loop; we therefore keep a minimal
adjacency-list representation here and provide lossless conversion to and from
``networkx`` for tests and for the expansion/spectral analysis code.

Nodes are integers ``0 .. n-1``.  Protocol-visible *identifiers* (the IDs of
Section 2 of the paper, drawn from an arbitrarily large space so that their
length leaks nothing about ``n``) are kept separately in
:attr:`Graph.node_ids`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = ["Graph"]

_ID_SPACE_BITS = 62


def _random_distinct_ids(n: int, rng: random.Random) -> List[int]:
    """Draw ``n`` distinct IDs uniformly from a sparse 62-bit space.

    Using a space whose size is independent of ``n`` matches the paper's
    requirement that node IDs are "comparable black boxes that do not leak any
    information about the network size".
    """
    ids: Set[int] = set()
    while len(ids) < n:
        ids.add(rng.getrandbits(_ID_SPACE_BITS))
    return list(ids)


@dataclass
class Graph:
    """Undirected graph with adjacency lists and opaque node identifiers.

    Parameters
    ----------
    n:
        Number of nodes.  Nodes are ``0 .. n-1``.
    adjacency:
        ``adjacency[u]`` is the sorted tuple of neighbors of ``u``.  Parallel
        edges and self-loops are removed at construction (the permutation
        model may produce a vanishing number of them; the paper works with
        simple graphs).
    node_ids:
        Opaque per-node identifier visible to protocols.  If not supplied,
        distinct random 62-bit integers are generated.
    name:
        Human-readable description used in experiment reports.
    """

    n: int
    adjacency: List[Tuple[int, ...]]
    node_ids: List[int] = field(default_factory=list)
    name: str = "graph"

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ValueError("graph must have a non-negative number of nodes")
        if len(self.adjacency) != self.n:
            raise ValueError(
                f"adjacency has {len(self.adjacency)} entries for n={self.n} nodes"
            )
        cleaned: List[Tuple[int, ...]] = []
        for u, nbrs in enumerate(self.adjacency):
            seen = sorted({v for v in nbrs if v != u})
            for v in seen:
                if v < 0 or v >= self.n:
                    raise ValueError(f"edge ({u}, {v}) references a non-existent node")
            cleaned.append(tuple(seen))
        self.adjacency = cleaned
        if not self.node_ids:
            self.node_ids = _random_distinct_ids(self.n, random.Random(0xC0FFEE ^ self.n))
        if len(self.node_ids) != self.n:
            raise ValueError("node_ids must have one entry per node")
        if len(set(self.node_ids)) != self.n:
            raise ValueError("node_ids must be distinct")
        self._id_to_index: Dict[int, int] = {nid: u for u, nid in enumerate(self.node_ids)}

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Iterable[Tuple[int, int]],
        *,
        node_ids: Optional[Sequence[int]] = None,
        name: str = "graph",
    ) -> "Graph":
        """Build a graph from an edge list (duplicates and self-loops dropped)."""
        adj: List[Set[int]] = [set() for _ in range(n)]
        for u, v in edges:
            if not (0 <= u < n) or not (0 <= v < n):
                raise ValueError(f"edge ({u}, {v}) references a non-existent node")
            if u == v:
                continue
            adj[u].add(v)
            adj[v].add(u)
        return cls(
            n=n,
            adjacency=[tuple(sorted(s)) for s in adj],
            node_ids=list(node_ids) if node_ids is not None else [],
            name=name,
        )

    @classmethod
    def from_networkx(cls, nx_graph, *, name: str = "graph") -> "Graph":
        """Convert a ``networkx`` graph whose nodes are hashable to a :class:`Graph`."""
        nodes = list(nx_graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in nx_graph.edges()]
        return cls.from_edges(len(nodes), edges, name=name)

    def to_networkx(self):
        """Return an equivalent ``networkx.Graph`` (nodes are the integer indices)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_edges_from(self.edges())
        return g

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    def neighbors(self, u: int) -> Tuple[int, ...]:
        """Neighbors of node ``u`` as a sorted tuple."""
        return self.adjacency[u]

    def degree(self, u: int) -> int:
        """Degree of node ``u``."""
        return len(self.adjacency[u])

    def max_degree(self) -> int:
        """Maximum degree Δ of the graph (0 for the empty graph)."""
        if self.n == 0:
            return 0
        return max(len(nbrs) for nbrs in self.adjacency)

    def min_degree(self) -> int:
        """Minimum degree of the graph (0 for the empty graph)."""
        if self.n == 0:
            return 0
        return min(len(nbrs) for nbrs in self.adjacency)

    def average_degree(self) -> float:
        """Average degree ``2m / n``."""
        if self.n == 0:
            return 0.0
        return sum(len(nbrs) for nbrs in self.adjacency) / self.n

    def num_edges(self) -> int:
        """Number of (undirected) edges."""
        return sum(len(nbrs) for nbrs in self.adjacency) // 2

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over edges ``(u, v)`` with ``u < v``."""
        for u, nbrs in enumerate(self.adjacency):
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def has_edge(self, u: int, v: int) -> bool:
        """True if ``{u, v}`` is an edge."""
        nbrs = self.adjacency[u]
        # adjacency tuples are sorted; for bounded-degree graphs a linear scan
        # is faster than building sets.
        return v in nbrs

    def nodes(self) -> range:
        """The node set as a ``range``."""
        return range(self.n)

    def node_id(self, u: int) -> int:
        """Protocol-visible identifier of node ``u``."""
        return self.node_ids[u]

    def index_of_id(self, node_id: int) -> int:
        """Inverse of :meth:`node_id`."""
        return self._id_to_index[node_id]

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #
    def is_regular(self) -> bool:
        """True if every node has the same degree."""
        return self.n == 0 or self.max_degree() == self.min_degree()

    def is_connected(self) -> bool:
        """True if the graph is connected (the empty graph counts as connected)."""
        if self.n <= 1:
            return True
        seen = [False] * self.n
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            u = stack.pop()
            for v in self.adjacency[u]:
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        return count == self.n

    def connected_components(self) -> List[List[int]]:
        """Connected components, each as a sorted list of nodes."""
        seen = [False] * self.n
        components: List[List[int]] = []
        for start in range(self.n):
            if seen[start]:
                continue
            comp = [start]
            seen[start] = True
            stack = [start]
            while stack:
                u = stack.pop()
                for v in self.adjacency[u]:
                    if not seen[v]:
                        seen[v] = True
                        comp.append(v)
                        stack.append(v)
            components.append(sorted(comp))
        return components

    def diameter(self) -> int:
        """Exact diameter via repeated BFS.

        Raises
        ------
        ValueError
            If the graph is disconnected (the diameter is infinite).
        """
        if self.n == 0:
            return 0
        if not self.is_connected():
            raise ValueError("diameter is undefined for a disconnected graph")
        best = 0
        for source in range(self.n):
            dist = self._bfs_distances(source)
            best = max(best, max(dist))
        return best

    def eccentricity(self, u: int) -> int:
        """Largest BFS distance from ``u`` (graph must be connected)."""
        dist = self._bfs_distances(u)
        if any(d < 0 for d in dist):
            raise ValueError("eccentricity is undefined for a disconnected graph")
        return max(dist)

    def _bfs_distances(self, source: int) -> List[int]:
        dist = [-1] * self.n
        dist[source] = 0
        frontier = [source]
        d = 0
        while frontier:
            d += 1
            nxt: List[int] = []
            for u in frontier:
                for v in self.adjacency[u]:
                    if dist[v] < 0:
                        dist[v] = d
                        nxt.append(v)
            frontier = nxt
        return dist

    def bfs_distances(self, source: int) -> List[int]:
        """BFS distances from ``source`` (-1 for unreachable nodes)."""
        return self._bfs_distances(source)

    def copy(self) -> "Graph":
        """Deep copy (node IDs are shared values but the lists are new)."""
        return Graph(
            n=self.n,
            adjacency=[tuple(nbrs) for nbrs in self.adjacency],
            node_ids=list(self.node_ids),
            name=self.name,
        )

    def relabel_ids(self, rng: random.Random) -> "Graph":
        """Return a copy with fresh random node identifiers drawn with ``rng``."""
        return Graph(
            n=self.n,
            adjacency=[tuple(nbrs) for nbrs in self.adjacency],
            node_ids=_random_distinct_ids(self.n, rng),
            name=self.name,
        )

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"Graph(name={self.name!r}, n={self.n}, m={self.num_edges()})"
