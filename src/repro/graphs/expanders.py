"""Explicit bounded-degree expander constructions.

Theorem 1 holds for *any* bounded-degree graph with constant vertex expansion,
not only random regular graphs, so the experiment suite also exercises the
deterministic algorithm on deterministic expander families:

* the hypercube ``Q_k`` (degree ``log n`` -- used only for small ``n`` where
  the degree is still a small constant, and as a sanity topology), and
* a Margulis/Gabber-Galil style degree-8 expander on the ``m x m`` torus,
  a classical explicit constant-degree expander family.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graphs.graph import Graph

__all__ = ["hypercube_graph", "margulis_torus_graph"]


def hypercube_graph(dimension: int) -> Graph:
    """The ``dimension``-dimensional hypercube on ``2**dimension`` nodes.

    Vertex expansion is at least ``1/sqrt(dimension)`` (Harper), so for small,
    fixed dimensions it behaves as a constant-expansion bounded-degree graph.
    """
    if dimension < 1:
        raise ValueError("hypercube dimension must be >= 1")
    n = 1 << dimension
    edges: List[Tuple[int, int]] = []
    for u in range(n):
        for bit in range(dimension):
            v = u ^ (1 << bit)
            if u < v:
                edges.append((u, v))
    return Graph.from_edges(n, edges, name=f"hypercube({dimension})")


def margulis_torus_graph(side: int) -> Graph:
    """Margulis/Gabber–Galil style degree-8 expander on the ``side x side`` torus.

    Each node ``(x, y)`` of ``Z_m x Z_m`` is connected to::

        (x + y, y), (x - y, y), (x + y + 1, y), (x - y - 1, y),
        (x, y + x), (x, y - x), (x, y + x + 1), (x, y - x - 1)

    (all arithmetic mod ``m``).  This family has constant vertex expansion and
    maximum degree 8, so it is a valid substrate for the deterministic LOCAL
    algorithm of Theorem 1.
    """
    if side < 2:
        raise ValueError("torus side must be >= 2")
    m = side
    n = m * m

    def idx(x: int, y: int) -> int:
        return (x % m) * m + (y % m)

    edges: List[Tuple[int, int]] = []
    for x in range(m):
        for y in range(m):
            u = idx(x, y)
            targets = [
                idx(x + y, y),
                idx(x - y, y),
                idx(x + y + 1, y),
                idx(x - y - 1, y),
                idx(x, y + x),
                idx(x, y - x),
                idx(x, y + x + 1),
                idx(x, y - x - 1),
            ]
            for v in targets:
                if u != v:
                    edges.append((u, v))
    return Graph.from_edges(n, edges, name=f"margulis({m}x{m})")
