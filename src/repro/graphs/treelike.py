"""The locally tree-like property of ``H(n, d)`` random graphs (Section 3.1).

Definition 3 of the paper: a node ``w`` is *locally tree-like* (up to radius
``r = log n / (10 log d)``) if the subgraph induced by ``B(w, r)`` is a
``(d-1)``-ary tree, i.e. every node ``u`` in ``B(w, j)``, ``1 <= j < r``, is
*typical*: it has exactly one neighbor in ``B(w, j-1)`` and ``d - 1``
neighbors in ``B(w, j+1)``.

Lemma 2 states that in ``H(n, d)`` at least ``n - O(n^0.8)`` nodes are locally
tree-like with high probability -- experiment E5 measures exactly this
quantity.
"""

from __future__ import annotations

import math
from typing import Optional, Set

from repro.graphs.graph import Graph

__all__ = ["treelike_radius", "is_locally_treelike", "treelike_nodes"]


def treelike_radius(n: int, d: int) -> int:
    """The radius ``r = log n / (10 log d)`` of Definition 3 (at least 1)."""
    if n < 2 or d < 2:
        return 1
    return max(1, int(math.log(n) / (10.0 * math.log(d))))


def is_locally_treelike(
    graph: Graph,
    node: int,
    *,
    degree: Optional[int] = None,
    radius: Optional[int] = None,
) -> bool:
    """Check Definition 3 for a single node.

    Parameters
    ----------
    graph:
        The (nominally ``d``-regular) graph.
    node:
        The node ``w`` to classify.
    degree:
        The nominal degree ``d``; defaults to the maximum degree of the graph.
    radius:
        The radius ``r``; defaults to ``treelike_radius(n, d)``.

    A node is tree-like iff a BFS of depth ``radius`` from it never revisits a
    node (no cycle closes inside the ball) and every internal node has the
    full complement of children, i.e. the ball is a ``(d-1)``-ary tree rooted
    at ``node`` whose root has ``d`` children.
    """
    d = degree if degree is not None else max(2, graph.max_degree())
    r = radius if radius is not None else treelike_radius(graph.n, d)
    if r <= 0:
        return True

    # BFS with explicit parent tracking.  Any edge that is not a tree edge
    # (i.e. touches an already-visited node other than the parent) closes a
    # cycle inside B(node, r) and makes some node atypical.
    visited = {node: 0}
    parent = {node: -1}
    frontier = [node]
    depth = 0
    while frontier and depth < r:
        depth += 1
        nxt = []
        for u in frontier:
            children = 0
            for v in graph.neighbors(u):
                if v == parent[u]:
                    continue
                if v in visited:
                    # A cross or back edge inside the ball: not a tree.
                    return False
                visited[v] = depth
                parent[v] = u
                nxt.append(v)
                children += 1
            expected = d if u == node else d - 1
            if children != expected:
                return False
        frontier = nxt
    # Nodes on the last explored level are allowed to have unexplored
    # children; but if the BFS ran out of frontier before reaching radius r,
    # the ball is smaller than a (d-1)-ary tree of depth r.
    if depth < r:
        return False
    # Finally, the subgraph induced by the ball must itself be a tree: any
    # extra edge (in particular one between two radius-r nodes, which the BFS
    # above never traverses) closes a cycle inside B(node, r).
    induced_edges = 0
    for u in visited:
        for v in graph.neighbors(u):
            if v in visited and u < v:
                induced_edges += 1
    return induced_edges == len(visited) - 1


def treelike_nodes(
    graph: Graph,
    *,
    degree: Optional[int] = None,
    radius: Optional[int] = None,
) -> Set[int]:
    """The set of locally tree-like nodes of the graph (Definition 3)."""
    d = degree if degree is not None else max(2, graph.max_degree())
    r = radius if radius is not None else treelike_radius(graph.n, d)
    return {
        u for u in range(graph.n) if is_locally_treelike(graph, u, degree=d, radius=r)
    }
