"""Auxiliary topologies: low-expansion graphs, impossibility constructions,
small-world graphs, and simple reference graphs.

These are the workloads of experiments E4 (impossibility, Theorem 3) and of
several negative-control tests: the paper's algorithms require expansion, so
we need graphs *without* expansion to demonstrate the boundary of the results.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.graphs.graph import Graph

__all__ = [
    "cycle_graph",
    "path_graph",
    "complete_graph",
    "star_graph",
    "barbell_graph",
    "two_cliques_bridge_graph",
    "chained_copies_graph",
    "small_world_graph",
]


def cycle_graph(n: int) -> Graph:
    """The ``n``-cycle: degree 2, vertex expansion ``Θ(1/n)`` (no expansion)."""
    if n < 3:
        raise ValueError("cycle requires n >= 3")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph.from_edges(n, edges, name=f"cycle({n})")


def path_graph(n: int) -> Graph:
    """The ``n``-path: the canonical worst case for diameter-based estimation."""
    if n < 2:
        raise ValueError("path requires n >= 2")
    edges = [(i, i + 1) for i in range(n - 1)]
    return Graph.from_edges(n, edges, name=f"path({n})")


def complete_graph(n: int) -> Graph:
    """The complete graph ``K_n`` (used in tests of the analysis utilities)."""
    if n < 1:
        raise ValueError("complete graph requires n >= 1")
    edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    return Graph.from_edges(n, edges, name=f"complete({n})")


def star_graph(n: int) -> Graph:
    """A star with one hub and ``n - 1`` leaves (expansion bottleneck at the hub)."""
    if n < 2:
        raise ValueError("star requires n >= 2")
    edges = [(0, v) for v in range(1, n)]
    return Graph.from_edges(n, edges, name=f"star({n})")


def barbell_graph(clique_size: int, bridge_length: int = 1) -> Graph:
    """Two cliques of ``clique_size`` nodes joined by a path of ``bridge_length`` edges.

    The bridge is a vertex-expansion bottleneck: placing a single Byzantine
    node on it disconnects the honest parts' information flow, the scenario
    Theorem 3 exploits.
    """
    if clique_size < 2:
        raise ValueError("barbell requires clique_size >= 2")
    if bridge_length < 1:
        raise ValueError("barbell requires bridge_length >= 1")
    bridge_nodes = bridge_length - 1
    n = 2 * clique_size + bridge_nodes
    edges: List[Tuple[int, int]] = []
    # Left clique: nodes 0 .. clique_size-1.
    for u in range(clique_size):
        for v in range(u + 1, clique_size):
            edges.append((u, v))
    # Right clique: nodes clique_size + bridge_nodes .. n-1.
    offset = clique_size + bridge_nodes
    for u in range(offset, n):
        for v in range(u + 1, n):
            edges.append((u, v))
    # Bridge path from node clique_size-1 to node offset.
    chain = [clique_size - 1] + list(range(clique_size, clique_size + bridge_nodes)) + [offset]
    for a, b in zip(chain, chain[1:]):
        edges.append((a, b))
    return Graph.from_edges(n, edges, name=f"barbell({clique_size},{bridge_length})")


def two_cliques_bridge_graph(clique_size: int) -> Graph:
    """Barbell with a single bridge node: the minimal cut-vertex bottleneck."""
    return barbell_graph(clique_size, bridge_length=2)


def chained_copies_graph(
    copy: Graph,
    num_copies: int,
    attachment_node: int = 0,
    *,
    seed: Optional[int] = None,
) -> Tuple[Graph, int, List[List[int]]]:
    """The Theorem 3 construction: ``t`` copies of ``C_n`` glued at one node.

    The impossibility proof considers a graph ``H`` made of ``t`` copies of a
    base graph ``C_n`` in which a designated (Byzantine) node ``b`` is shared
    by every copy, so that ``deg_H(b) = t * deg_{C_n}(b)``.  Honest nodes
    inside one copy cannot distinguish an execution on ``C_n`` from an
    execution on ``H`` because ``b`` can simulate, toward each copy, exactly
    the messages it would send in the single-copy execution.

    Parameters
    ----------
    copy:
        The base graph ``C_n``.
    num_copies:
        Number ``t >= 1`` of copies to glue together.
    attachment_node:
        The node of ``copy`` that plays the role of the shared Byzantine node.
    seed:
        Seed for the fresh node identifiers of the combined graph.

    Returns
    -------
    (graph, shared_node, copy_membership):
        ``graph`` is the glued graph, ``shared_node`` is the index of the
        shared node ``b`` in it, and ``copy_membership[k]`` lists the indices
        (in the glued graph) of the nodes of copy ``k`` *excluding* ``b``.
    """
    if num_copies < 1:
        raise ValueError("need at least one copy")
    if not (0 <= attachment_node < copy.n):
        raise ValueError("attachment_node out of range")

    base_n = copy.n
    # Index 0 of the glued graph is the shared node b; the other nodes of copy
    # k occupy a contiguous block.
    total_n = 1 + num_copies * (base_n - 1)
    edges: List[Tuple[int, int]] = []
    copy_membership: List[List[int]] = []

    def remap(k: int, u: int) -> int:
        if u == attachment_node:
            return 0
        # Position of u among the non-attachment nodes of the base graph.
        pos = u if u < attachment_node else u - 1
        return 1 + k * (base_n - 1) + pos

    for k in range(num_copies):
        members = []
        for u in range(base_n):
            if u != attachment_node:
                members.append(remap(k, u))
        copy_membership.append(members)
        for u, v in copy.edges():
            edges.append((remap(k, u), remap(k, v)))

    rng = random.Random(seed if seed is not None else 0xBADC0DE)
    glued = Graph.from_edges(total_n, edges, name=f"chained({copy.name},t={num_copies})")
    glued = glued.relabel_ids(rng)
    return glued, 0, copy_membership


def small_world_graph(
    n: int,
    k: int = 4,
    rewire_probability: float = 0.1,
    *,
    seed: Optional[int] = None,
) -> Graph:
    """Watts–Strogatz small-world graph (the setting of the prior work [14]).

    Each node is connected to its ``k`` nearest ring neighbors, then each edge
    endpoint is rewired to a uniform random node with probability
    ``rewire_probability``.  Included so experiments can contrast this paper's
    expander-only setting with the small-world assumption of Chatterjee et
    al. (IPDPS 2019).
    """
    if n < 4:
        raise ValueError("small-world graph requires n >= 4")
    if k < 2 or k % 2 != 0:
        raise ValueError("k must be an even integer >= 2")
    if k >= n:
        raise ValueError("k must be smaller than n")
    if not 0.0 <= rewire_probability <= 1.0:
        raise ValueError("rewire_probability must lie in [0, 1]")
    rng = random.Random(seed)
    edges = set()
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            edges.add((min(u, v), max(u, v)))
    rewired = set()
    for (u, v) in sorted(edges):
        if rng.random() < rewire_probability:
            # Rewire the far endpoint to a random target, avoiding self-loops
            # and duplicates; keep the original edge if no target is found.
            for _ in range(8):
                w = rng.randrange(n)
                key = (min(u, w), max(u, w))
                if w != u and key not in edges and key not in rewired:
                    rewired.add(key)
                    break
            else:
                rewired.add((u, v))
        else:
            rewired.add((u, v))
    return Graph.from_edges(n, sorted(rewired), name=f"small_world({n},{k},{rewire_probability})")
