"""Ball and boundary utilities: ``B(u, i)``, ``D(u, i)`` and induced subgraphs.

These mirror the notation of Section 3 of the paper:

* ``B_G(u, i)`` is the *inclusive* ``i``-hop neighborhood of ``u``;
* ``B_G(S, i)`` is the union of the balls around a set ``S``;
* ``D(u, i)`` is the ``i``-boundary, i.e. the nodes at distance exactly ``i``.

Both counting algorithms and the structural lemmas (Lemma 1, Lemma 7, Lemma 8)
are phrased in terms of these sets.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.graphs.graph import Graph

__all__ = [
    "ball",
    "ball_of_set",
    "boundary",
    "distances_from",
    "induced_subgraph",
    "layers",
]


def distances_from(
    graph: Graph,
    source: int,
    *,
    max_distance: Optional[int] = None,
    allowed: Optional[Set[int]] = None,
) -> Dict[int, int]:
    """BFS distances from ``source``, optionally truncated and restricted.

    Parameters
    ----------
    graph:
        The graph.
    source:
        Start node.
    max_distance:
        If given, exploration stops after this radius.
    allowed:
        If given, only nodes in this set are traversed (the source must be in
        it); used to compute distances inside the subgraph ``H`` induced by the
        good nodes (Lemma 1).

    Returns
    -------
    dict mapping each reached node to its distance from ``source``.
    """
    if allowed is not None and source not in allowed:
        raise ValueError("source must be contained in the allowed set")
    dist: Dict[int, int] = {source: 0}
    frontier = [source]
    d = 0
    while frontier and (max_distance is None or d < max_distance):
        d += 1
        nxt: List[int] = []
        for u in frontier:
            for v in graph.neighbors(u):
                if v in dist:
                    continue
                if allowed is not None and v not in allowed:
                    continue
                dist[v] = d
                nxt.append(v)
        frontier = nxt
    return dist


def ball(
    graph: Graph,
    center: int,
    radius: int,
    *,
    allowed: Optional[Set[int]] = None,
) -> Set[int]:
    """The inclusive ball ``B(center, radius)`` (restricted to ``allowed`` if given)."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    return set(distances_from(graph, center, max_distance=radius, allowed=allowed))


def ball_of_set(
    graph: Graph,
    centers: Iterable[int],
    radius: int,
    *,
    allowed: Optional[Set[int]] = None,
) -> Set[int]:
    """``B(S, radius) = union of B(u, radius) for u in S`` (Section 3)."""
    result: Set[int] = set()
    for center in centers:
        result |= ball(graph, center, radius, allowed=allowed)
    return result


def boundary(
    graph: Graph,
    center: int,
    radius: int,
    *,
    allowed: Optional[Set[int]] = None,
) -> Set[int]:
    """The ``radius``-boundary ``D(center, radius)``: nodes at distance exactly ``radius``."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    dist = distances_from(graph, center, max_distance=radius, allowed=allowed)
    return {u for u, d in dist.items() if d == radius}


def layers(
    graph: Graph,
    center: int,
    radius: int,
    *,
    allowed: Optional[Set[int]] = None,
) -> List[Set[int]]:
    """BFS layers ``[D(u,0), D(u,1), ..., D(u,radius)]`` around ``center``."""
    dist = distances_from(graph, center, max_distance=radius, allowed=allowed)
    result: List[Set[int]] = [set() for _ in range(radius + 1)]
    for u, d in dist.items():
        result[d].add(u)
    return result


def induced_subgraph(graph: Graph, nodes: Sequence[int]) -> Tuple[Graph, Dict[int, int]]:
    """The subgraph induced by ``nodes``.

    Returns the induced :class:`Graph` (with node IDs inherited from the
    original) and the mapping from original node index to new index.
    """
    node_list = sorted(set(nodes))
    index = {u: i for i, u in enumerate(node_list)}
    edges = []
    for u in node_list:
        for v in graph.neighbors(u):
            if v in index and u < v:
                edges.append((index[u], index[v]))
    sub = Graph.from_edges(
        len(node_list),
        edges,
        node_ids=[graph.node_id(u) for u in node_list],
        name=f"{graph.name}[{len(node_list)} nodes]",
    )
    return sub, index
