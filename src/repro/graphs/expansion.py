"""Vertex expansion, spectral bounds, and the Good/GoodTL sets of Lemma 1.

The paper's algorithms and analysis revolve around the *vertex expansion*

    h(G) = min_{0 < |S| <= n/2}  |Out(S)| / |S|,

where ``Out(S)`` is the set of neighbors of ``S`` outside ``S`` (Definition 1).
Computing ``h(G)`` exactly is NP-hard in general; this module provides

* an exact exponential-time computation for small graphs (used in unit tests
  and in the exhaustive variant of Algorithm 1's expansion check),
* the expansion of a *given* set (cheap, used in Algorithm 1's per-round
  checks),
* a sampled/heuristic lower-bound estimator (sweep cuts from BFS balls and
  random subsets) for large graphs,
* spectral quantities (adjacency spectral gap, Cheeger-style bound) that
  certify expansion for the random regular graphs,
* the construction of the ``Good`` and ``GoodTL`` node sets of Lemma 1 and
  Section 5.1 -- the honest nodes far from every Byzantine node (and, for
  GoodTL, also locally tree-like).
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.graphs.graph import Graph
from repro.graphs.neighborhoods import ball, ball_of_set
from repro.graphs.treelike import treelike_nodes, treelike_radius

__all__ = [
    "out_neighbors",
    "vertex_expansion_of_set",
    "vertex_expansion_exact",
    "vertex_expansion_sampled",
    "spectral_gap",
    "cheeger_lower_bound",
    "good_set",
    "good_treelike_set",
    "prune_to_expander",
]


def out_neighbors(graph: Graph, subset: Iterable[int]) -> Set[int]:
    """``Out(S)``: the neighbors of ``S`` in ``V \\ S`` (Definition 1)."""
    s = set(subset)
    result: Set[int] = set()
    for u in s:
        for v in graph.neighbors(u):
            if v not in s:
                result.add(v)
    return result


def vertex_expansion_of_set(graph: Graph, subset: Iterable[int]) -> float:
    """``|Out(S)| / |S|`` for a particular set ``S`` (must be non-empty)."""
    s = set(subset)
    if not s:
        raise ValueError("expansion of the empty set is undefined")
    return len(out_neighbors(graph, s)) / len(s)


def vertex_expansion_exact(graph: Graph, *, max_n: int = 20) -> float:
    """Exact vertex expansion by enumerating all subsets of size <= n/2.

    Exponential in ``n``; guarded by ``max_n`` so it is only used on the tiny
    graphs of unit tests and of the exhaustive Algorithm 1 variant.
    """
    n = graph.n
    if n == 0:
        raise ValueError("expansion of the empty graph is undefined")
    if n == 1:
        return 0.0
    if n > max_n:
        raise ValueError(
            f"exact vertex expansion is exponential; refusing n={n} > max_n={max_n}"
        )
    best = math.inf
    nodes = list(range(n))
    for size in range(1, n // 2 + 1):
        for combo in itertools.combinations(nodes, size):
            best = min(best, vertex_expansion_of_set(graph, combo))
            if best == 0.0:
                return 0.0
    return best


def vertex_expansion_sampled(
    graph: Graph,
    *,
    num_samples: int = 200,
    seed: Optional[int] = None,
    include_balls: bool = True,
) -> float:
    """Heuristic *upper bound* on the vertex expansion via candidate cuts.

    Evaluates ``|Out(S)|/|S|`` over a family of candidate sets -- BFS balls of
    all radii around sampled centers, random connected subsets grown by BFS
    with random frontier truncation, and single nodes -- and returns the
    minimum observed.  Because it only inspects candidate sets, the returned
    value is an upper bound on ``h(G)``; for expanders it is usually close,
    and for the bottleneck graphs used in the impossibility experiments it
    finds the bottleneck cut (which is a ball or a clique side), making it a
    useful discriminator between "expander" and "non-expander" workloads.
    """
    n = graph.n
    if n <= 1:
        return 0.0
    rng = random.Random(seed)
    best = math.inf
    half = n // 2

    # Single vertices.
    for u in range(min(n, 64)):
        best = min(best, vertex_expansion_of_set(graph, {u}))

    centers = [rng.randrange(n) for _ in range(max(1, num_samples // 4))]
    if include_balls:
        for center in centers:
            dist = graph.bfs_distances(center)
            by_radius: List[Set[int]] = []
            max_d = max(d for d in dist if d >= 0)
            for r in range(max_d + 1):
                s = {u for u, d in enumerate(dist) if 0 <= d <= r}
                if 0 < len(s) <= half:
                    best = min(best, vertex_expansion_of_set(graph, s))
                by_radius.append(s)

    # Random connected subsets.
    for _ in range(num_samples):
        target_size = rng.randint(1, max(1, half))
        start = rng.randrange(n)
        subset = {start}
        frontier = [start]
        while frontier and len(subset) < target_size:
            u = frontier.pop(rng.randrange(len(frontier)))
            for v in graph.neighbors(u):
                if v not in subset and len(subset) < target_size:
                    subset.add(v)
                    frontier.append(v)
        if 0 < len(subset) <= half:
            best = min(best, vertex_expansion_of_set(graph, subset))
    return best


def spectral_gap(graph: Graph) -> float:
    """Spectral gap ``d_avg - lambda_2`` of the adjacency matrix.

    For d-regular graphs this is the usual ``d - lambda_2``; a large gap
    certifies expansion (Cheeger).  Uses dense eigenvalues for small graphs
    and sparse Lanczos beyond a size threshold.
    """
    import numpy as np

    n = graph.n
    if n < 2:
        return 0.0
    if n <= 600:
        a = np.zeros((n, n))
        for u, v in graph.edges():
            a[u, v] = 1.0
            a[v, u] = 1.0
        eigenvalues = np.linalg.eigvalsh(a)
        lam1, lam2 = eigenvalues[-1], eigenvalues[-2]
        return float(lam1 - lam2)
    try:
        import scipy.sparse as sp
        import scipy.sparse.linalg as spla

        rows, cols = [], []
        for u, v in graph.edges():
            rows.extend([u, v])
            cols.extend([v, u])
        data = [1.0] * len(rows)
        a = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
        vals = spla.eigsh(a, k=2, which="LA", return_eigenvectors=False, maxiter=5000)
        vals = sorted(float(v) for v in vals)
        return vals[1] - vals[0]
    except Exception:  # pragma: no cover - scipy fallback path
        sampled = vertex_expansion_sampled(graph, num_samples=50, seed=0)
        return sampled


def cheeger_lower_bound(graph: Graph) -> float:
    """A Cheeger-style lower bound on edge conductance derived from the gap.

    For a d-regular graph with second adjacency eigenvalue ``lambda_2``, the
    edge expansion satisfies ``h_e(G) >= (d - lambda_2) / 2``; dividing by the
    maximum degree converts it to a (loose) vertex-expansion lower bound used
    as a certification sanity check in the experiments.
    """
    delta = graph.max_degree()
    if delta == 0:
        return 0.0
    return spectral_gap(graph) / (2.0 * delta)


# --------------------------------------------------------------------------- #
# Lemma 1 / Lemma 13 machinery
# --------------------------------------------------------------------------- #
def prune_to_expander(
    graph: Graph,
    removed: Set[int],
    *,
    target_expansion: float,
    max_prune_iterations: int = 64,
    seed: Optional[int] = None,
) -> Set[int]:
    """Approximate the pruning procedure of Lemma 13 (Appendix A).

    Lemma 13 removes a fault set ``F`` and then iteratively prunes any set of
    at most half the remaining nodes whose expansion falls below ``c * phi``;
    the result is a large subgraph with expansion ``>= c * phi``.  Finding the
    worst set is NP-hard, so this implementation prunes greedily using the
    same candidate-cut family as :func:`vertex_expansion_sampled`: while some
    candidate set of the surviving subgraph has expansion below
    ``target_expansion``, remove it.  The returned set of surviving nodes is
    therefore a *subset* of the true Lemma 13 subgraph's complement-free
    surviving set, which is the conservative direction for the experiments
    (we never overstate the size of the good set).
    """
    surviving = set(range(graph.n)) - set(removed)
    rng = random.Random(seed)
    for _ in range(max_prune_iterations):
        if not surviving:
            break
        # Work on the induced subgraph of surviving nodes.
        pruned_something = False
        # Candidate sets: low-degree-in-subgraph vertices and balls around them.
        internal_degree = {
            u: sum(1 for v in graph.neighbors(u) if v in surviving) for u in surviving
        }
        # Nodes with the weakest connectivity inside the surviving graph are
        # the natural candidates for bad cuts.
        weakest = sorted(surviving, key=lambda u: internal_degree[u])[:32]
        half = len(surviving) // 2
        for u in weakest:
            if u not in surviving:
                continue
            # Grow a ball inside the surviving set and test each prefix.
            dist_nodes = [u]
            seen = {u}
            frontier = [u]
            radius = 0
            while frontier and len(seen) <= half and radius < 6:
                radius += 1
                nxt = []
                for x in frontier:
                    for y in graph.neighbors(x):
                        if y in surviving and y not in seen:
                            seen.add(y)
                            nxt.append(y)
                            dist_nodes.append(y)
                frontier = nxt
                candidate = set(dist_nodes)
                if not candidate or len(candidate) > half:
                    break
                out = {
                    v
                    for x in candidate
                    for v in graph.neighbors(x)
                    if v in surviving and v not in candidate
                }
                if len(out) < target_expansion * len(candidate):
                    surviving -= candidate
                    pruned_something = True
                    break
        if not pruned_something:
            break
    return surviving


def good_set(
    graph: Graph,
    byzantine: Set[int],
    gamma: float,
    *,
    alpha_prime: Optional[float] = None,
    seed: Optional[int] = None,
    min_radius: int = 1,
) -> Set[int]:
    """The set ``Good`` of Lemma 1: honest nodes far from every Byzantine node.

    ``Good`` consists of the nodes outside ``B(Byz, floor((gamma/2) log_Δ n))``
    that additionally survive the Lemma 13 pruning (so that the subgraph they
    induce retains expansion ``alpha'``).  When ``alpha_prime`` is ``None``
    only the distance condition is applied, which is the part of Lemma 1 the
    experiments measure directly.

    ``min_radius`` keeps the exclusion radius at least 1 even when the
    asymptotic formula ``floor((gamma/2) log_Δ n)`` rounds to 0 at simulable
    network sizes -- a node sharing an edge with a Byzantine node can never be
    shielded from it, so excluding direct neighbors is the minimal sensible
    interpretation of Lemma 1 at small ``n``.  Pass ``min_radius=0`` for the
    literal formula.
    """
    n = graph.n
    if n == 0:
        return set()
    delta = max(2, graph.max_degree())
    radius = int(math.floor((gamma / 2.0) * math.log(max(n, 2), delta)))
    radius = max(min_radius, radius)
    contaminated = ball_of_set(graph, byzantine, radius) if byzantine else set()
    candidates = set(range(n)) - contaminated - set(byzantine)
    if alpha_prime is None:
        return candidates
    removed = set(range(n)) - candidates
    survivors = prune_to_expander(
        graph, removed, target_expansion=alpha_prime, seed=seed
    )
    return survivors & candidates


def good_treelike_set(
    graph: Graph,
    byzantine: Set[int],
    gamma: float,
    *,
    d: Optional[int] = None,
    radius: Optional[int] = None,
    min_radius: int = 1,
) -> Set[int]:
    """``GoodTL = Good ∩ TreeLike`` (Section 5.1).

    ``TreeLike`` is the set of locally tree-like nodes of Lemma 2, computed up
    to the radius ``log n / (10 log d)`` (or an explicit ``radius``).
    """
    good = good_set(graph, byzantine, gamma, min_radius=min_radius)
    degree = d if d is not None else max(2, graph.max_degree())
    r = radius if radius is not None else treelike_radius(graph.n, degree)
    tree_like = treelike_nodes(graph, degree=degree, radius=r)
    return good & tree_like
