"""Random regular graph models used by the randomized algorithm (Section 2).

The paper's second algorithm is analyzed on the ``H(n, d)`` *permutation
model*: the union of ``d/2`` independent random Hamiltonian cycles on the same
vertex set (``d >= 8`` an even constant).  Such graphs are Ramanujan expanders
with high probability and, by Greenhill et al. (2002), events that hold whp in
the permutation model also hold whp in the configuration model and therefore
for almost all simple ``d``-regular graphs -- exactly the argument the paper
uses to transfer Theorem 2 to "almost all d-regular graphs".

This module provides both models so that experiments can cross-check results
on the two distributions.
"""

from __future__ import annotations

import random
from typing import List, Optional, Set, Tuple

from repro.graphs.graph import Graph

__all__ = ["hnd_random_regular_graph", "configuration_model_graph"]


def _random_hamiltonian_cycle(n: int, rng: random.Random) -> List[Tuple[int, int]]:
    """Edges of a uniformly random Hamiltonian cycle on ``n`` nodes."""
    order = list(range(n))
    rng.shuffle(order)
    return [(order[i], order[(i + 1) % n]) for i in range(n)]


def hnd_random_regular_graph(
    n: int,
    d: int,
    *,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    name: Optional[str] = None,
) -> Graph:
    """Sample an ``H(n, d)`` permutation-model random regular graph.

    The graph is the union of ``d/2`` independent uniformly random Hamiltonian
    cycles.  The resulting multigraph is simplified (parallel edges and, for
    tiny ``n``, self-loops are merged), so node degrees are *at most* ``d`` and
    equal to ``d`` for all but an expected ``O(1)`` nodes -- the same
    simplification the paper applies when moving from the permutation model to
    simple graphs.

    Parameters
    ----------
    n:
        Number of nodes (``n >= 3``).
    d:
        Target degree; must be a positive even integer.
    seed, rng:
        Source of randomness; exactly one may be given.  With neither, a fresh
        nondeterministic ``random.Random()`` is used.
    name:
        Optional graph name for reports.
    """
    if n < 3:
        raise ValueError("H(n, d) requires n >= 3")
    if d < 2 or d % 2 != 0:
        raise ValueError("H(n, d) requires an even degree d >= 2")
    if seed is not None and rng is not None:
        raise ValueError("pass either seed or rng, not both")
    local_rng = rng if rng is not None else random.Random(seed)

    edges: List[Tuple[int, int]] = []
    for _ in range(d // 2):
        edges.extend(_random_hamiltonian_cycle(n, local_rng))
    graph_name = name if name is not None else f"H({n},{d})"
    return Graph.from_edges(n, edges, name=graph_name)


def configuration_model_graph(
    n: int,
    d: int,
    *,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    name: Optional[str] = None,
) -> Graph:
    """Sample a simple ``d``-regular graph (the "almost all d-regular graphs" model).

    Conceptually this is the configuration (pairing) model conditioned on
    simplicity: half-edges are paired uniformly at random and pairings with
    self-loops or parallel edges are rejected.  Naive whole-graph rejection has
    acceptance probability ``exp(-(d²-1)/4)``, which is astronomically small
    already for ``d = 8``, so the implementation delegates to networkx's
    ``random_regular_graph`` (Steger-Wormald style pairing with local
    conflict-avoidance and restarts), whose output distribution is
    asymptotically uniform over simple ``d``-regular graphs -- the same
    distribution the paper's "almost all d-regular graphs" statements refer to
    via contiguity.

    Parameters mirror :func:`hnd_random_regular_graph`.  ``n * d`` must be
    even.
    """
    if n < 2:
        raise ValueError("configuration model requires n >= 2")
    if d < 1:
        raise ValueError("configuration model requires d >= 1")
    if d >= n:
        raise ValueError("configuration model requires d < n for a simple graph")
    if (n * d) % 2 != 0:
        raise ValueError("configuration model requires n * d to be even")
    if seed is not None and rng is not None:
        raise ValueError("pass either seed or rng, not both")
    if rng is not None:
        effective_seed = rng.getrandbits(32)
    else:
        effective_seed = seed

    import networkx as nx

    graph_name = name if name is not None else f"config({n},{d})"
    nx_graph = nx.random_regular_graph(d, n, seed=effective_seed)
    graph = Graph.from_networkx(nx_graph, name=graph_name)
    return graph
