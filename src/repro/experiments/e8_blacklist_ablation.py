"""Experiment E8 -- ablation of the blacklisting mechanism (Section 5).

Claim: blacklisting is what stops Byzantine beacon flooding from inflating the
estimate (or preventing decisions) indefinitely; with it disabled, good nodes
keep seeing acceptable beacons every iteration and overshoot (or never
decide), while with it enabled the overshoot is bounded (Remark 2).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.adversary.placement import spread_placement
from repro.adversary.strategies import BeaconFloodAdversary
from repro.core.congest_counting import run_congest_counting
from repro.core.parameters import CongestParameters
from repro.experiments.common import ExperimentResult, mean_or_none
from repro.graphs.hnd import hnd_random_regular_graph
from repro.graphs.neighborhoods import ball_of_set

__all__ = ["run_experiment"]


def run_experiment(
    *,
    sizes: Sequence[int] = (128, 256),
    degree: int = 8,
    num_byzantine: int = 3,
    gamma: float = 0.5,
    trials: int = 1,
    seed: int = 0,
    extra_phases: int = 2,
) -> ExperimentResult:
    """Run the beacon-flood attack with blacklisting enabled vs disabled."""
    result = ExperimentResult(
        experiment="E8",
        claim=(
            "Section 5 / Remark 2: the blacklisting mechanism bounds the "
            "estimate overshoot caused by Byzantine beacon flooding; without "
            "it, far-from-Byzantine nodes fail to decide within the round budget"
        ),
    )
    for blacklist_enabled in (True, False):
        params = CongestParameters(
            gamma=gamma, d=degree, blacklist_enabled=blacklist_enabled
        )
        for n in sizes:
            budget = params.rounds_through_phase(
                int(math.ceil(math.log(n))) + extra_phases
            )
            per_trial = []
            for trial in range(trials):
                trial_seed = seed + 977 * trial + n
                graph = hnd_random_regular_graph(n, degree, seed=trial_seed)
                byz = spread_placement(graph, num_byzantine, seed=trial_seed)
                adversary = BeaconFloodAdversary(params)
                run = run_congest_counting(
                    graph,
                    byzantine=byz,
                    adversary=adversary,
                    params=params,
                    seed=trial_seed,
                    max_rounds=budget,
                )
                outcome = run.outcome
                contaminated = ball_of_set(graph, byz, 1)
                far = [u for u in outcome.records if u not in contaminated]
                far_decided = (
                    sum(1 for u in far if outcome.records[u].decided) / len(far)
                    if far
                    else 0.0
                )
                per_trial.append(
                    {
                        "decided": outcome.decided_fraction(),
                        "far_decided": far_decided,
                        "median": outcome.median_estimate(),
                        "max_est": outcome.estimate_range()[1],
                    }
                )
            result.add_row(
                blacklist=blacklist_enabled,
                n=n,
                ceil_ln_n=math.ceil(math.log(n)),
                byzantine=num_byzantine,
                round_budget=budget,
                decided_fraction=mean_or_none([t["decided"] for t in per_trial]),
                far_node_decided_fraction=mean_or_none(
                    [t["far_decided"] for t in per_trial]
                ),
                median_estimate=mean_or_none([t["median"] for t in per_trial]),
                max_estimate=mean_or_none([t["max_est"] for t in per_trial]),
            )
    result.add_note(
        "With blacklist=yes, far-from-Byzantine nodes decide within the budget "
        "and max_estimate stays within a small constant of ceil_ln_n; with "
        "blacklist=no, the flooding adversary keeps far nodes undecided "
        "(far_node_decided_fraction collapses) because every iteration still "
        "delivers an acceptable beacon."
    )
    return result
