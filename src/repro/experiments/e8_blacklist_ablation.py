"""Experiment E8 -- ablation of the blacklisting mechanism (Section 5).

Claim: blacklisting is what stops Byzantine beacon flooding from inflating the
estimate (or preventing decisions) indefinitely; with it disabled, good nodes
keep seeing acceptable beacons every iteration and overshoot (or never
decide), while with it enabled the overshoot is bounded (Remark 2).
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.adversary.placement import spread_placement
from repro.adversary.strategies import BeaconFloodAdversary
from repro.core.congest_counting import run_congest_counting
from repro.core.parameters import CongestParameters
from repro.experiments.common import ExperimentResult, mean_or_none, run_configs
from repro.graphs.hnd import hnd_random_regular_graph
from repro.graphs.neighborhoods import ball_of_set
from repro.runner import SweepConfig, sweep_task

__all__ = ["run_experiment", "sweep_configs"]


@sweep_task("e8.trial")
def _trial(
    *,
    blacklist_enabled: bool,
    n: int,
    degree: int,
    num_byzantine: int,
    gamma: float,
    budget: int,
    trial_seed: int,
) -> dict:
    """One beacon-flood run with blacklisting on or off."""
    params = CongestParameters(gamma=gamma, d=degree, blacklist_enabled=blacklist_enabled)
    graph = hnd_random_regular_graph(n, degree, seed=trial_seed)
    byz = spread_placement(graph, num_byzantine, seed=trial_seed)
    adversary = BeaconFloodAdversary(params)
    run = run_congest_counting(
        graph,
        byzantine=byz,
        adversary=adversary,
        params=params,
        seed=trial_seed,
        max_rounds=budget,
    )
    outcome = run.outcome
    contaminated = ball_of_set(graph, byz, 1)
    far = [u for u in outcome.records if u not in contaminated]
    far_decided = (
        sum(1 for u in far if outcome.records[u].decided) / len(far) if far else 0.0
    )
    return {
        "decided": outcome.decided_fraction(),
        "far_decided": far_decided,
        "median": outcome.median_estimate(),
        "max_est": outcome.estimate_range()[1],
    }


def _budget_for(n: int, gamma: float, degree: int, extra_phases: int) -> int:
    params = CongestParameters(gamma=gamma, d=degree)
    return params.rounds_through_phase(int(math.ceil(math.log(n))) + extra_phases)


def sweep_configs(
    *,
    sizes: Sequence[int] = (128, 256),
    degree: int = 8,
    num_byzantine: int = 3,
    gamma: float = 0.5,
    trials: int = 1,
    seed: int = 0,
    extra_phases: int = 2,
) -> List[SweepConfig]:
    """The (blacklist on/off, size, trial) grid as a flat config list."""
    return [
        SweepConfig(
            "e8.trial",
            {
                "blacklist_enabled": blacklist_enabled,
                "n": n,
                "degree": degree,
                "num_byzantine": num_byzantine,
                "gamma": gamma,
                "budget": _budget_for(n, gamma, degree, extra_phases),
                "trial_seed": seed + 977 * trial + n,
            },
        )
        for blacklist_enabled in (True, False)
        for n in sizes
        for trial in range(trials)
    ]


def run_experiment(
    *,
    sizes: Sequence[int] = (128, 256),
    degree: int = 8,
    num_byzantine: int = 3,
    gamma: float = 0.5,
    trials: int = 1,
    seed: int = 0,
    extra_phases: int = 2,
    runner=None,
) -> ExperimentResult:
    """Run the beacon-flood attack with blacklisting enabled vs disabled."""
    configs = sweep_configs(
        sizes=sizes,
        degree=degree,
        num_byzantine=num_byzantine,
        gamma=gamma,
        trials=trials,
        seed=seed,
        extra_phases=extra_phases,
    )
    flat = run_configs(configs, runner)

    result = ExperimentResult(
        experiment="E8",
        claim=(
            "Section 5 / Remark 2: the blacklisting mechanism bounds the "
            "estimate overshoot caused by Byzantine beacon flooding; without "
            "it, far-from-Byzantine nodes fail to decide within the round budget"
        ),
    )
    index = 0
    for blacklist_enabled in (True, False):
        for n in sizes:
            budget = _budget_for(n, gamma, degree, extra_phases)
            per_trial = flat[index : index + trials]
            index += trials
            result.add_row(
                blacklist=blacklist_enabled,
                n=n,
                ceil_ln_n=math.ceil(math.log(n)),
                byzantine=num_byzantine,
                round_budget=budget,
                decided_fraction=mean_or_none([t["decided"] for t in per_trial]),
                far_node_decided_fraction=mean_or_none(
                    [t["far_decided"] for t in per_trial]
                ),
                median_estimate=mean_or_none([t["median"] for t in per_trial]),
                max_estimate=mean_or_none([t["max_est"] for t in per_trial]),
            )
    result.add_note(
        "With blacklist=yes, far-from-Byzantine nodes decide within the budget "
        "and max_estimate stays within a small constant of ceil_ln_n; with "
        "blacklist=no, the flooding adversary keeps far nodes undecided "
        "(far_node_decided_fraction collapses) because every iteration still "
        "delivers an acceptable beacon."
    )
    return result
