"""Experiment E4 -- Theorem 3 (impossibility without expansion).

Claim: a single Byzantine node gluing ``t`` copies of a graph makes the copies
indistinguishable from a standalone network, so no algorithm can give more
than half the nodes a good approximation of the true (t-times larger) size;
expansion of the whole network is therefore necessary.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.core.congest_counting import run_congest_counting
from repro.core.parameters import CongestParameters
from repro.experiments.common import ExperimentResult, run_configs
from repro.graphs.expansion import vertex_expansion_sampled
from repro.graphs.generators import barbell_graph, cycle_graph
from repro.graphs.hnd import hnd_random_regular_graph
from repro.impossibility.construction import build_chained_instance, copies_isomorphic_to_base
from repro.impossibility.experiment import run_indistinguishability_experiment
from repro.runner import SweepConfig, sweep_task

__all__ = ["run_experiment", "sweep_configs"]


@sweep_task("e4.glued")
def _glued(*, base_n: int, degree: int, copies: int, num_trials: int, seed: int) -> dict:
    """One chained-copies construction: structure checks plus both runs."""
    base = hnd_random_regular_graph(base_n, degree, seed=seed)
    instance = build_chained_instance(base, copies, seed=seed)
    structural_ok = copies_isomorphic_to_base(instance)
    glued_expansion = vertex_expansion_sampled(instance.glued, seed=seed, num_samples=60)
    outcome = run_indistinguishability_experiment(
        base, copies, seed=seed, num_trials=num_trials
    )
    return {
        "construction": f"{copies}x H({base_n},{degree}) glued",
        "true_n": outcome.glued_n,
        "ln_true_n": round(outcome.log_glued_n, 2),
        "ln_hidden_base": round(outcome.log_base_n, 2),
        "glued_expansion_upper_bound": round(glued_expansion, 3),
        "copies_isomorphic": structural_ok,
        "median_estimate_base": outcome.base_median_estimate,
        "median_estimate_glued": outcome.glued_median_estimate,
        "fraction_tracking_base_size": round(
            outcome.glued_fraction_matching_base_size, 3
        ),
        "fraction_correct_for_true_size": round(
            outcome.glued_fraction_correct_for_glued_size, 3
        ),
        "demonstrates_impossibility": outcome.demonstrates_impossibility(),
    }


@sweep_task("e4.control")
def _control(*, kind: str, base_n: int, degree: int, seed: int) -> dict:
    """One low-expansion negative control (benign Algorithm 2 run)."""
    params = CongestParameters(d=degree)
    graph = cycle_graph(base_n * 2) if kind == "cycle" else barbell_graph(base_n, 2)
    expansion = vertex_expansion_sampled(graph, seed=seed, num_samples=60)
    run = run_congest_counting(graph, params=params, seed=seed)
    outcome = run.outcome
    return {
        "construction": f"control: {kind}({graph.n})",
        "true_n": graph.n,
        "ln_true_n": round(math.log(graph.n), 2),
        "ln_hidden_base": None,
        "glued_expansion_upper_bound": round(expansion, 3),
        "copies_isomorphic": None,
        "median_estimate_base": None,
        "median_estimate_glued": outcome.median_estimate(),
        "fraction_tracking_base_size": None,
        "fraction_correct_for_true_size": round(
            outcome.fraction_within_band(0.35, 1.6), 3
        ),
        "demonstrates_impossibility": None,
    }


def sweep_configs(
    *,
    base_n: int = 64,
    degree: int = 8,
    copy_counts: Sequence[int] = (4, 8),
    num_trials: int = 2,
    seed: int = 0,
    include_low_expansion_controls: bool = True,
) -> List[SweepConfig]:
    """Glued constructions first, then the optional negative controls."""
    configs = [
        SweepConfig(
            "e4.glued",
            {
                "base_n": base_n,
                "degree": degree,
                "copies": copies,
                "num_trials": num_trials,
                "seed": seed,
            },
        )
        for copies in copy_counts
    ]
    if include_low_expansion_controls:
        configs.extend(
            SweepConfig(
                "e4.control",
                {"kind": kind, "base_n": base_n, "degree": degree, "seed": seed},
            )
            for kind in ("cycle", "barbell")
        )
    return configs


def run_experiment(
    *,
    base_n: int = 64,
    degree: int = 8,
    copy_counts: Sequence[int] = (4, 8),
    num_trials: int = 2,
    seed: int = 0,
    include_low_expansion_controls: bool = True,
    runner=None,
) -> ExperimentResult:
    """The chained-copies construction plus low-expansion negative controls."""
    configs = sweep_configs(
        base_n=base_n,
        degree=degree,
        copy_counts=copy_counts,
        num_trials=num_trials,
        seed=seed,
        include_low_expansion_controls=include_low_expansion_controls,
    )
    rows = run_configs(configs, runner)

    result = ExperimentResult(
        experiment="E4",
        claim=(
            "Theorem 3: without global expansion a single Byzantine cut node "
            "hides (t-1)/t of the network, so estimates track the base size "
            "rather than the true size"
        ),
    )
    for row in rows:
        result.add_row(**row)

    if include_low_expansion_controls:
        result.add_note(
            "Controls run Algorithm 2 (whose guarantees require expansion) on "
            "low-expansion topologies without any Byzantine nodes; the quality "
            "of the estimates there is not covered by Theorem 2 and is reported "
            "for context only."
        )
    result.add_note(
        "demonstrates_impossibility = glued-run estimates match the base-run "
        "estimates (the cut node hid the other copies) while the true size is "
        "at least e times larger."
    )
    return result
