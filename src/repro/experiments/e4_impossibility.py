"""Experiment E4 -- Theorem 3 (impossibility without expansion).

Claim: a single Byzantine node gluing ``t`` copies of a graph makes the copies
indistinguishable from a standalone network, so no algorithm can give more
than half the nodes a good approximation of the true (t-times larger) size;
expansion of the whole network is therefore necessary.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.congest_counting import run_congest_counting
from repro.core.parameters import CongestParameters
from repro.experiments.common import ExperimentResult
from repro.graphs.expansion import vertex_expansion_sampled
from repro.graphs.generators import barbell_graph, cycle_graph
from repro.graphs.hnd import hnd_random_regular_graph
from repro.impossibility.construction import build_chained_instance, copies_isomorphic_to_base
from repro.impossibility.experiment import run_indistinguishability_experiment

__all__ = ["run_experiment"]


def run_experiment(
    *,
    base_n: int = 64,
    degree: int = 8,
    copy_counts: Sequence[int] = (4, 8),
    num_trials: int = 2,
    seed: int = 0,
    include_low_expansion_controls: bool = True,
) -> ExperimentResult:
    """The chained-copies construction plus low-expansion negative controls."""
    result = ExperimentResult(
        experiment="E4",
        claim=(
            "Theorem 3: without global expansion a single Byzantine cut node "
            "hides (t-1)/t of the network, so estimates track the base size "
            "rather than the true size"
        ),
    )
    base = hnd_random_regular_graph(base_n, degree, seed=seed)

    for copies in copy_counts:
        instance = build_chained_instance(base, copies, seed=seed)
        structural_ok = copies_isomorphic_to_base(instance)
        glued_expansion = vertex_expansion_sampled(
            instance.glued, seed=seed, num_samples=60
        )
        outcome = run_indistinguishability_experiment(
            base, copies, seed=seed, num_trials=num_trials
        )
        result.add_row(
            construction=f"{copies}x H({base_n},{degree}) glued",
            true_n=outcome.glued_n,
            ln_true_n=round(outcome.log_glued_n, 2),
            ln_hidden_base=round(outcome.log_base_n, 2),
            glued_expansion_upper_bound=round(glued_expansion, 3),
            copies_isomorphic=structural_ok,
            median_estimate_base=outcome.base_median_estimate,
            median_estimate_glued=outcome.glued_median_estimate,
            fraction_tracking_base_size=round(
                outcome.glued_fraction_matching_base_size, 3
            ),
            fraction_correct_for_true_size=round(
                outcome.glued_fraction_correct_for_glued_size, 3
            ),
            demonstrates_impossibility=outcome.demonstrates_impossibility(),
        )

    if include_low_expansion_controls:
        params = CongestParameters(d=degree)
        controls = [
            ("cycle", cycle_graph(base_n * 2)),
            ("barbell", barbell_graph(base_n, 2)),
        ]
        for name, graph in controls:
            expansion = vertex_expansion_sampled(graph, seed=seed, num_samples=60)
            run = run_congest_counting(graph, params=params, seed=seed)
            outcome = run.outcome
            result.add_row(
                construction=f"control: {name}({graph.n})",
                true_n=graph.n,
                ln_true_n=round(math.log(graph.n), 2),
                ln_hidden_base=None,
                glued_expansion_upper_bound=round(expansion, 3),
                copies_isomorphic=None,
                median_estimate_base=None,
                median_estimate_glued=outcome.median_estimate(),
                fraction_tracking_base_size=None,
                fraction_correct_for_true_size=round(
                    outcome.fraction_within_band(0.35, 1.6), 3
                ),
                demonstrates_impossibility=None,
            )
        result.add_note(
            "Controls run Algorithm 2 (whose guarantees require expansion) on "
            "low-expansion topologies without any Byzantine nodes; the quality "
            "of the estimates there is not covered by Theorem 2 and is reported "
            "for context only."
        )
    result.add_note(
        "demonstrates_impossibility = glued-run estimates match the base-run "
        "estimates (the cut node hid the other copies) while the true size is "
        "at least e times larger."
    )
    return result
