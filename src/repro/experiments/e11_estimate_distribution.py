"""Experiment E11 -- per-node estimate distribution (Remark 2).

Claim: Algorithm 2's estimates may differ across nodes (the approximation
factor is not universal) but, with high probability, every GoodTL node's
estimate is upper-bounded by ``⌈ln n⌉`` plus an additive constant, and
lower-bounded by the early-phase bound ρ (at simulable scales, by a constant
fraction of ``log_d n``).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import List, Sequence

from repro.core.congest_counting import run_congest_counting
from repro.core.parameters import CongestParameters
from repro.experiments.common import ExperimentResult, run_configs
from repro.graphs.hnd import hnd_random_regular_graph
from repro.runner import SweepConfig, sweep_task

__all__ = ["run_experiment", "sweep_configs"]


@sweep_task("e11.trial")
def _trial(*, n: int, degree: int, trial_seed: int) -> List[float]:
    """Decided estimates of one benign Algorithm 2 run."""
    params = CongestParameters(d=degree)
    graph = hnd_random_regular_graph(n, degree, seed=trial_seed)
    run = run_congest_counting(graph, params=params, seed=trial_seed)
    return list(run.outcome.estimates())


def sweep_configs(
    *,
    sizes: Sequence[int] = (128, 256, 512),
    degree: int = 8,
    trials: int = 2,
    seed: int = 0,
) -> List[SweepConfig]:
    """The experiment's sweep as a flat config list (trials nested per size)."""
    return [
        SweepConfig(
            "e11.trial",
            {"n": n, "degree": degree, "trial_seed": seed + 23 * trial + n},
        )
        for n in sizes
        for trial in range(trials)
    ]


def run_experiment(
    *,
    sizes: Sequence[int] = (128, 256, 512),
    degree: int = 8,
    trials: int = 2,
    seed: int = 0,
    runner=None,
) -> ExperimentResult:
    """Histogram of decided values per network size (benign runs)."""
    configs = sweep_configs(sizes=sizes, degree=degree, trials=trials, seed=seed)
    flat = run_configs(configs, runner)

    result = ExperimentResult(
        experiment="E11",
        claim=(
            "Remark 2: per-node estimates vary by at most a constant factor and "
            "are upper-bounded by ceil(ln n) + 1"
        ),
    )
    for index, n in enumerate(sizes):
        histogram: Counter = Counter()
        for estimates in flat[index * trials : (index + 1) * trials]:
            histogram.update(estimates)
        total = sum(histogram.values())
        values = sorted(histogram)
        result.add_row(
            n=n,
            ln_n=round(math.log(n), 2),
            ceil_ln_n=math.ceil(math.log(n)),
            log_d_n=round(math.log(n, degree), 2),
            distinct_values=len(values),
            min_value=values[0] if values else None,
            max_value=values[-1] if values else None,
            histogram=str({v: round(c / total, 3) for v, c in sorted(histogram.items())}),
            spread_factor=(values[-1] / values[0]) if values and values[0] else None,
        )
    result.add_note(
        "max_value must not exceed ceil_ln_n + 1; spread_factor (max/min of "
        "decided values) stays bounded by a constant across n, which is the "
        "'constant factor but not universal' statement of Remark 2."
    )
    return result
