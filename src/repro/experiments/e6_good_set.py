"""Experiment E6 -- Lemma 1 / Lemma 13 (the Good set and its expansion).

Claim: removing the radius-``(γ/2)log_Δ n`` neighborhood of the Byzantine
nodes (plus a Lemma 13 pruning) leaves a ``Good`` set of ``n - 2|F| - o(n)``
nodes whose induced subgraph still has constant vertex expansion.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.core.parameters import byzantine_budget
from repro.experiments.common import ExperimentResult, mean_or_none, run_configs
from repro.graphs.expansion import good_set, vertex_expansion_sampled
from repro.graphs.hnd import hnd_random_regular_graph
from repro.graphs.neighborhoods import induced_subgraph
from repro.runner import SweepConfig, sweep_task
from repro.scenarios import place_byzantine

__all__ = ["run_experiment", "sweep_configs"]


@sweep_task("e6.trial")
def _trial(
    *, n: int, degree: int, gamma: float, placement: str, num_byz: int, trial_seed: int
) -> dict:
    """|Good| and the sampled expansion of its induced subgraph for one seed."""
    graph = hnd_random_regular_graph(n, degree, seed=trial_seed)
    byz = place_byzantine(placement, graph, num_byz, seed=trial_seed)
    good = good_set(graph, byz, gamma)
    expansion = None
    if len(good) >= 2:
        sub, _ = induced_subgraph(graph, sorted(good))
        expansion = vertex_expansion_sampled(sub, seed=trial_seed, num_samples=40)
    return {"size": len(good), "expansion": expansion}


def sweep_configs(
    *,
    sizes: Sequence[int] = (256, 512, 1024),
    degree: int = 8,
    gamma: float = 0.7,
    placements: Sequence[str] = ("random", "clustered", "spread"),
    trials: int = 2,
    seed: int = 0,
) -> List[SweepConfig]:
    """The (placement, size, trial) grid as a flat config list."""
    return [
        SweepConfig(
            "e6.trial",
            {
                "n": n,
                "degree": degree,
                "gamma": gamma,
                "placement": placement_name,
                "num_byz": byzantine_budget(n, 1.0 - gamma),
                "trial_seed": seed + 389 * trial + n,
            },
        )
        for placement_name in placements
        for n in sizes
        for trial in range(trials)
    ]


def run_experiment(
    *,
    sizes: Sequence[int] = (256, 512, 1024),
    degree: int = 8,
    gamma: float = 0.7,
    placements: Sequence[str] = ("random", "clustered", "spread"),
    trials: int = 2,
    seed: int = 0,
    runner=None,
) -> ExperimentResult:
    """Measure |Good| and the expansion of its induced subgraph per placement."""
    configs = sweep_configs(
        sizes=sizes,
        degree=degree,
        gamma=gamma,
        placements=placements,
        trials=trials,
        seed=seed,
    )
    flat = run_configs(configs, runner)

    result = ExperimentResult(
        experiment="E6",
        claim=(
            "Lemma 1: excluding B(Byz, (gamma/2) log_Delta n) leaves a Good set "
            "of n - o(n) nodes whose induced subgraph keeps constant expansion"
        ),
    )
    index = 0
    for placement_name in placements:
        for n in sizes:
            num_byz = byzantine_budget(n, 1.0 - gamma)
            per_trial = flat[index : index + trials]
            index += trials
            sizes_seen = [t["size"] for t in per_trial]
            expansions = [t["expansion"] for t in per_trial if t["expansion"] is not None]
            mean_size = mean_or_none(sizes_seen)
            result.add_row(
                n=n,
                byzantine=num_byz,
                placement=placement_name,
                mean_good_size=round(mean_size, 1),
                mean_good_fraction=round(mean_size / n, 4),
                lemma_floor=n - 2 * num_byz * degree,
                mean_induced_expansion_upper_bound=mean_or_none(
                    [round(e, 3) for e in expansions]
                ),
            )
    result.add_note(
        "mean_induced_expansion_upper_bound is a sampled upper bound on the "
        "vertex expansion of the Good-induced subgraph; staying well above 0 "
        "(and comparable to the full graph's ~1.0) is the Lemma 1(2) behaviour. "
        "lemma_floor is the crude lower bound n - 2|B(Byz,1)|."
    )
    return result
