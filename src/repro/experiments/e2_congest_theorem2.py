"""Experiment E2 -- Theorem 2 (randomized small-message CONGEST algorithm).

Claim: on ``H(n, d)`` random regular graphs with ``B(n) = n^(1/2-ξ)``
adversarially placed Byzantine nodes, Algorithm 2 lets ``(1-β)n`` nodes decide
a constant-factor estimate of ``log n`` within ``O(B(n)·log² n)`` rounds while
most good nodes send only ``O(log n)``-bit messages.

The sweep is expressed as a :class:`~repro.scenarios.suite.ScenarioSuite`:
one declarative scenario per network size, compiled to generic
``scenario.run`` sweep configs.  ``examples/scenario_e2_small.json`` is the
committed JSON form of the small configuration -- the golden table
regenerates from that spec alone.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.core.parameters import CongestParameters
from repro.experiments.common import ExperimentResult
from repro.runner import SweepConfig
from repro.scenarios import ComponentSpec, Scenario, ScenarioSuite, SuiteRow

__all__ = ["run_experiment", "scenario_suite", "sweep_configs"]


def scenario_suite(
    *,
    sizes: Sequence[int] = (128, 256, 512),
    degree: int = 8,
    byzantine_exponent: float = 0.3,
    behaviour: str = "beacon-flood",
    placement: str = "spread",
    gamma: float = 0.5,
    trials: int = 1,
    seed: int = 0,
    max_phase_slack: int = 1,
) -> ScenarioSuite:
    """The experiment as declarative data: one scenario (and row) per size."""
    params = CongestParameters(gamma=gamma, d=degree)
    rows: List[SuiteRow] = []
    for n in sizes:
        num_byz = max(1, int(math.floor(n ** byzantine_exponent)))
        round_budget = params.rounds_through_phase(
            int(math.ceil(math.log(n))) + max_phase_slack
        )
        scenario = Scenario(
            name=f"e2-n{n}",
            graph=ComponentSpec("hnd", {"n": n, "degree": degree}),
            adversary=ComponentSpec(behaviour),
            placement=ComponentSpec(placement, {"count": num_byz}),
            protocol=ComponentSpec(
                "congest", {"gamma": gamma, "d": degree, "max_rounds": round_budget}
            ),
            # GoodTL stand-in at small scale: honest nodes at distance >= 2
            # from every Byzantine node -- the set Theorem 2's (1-beta)n
            # guarantee is really about (nodes adjacent to a Byzantine
            # flooder can legitimately be kept undecided forever).
            params={
                "evaluation": {"kind": "far", "radius": 1},
                "check": {"name": "theorem2", "beta": 0.25},
            },
            seeds=tuple(seed + 104729 * trial + n for trial in range(trials)),
        )
        rows.append(
            SuiteRow(
                scenario=scenario,
                static={
                    "n": n,
                    "ln_n": round(math.log(n), 2),
                    "byzantine": num_byz,
                    "behaviour": behaviour,
                    "round_budget": round_budget,
                },
                columns={
                    "decided_fraction": "decided_fraction_all",
                    "fraction_in_band": "fraction_in_band_all",
                    "goodtl_fraction_in_band": "fraction_in_band",
                    "median_estimate": "median_estimate",
                    "max_decision_round": "max_decision_round",
                    "small_message_fraction": "small_message_fraction",
                    "theorem2_pass_rate": "check_passed",
                },
            )
        )
    return ScenarioSuite(
        experiment="E2",
        claim=(
            "Theorem 2: randomized CONGEST counting decides a constant-factor "
            "estimate of log n for (1-beta)n nodes in O(B(n) log^2 n) rounds "
            "using small messages, under B(n) Byzantine nodes"
        ),
        rows=rows,
        notes=[
            "decided_fraction and fraction_in_band are over ALL honest nodes; "
            "goodtl_fraction_in_band and the theorem2 check evaluate only nodes at "
            "distance >= 2 from every Byzantine node (the small-scale stand-in for "
            "the paper's GoodTL set); max_decision_round should stay within the "
            "O(B log^2 n) round_budget column."
        ],
    )


def sweep_configs(**kwargs: object) -> List[SweepConfig]:
    """The experiment's sweep as a flat config list (trials nested per size)."""
    return scenario_suite(**kwargs).compile()


def run_experiment(*, runner=None, **kwargs: object) -> ExperimentResult:
    """Sweep network sizes under Byzantine beacon attacks.

    The ``byzantine_exponent`` defaults to 0.3 rather than the maximal 1/2-ξ:
    the theorem tolerates *up to* ``n^(1/2-ξ)`` Byzantine nodes, but at
    simulable sizes a budget that large makes the excluded neighborhood
    ``B(Byz, ·)`` a constant fraction of the network (β would not be small);
    the benchmark also reports the fraction over nodes at distance ≥ 2 from
    every Byzantine node, the small-scale stand-in for GoodTL.
    """
    return scenario_suite(**kwargs).run(runner)
