"""Experiment E2 -- Theorem 2 (randomized small-message CONGEST algorithm).

Claim: on ``H(n, d)`` random regular graphs with ``B(n) = n^(1/2-ξ)``
adversarially placed Byzantine nodes, Algorithm 2 lets ``(1-β)n`` nodes decide
a constant-factor estimate of ``log n`` within ``O(B(n)·log² n)`` rounds while
most good nodes send only ``O(log n)``-bit messages.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.adversary.placement import random_placement, spread_placement
from repro.adversary.strategies import BeaconFloodAdversary, PathTamperAdversary
from repro.analysis.accuracy import theorem2_check
from repro.core.congest_counting import run_congest_counting
from repro.core.parameters import CongestParameters
from repro.experiments.common import ExperimentResult, mean_or_none, run_configs
from repro.graphs.hnd import hnd_random_regular_graph
from repro.graphs.neighborhoods import ball_of_set
from repro.runner import SweepConfig, sweep_task
from repro.simulator.byzantine import SilentAdversary

__all__ = ["run_experiment", "sweep_configs"]

_BEHAVIOURS = {
    "silent": SilentAdversary,
    "beacon-flood": BeaconFloodAdversary,
    "path-tamper": PathTamperAdversary,
}

_PLACEMENTS = {"random": random_placement, "spread": spread_placement}


@sweep_task("e2.trial")
def _trial(
    *,
    n: int,
    degree: int,
    num_byz: int,
    behaviour: str,
    placement: str,
    gamma: float,
    round_budget: int,
    trial_seed: int,
) -> dict:
    """One (size, seed) cell: run Algorithm 2 under attack and summarize."""
    params = CongestParameters(gamma=gamma, d=degree)
    graph = hnd_random_regular_graph(n, degree, seed=trial_seed)
    byz = _PLACEMENTS[placement](graph, num_byz, seed=trial_seed)
    behaviour_cls = _BEHAVIOURS[behaviour]
    adversary = behaviour_cls() if behaviour == "silent" else behaviour_cls(params)
    # GoodTL stand-in at small scale: honest nodes at distance >= 2
    # from every Byzantine node -- the set Theorem 2's (1-beta)n
    # guarantee is really about (nodes adjacent to a Byzantine flooder
    # can legitimately be kept undecided forever).
    contaminated = ball_of_set(graph, byz, 1)
    evaluation = {u for u in range(graph.n) if u not in contaminated and u not in byz}
    run = run_congest_counting(
        graph,
        byzantine=byz,
        adversary=adversary,
        params=params,
        seed=trial_seed,
        max_rounds=round_budget,
        evaluation_set=evaluation,
    )
    outcome = run.outcome
    far_in_band = outcome.fraction_within_band(0.35, 1.6)
    check = theorem2_check(
        outcome, beta=0.25, num_byzantine=num_byz, round_budget=round_budget
    )
    return {
        "decided": outcome.decided_fraction(over_evaluation_set=False),
        "in_band": outcome.fraction_within_band(0.35, 1.6, over_evaluation_set=False),
        "far_in_band": far_in_band,
        "median": outcome.median_estimate(),
        "rounds": outcome.max_decision_round(),
        "small": outcome.small_message_fraction,
        "passed": 1.0 if check.passed else 0.0,
    }


def sweep_configs(
    *,
    sizes: Sequence[int] = (128, 256, 512),
    degree: int = 8,
    byzantine_exponent: float = 0.3,
    behaviour: str = "beacon-flood",
    placement: str = "spread",
    gamma: float = 0.5,
    trials: int = 1,
    seed: int = 0,
    max_phase_slack: int = 1,
) -> List[SweepConfig]:
    """The experiment's sweep as a flat config list (trials nested per size)."""
    if behaviour not in _BEHAVIOURS:
        raise ValueError(f"unknown behaviour {behaviour!r}; options: {sorted(_BEHAVIOURS)}")
    if placement not in _PLACEMENTS:
        raise ValueError(f"unknown placement {placement!r}; options: {sorted(_PLACEMENTS)}")
    params = CongestParameters(gamma=gamma, d=degree)
    configs: List[SweepConfig] = []
    for n in sizes:
        num_byz = max(1, int(math.floor(n ** byzantine_exponent)))
        round_budget = params.rounds_through_phase(
            int(math.ceil(math.log(n))) + max_phase_slack
        )
        for trial in range(trials):
            configs.append(
                SweepConfig(
                    "e2.trial",
                    {
                        "n": n,
                        "degree": degree,
                        "num_byz": num_byz,
                        "behaviour": behaviour,
                        "placement": placement,
                        "gamma": gamma,
                        "round_budget": round_budget,
                        "trial_seed": seed + 104729 * trial + n,
                    },
                )
            )
    return configs


def run_experiment(
    *,
    sizes: Sequence[int] = (128, 256, 512),
    degree: int = 8,
    byzantine_exponent: float = 0.3,
    behaviour: str = "beacon-flood",
    placement: str = "spread",
    gamma: float = 0.5,
    trials: int = 1,
    seed: int = 0,
    max_phase_slack: int = 1,
    runner=None,
) -> ExperimentResult:
    """Sweep network sizes under Byzantine beacon attacks.

    ``byzantine_exponent`` defaults to 0.3 rather than the maximal 1/2-ξ: the
    theorem tolerates *up to* ``n^(1/2-ξ)`` Byzantine nodes, but at simulable
    sizes a budget that large makes the excluded neighborhood ``B(Byz, ·)`` a
    constant fraction of the network (β would not be small); the benchmark
    also reports the fraction over nodes at distance ≥ 2 from every Byzantine
    node, the small-scale stand-in for GoodTL.
    """
    configs = sweep_configs(
        sizes=sizes,
        degree=degree,
        byzantine_exponent=byzantine_exponent,
        behaviour=behaviour,
        placement=placement,
        gamma=gamma,
        trials=trials,
        seed=seed,
        max_phase_slack=max_phase_slack,
    )
    rows = run_configs(configs, runner)

    result = ExperimentResult(
        experiment="E2",
        claim=(
            "Theorem 2: randomized CONGEST counting decides a constant-factor "
            "estimate of log n for (1-beta)n nodes in O(B(n) log^2 n) rounds "
            "using small messages, under B(n) Byzantine nodes"
        ),
    )
    for index, n in enumerate(sizes):
        num_byz = configs[index * trials].params["num_byz"]
        round_budget = configs[index * trials].params["round_budget"]
        per_trial = rows[index * trials : (index + 1) * trials]
        result.add_row(
            n=n,
            ln_n=round(math.log(n), 2),
            byzantine=num_byz,
            behaviour=behaviour,
            round_budget=round_budget,
            decided_fraction=mean_or_none([t["decided"] for t in per_trial]),
            fraction_in_band=mean_or_none([t["in_band"] for t in per_trial]),
            goodtl_fraction_in_band=mean_or_none([t["far_in_band"] for t in per_trial]),
            median_estimate=mean_or_none([t["median"] for t in per_trial]),
            max_decision_round=mean_or_none([t["rounds"] for t in per_trial]),
            small_message_fraction=mean_or_none([t["small"] for t in per_trial]),
            theorem2_pass_rate=mean_or_none([t["passed"] for t in per_trial]),
        )
    result.add_note(
        "decided_fraction and fraction_in_band are over ALL honest nodes; "
        "goodtl_fraction_in_band and the theorem2 check evaluate only nodes at "
        "distance >= 2 from every Byzantine node (the small-scale stand-in for "
        "the paper's GoodTL set); max_decision_round should stay within the "
        "O(B log^2 n) round_budget column."
    )
    return result
