"""Experiment E12 -- round-complexity scaling (Theorem 1 and Theorem 2 shapes).

Claim: Algorithm 1's decision rounds track ``diam(G) + 1 = Θ(log n)`` and
Algorithm 2's rounds track ``O(B(n)·log² n)``; least-squares fits against
those models should explain the measurements well (high R²).
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.adversary.strategies import BeaconFloodAdversary
from repro.adversary.placement import spread_placement
from repro.analysis.complexity import fit_blog2_model, fit_log_model
from repro.core.congest_counting import run_congest_counting
from repro.core.local_counting import run_local_counting
from repro.core.parameters import CongestParameters, LocalParameters
from repro.experiments.common import ExperimentResult, run_configs
from repro.graphs.hnd import hnd_random_regular_graph
from repro.runner import SweepConfig, sweep_task

__all__ = ["run_experiment", "sweep_configs"]


@sweep_task("e12.local")
def _local_rounds(*, n: int, degree: int, seed: int) -> int:
    """Measured rounds of one Algorithm 1 run (benign)."""
    local_params = LocalParameters(max_degree=degree)
    graph = hnd_random_regular_graph(n, degree, seed=seed + n)
    run = run_local_counting(graph, params=local_params, seed=seed)
    return run.outcome.max_decision_round() or run.outcome.rounds_executed


@sweep_task("e12.congest")
def _congest_rounds(*, n: int, degree: int, num_byz: int, budget: int, seed: int) -> int:
    """Measured rounds of one Algorithm 2 run under beacon flooding."""
    congest_params = CongestParameters(d=degree)
    graph = hnd_random_regular_graph(n, degree, seed=seed + n + num_byz)
    byz = spread_placement(graph, num_byz, seed=seed + num_byz)
    run = run_congest_counting(
        graph,
        byzantine=byz,
        adversary=BeaconFloodAdversary(congest_params),
        params=congest_params,
        seed=seed,
        max_rounds=budget,
    )
    return run.outcome.max_decision_round() or run.outcome.rounds_executed


def sweep_configs(
    *,
    local_sizes: Sequence[int] = (64, 128, 256, 512),
    congest_sizes: Sequence[int] = (64, 128, 256),
    degree: int = 8,
    congest_byzantine_counts: Sequence[int] = (1, 2, 3),
    seed: int = 0,
) -> List[SweepConfig]:
    """Algorithm 1 configs (per size), then Algorithm 2 configs (size × B)."""
    configs = [
        SweepConfig("e12.local", {"n": n, "degree": degree, "seed": seed})
        for n in local_sizes
    ]
    congest_params = CongestParameters(d=degree)
    for n in congest_sizes:
        budget = congest_params.rounds_through_phase(int(math.ceil(math.log(n))) + 1)
        configs.extend(
            SweepConfig(
                "e12.congest",
                {
                    "n": n,
                    "degree": degree,
                    "num_byz": num_byz,
                    "budget": budget,
                    "seed": seed,
                },
            )
            for num_byz in congest_byzantine_counts
        )
    return configs


def run_experiment(
    *,
    local_sizes: Sequence[int] = (64, 128, 256, 512),
    congest_sizes: Sequence[int] = (64, 128, 256),
    degree: int = 8,
    congest_byzantine_counts: Sequence[int] = (1, 2, 3),
    seed: int = 0,
    runner=None,
) -> ExperimentResult:
    """Measure rounds for both algorithms and fit the paper's complexity models."""
    configs = sweep_configs(
        local_sizes=local_sizes,
        congest_sizes=congest_sizes,
        degree=degree,
        congest_byzantine_counts=congest_byzantine_counts,
        seed=seed,
    )
    flat = run_configs(configs, runner)

    result = ExperimentResult(
        experiment="E12",
        claim=(
            "Round complexity shapes: Algorithm 1 rounds = Theta(log n); "
            "Algorithm 2 rounds fit O(B(n) log^2 n) under beacon flooding"
        ),
    )
    # -- Algorithm 1: rounds vs log n -------------------------------------- #
    local_rounds = list(flat[: len(local_sizes)])
    for n, rounds in zip(local_sizes, local_rounds):
        result.add_row(
            algorithm="algorithm1",
            n=n,
            byzantine=0,
            ln_n=round(math.log(n), 2),
            measured_rounds=rounds,
            model_feature=round(math.log(n), 2),
        )
    local_fit = fit_log_model(list(local_sizes), local_rounds)
    result.add_note(
        f"Algorithm 1 fit: {local_fit.model} with a={local_fit.coefficient:.2f}, "
        f"b={local_fit.intercept:.2f}, R^2={local_fit.r_squared:.3f}"
    )

    # -- Algorithm 2: rounds vs B log^2 n ----------------------------------- #
    sizes_used, byz_used, congest_rounds = [], [], []
    index = len(local_sizes)
    for n in congest_sizes:
        for num_byz in congest_byzantine_counts:
            rounds = flat[index]
            index += 1
            sizes_used.append(n)
            byz_used.append(num_byz)
            congest_rounds.append(rounds)
            result.add_row(
                algorithm="algorithm2",
                n=n,
                byzantine=num_byz,
                ln_n=round(math.log(n), 2),
                measured_rounds=rounds,
                model_feature=round((num_byz + 1) * math.log(n) ** 2, 1),
            )
    congest_fit = fit_blog2_model(sizes_used, byz_used, congest_rounds)
    result.add_note(
        f"Algorithm 2 fit: {congest_fit.model} with a={congest_fit.coefficient:.3f}, "
        f"b={congest_fit.intercept:.2f}, R^2={congest_fit.r_squared:.3f}"
    )
    result.add_note(
        "The absolute coefficients are implementation constants; the claim "
        "being reproduced is that the linear models in ln(n) (Algorithm 1) and "
        "(B+1)ln^2(n) (Algorithm 2) explain the measured rounds (R^2 close to 1)."
    )
    return result
