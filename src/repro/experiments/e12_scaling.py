"""Experiment E12 -- round-complexity scaling (Theorem 1 and Theorem 2 shapes).

Claim: Algorithm 1's decision rounds track ``diam(G) + 1 = Θ(log n)`` and
Algorithm 2's rounds track ``O(B(n)·log² n)``; least-squares fits against
those models should explain the measurements well (high R²).

The sweep is expressed as declarative scenarios (one per measured cell); the
least-squares fits are cross-cell aggregation, so this driver keeps custom
aggregation code over the generic ``scenario.run`` metrics instead of a fully
declarative suite table.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.analysis.complexity import fit_blog2_model, fit_log_model
from repro.core.parameters import CongestParameters
from repro.experiments.common import ExperimentResult, run_configs
from repro.runner import SweepConfig
from repro.scenarios import ComponentSpec, Scenario

__all__ = ["run_experiment", "scenarios", "sweep_configs"]


def scenarios(
    *,
    local_sizes: Sequence[int] = (64, 128, 256, 512),
    congest_sizes: Sequence[int] = (64, 128, 256),
    degree: int = 8,
    congest_byzantine_counts: Sequence[int] = (1, 2, 3),
    seed: int = 0,
) -> List[Scenario]:
    """Algorithm 1 scenarios (per size), then Algorithm 2 (size × B)."""
    cells = [
        Scenario(
            name=f"e12-local-n{n}",
            graph=ComponentSpec("hnd", {"n": n, "degree": degree}, seed_offset=n),
            adversary=ComponentSpec("silent"),
            placement=ComponentSpec("random", {"count": 0}),
            protocol=ComponentSpec("local", {"max_degree": degree}),
            seeds=(seed,),
        )
        for n in local_sizes
    ]
    congest_params = CongestParameters(d=degree)
    for n in congest_sizes:
        budget = congest_params.rounds_through_phase(int(math.ceil(math.log(n))) + 1)
        cells.extend(
            Scenario(
                name=f"e12-congest-n{n}-b{num_byz}",
                graph=ComponentSpec(
                    "hnd", {"n": n, "degree": degree}, seed_offset=n + num_byz
                ),
                adversary=ComponentSpec("beacon-flood"),
                placement=ComponentSpec(
                    "spread", {"count": num_byz}, seed_offset=num_byz
                ),
                protocol=ComponentSpec(
                    "congest", {"d": degree, "max_rounds": budget}
                ),
                seeds=(seed,),
            )
            for num_byz in congest_byzantine_counts
        )
    return cells


def sweep_configs(**kwargs: object) -> List[SweepConfig]:
    """Algorithm 1 configs (per size), then Algorithm 2 configs (size × B)."""
    return [
        config for scenario in scenarios(**kwargs) for config in scenario.compile()
    ]


def run_experiment(
    *,
    local_sizes: Sequence[int] = (64, 128, 256, 512),
    congest_sizes: Sequence[int] = (64, 128, 256),
    degree: int = 8,
    congest_byzantine_counts: Sequence[int] = (1, 2, 3),
    seed: int = 0,
    runner=None,
) -> ExperimentResult:
    """Measure rounds for both algorithms and fit the paper's complexity models."""
    configs = sweep_configs(
        local_sizes=local_sizes,
        congest_sizes=congest_sizes,
        degree=degree,
        congest_byzantine_counts=congest_byzantine_counts,
        seed=seed,
    )
    flat = run_configs(configs, runner)

    result = ExperimentResult(
        experiment="E12",
        claim=(
            "Round complexity shapes: Algorithm 1 rounds = Theta(log n); "
            "Algorithm 2 rounds fit O(B(n) log^2 n) under beacon flooding"
        ),
    )
    # -- Algorithm 1: rounds vs log n -------------------------------------- #
    local_rounds = [metrics["rounds"] for metrics in flat[: len(local_sizes)]]
    for n, rounds in zip(local_sizes, local_rounds):
        result.add_row(
            algorithm="algorithm1",
            n=n,
            byzantine=0,
            ln_n=round(math.log(n), 2),
            measured_rounds=rounds,
            model_feature=round(math.log(n), 2),
        )
    local_fit = fit_log_model(list(local_sizes), local_rounds)
    result.add_note(
        f"Algorithm 1 fit: {local_fit.model} with a={local_fit.coefficient:.2f}, "
        f"b={local_fit.intercept:.2f}, R^2={local_fit.r_squared:.3f}"
    )

    # -- Algorithm 2: rounds vs B log^2 n ----------------------------------- #
    sizes_used, byz_used, congest_rounds = [], [], []
    index = len(local_sizes)
    for n in congest_sizes:
        for num_byz in congest_byzantine_counts:
            rounds = flat[index]["rounds"]
            index += 1
            sizes_used.append(n)
            byz_used.append(num_byz)
            congest_rounds.append(rounds)
            result.add_row(
                algorithm="algorithm2",
                n=n,
                byzantine=num_byz,
                ln_n=round(math.log(n), 2),
                measured_rounds=rounds,
                model_feature=round((num_byz + 1) * math.log(n) ** 2, 1),
            )
    congest_fit = fit_blog2_model(sizes_used, byz_used, congest_rounds)
    result.add_note(
        f"Algorithm 2 fit: {congest_fit.model} with a={congest_fit.coefficient:.3f}, "
        f"b={congest_fit.intercept:.2f}, R^2={congest_fit.r_squared:.3f}"
    )
    result.add_note(
        "The absolute coefficients are implementation constants; the claim "
        "being reproduced is that the linear models in ln(n) (Algorithm 1) and "
        "(B+1)ln^2(n) (Algorithm 2) explain the measured rounds (R^2 close to 1)."
    )
    return result
