"""Experiment harness.

One module per experiment of the DESIGN.md index (E1-E12).  Every module
exposes ``run_experiment(...) -> ExperimentResult`` with keyword knobs for the
network sizes and trial counts, a small default configuration that finishes in
seconds (used by the test suite), and a larger configuration used by the
benchmarks (``benchmarks/bench_e*.py``) whose printed tables are recorded in
EXPERIMENTS.md.
"""

from repro.experiments.common import ExperimentResult
from repro.experiments import (
    e1_local_theorem1,
    e2_congest_theorem2,
    e3_benign,
    e4_impossibility,
    e5_treelike,
    e6_good_set,
    e7_baselines,
    e8_blacklist_ablation,
    e9_adversary_grid,
    e10_message_size,
    e11_estimate_distribution,
    e12_scaling,
)

ALL_EXPERIMENTS = {
    "e1": e1_local_theorem1,
    "e2": e2_congest_theorem2,
    "e3": e3_benign,
    "e4": e4_impossibility,
    "e5": e5_treelike,
    "e6": e6_good_set,
    "e7": e7_baselines,
    "e8": e8_blacklist_ablation,
    "e9": e9_adversary_grid,
    "e10": e10_message_size,
    "e11": e11_estimate_distribution,
    "e12": e12_scaling,
}

__all__ = ["ExperimentResult", "ALL_EXPERIMENTS"]
