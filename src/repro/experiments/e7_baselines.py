"""Experiment E7 -- the Section 1.2 motivation (baselines break under Byzantine nodes).

Claim: classical network-size estimators (geometric max-propagation,
exponential support estimation, spanning-tree converge-cast, flooding-based
diameter estimation) work in the benign case but lose any approximation
guarantee as soon as a single Byzantine node misbehaves, while the paper's
algorithms keep theirs.
"""

from __future__ import annotations

import math
from typing import List, Callable, Dict, Optional, Sequence

from repro.adversary.placement import random_placement
from repro.adversary.strategies import BeaconFloodAdversary, ValueFakingAdversary
from repro.baselines import (
    run_flooding_baseline,
    run_geometric_baseline,
    run_spanning_tree_baseline,
    run_support_estimation_baseline,
)
from repro.core.congest_counting import run_congest_counting
from repro.core.parameters import CongestParameters
from repro.experiments.common import ExperimentResult, run_configs
from repro.graphs.hnd import hnd_random_regular_graph
from repro.runner import SweepConfig, sweep_task

__all__ = ["run_experiment", "sweep_configs"]

#: baseline name -> (runner, the ValueFakingAdversary mode that breaks it)
_BASELINES: Dict[str, tuple] = {
    "geometric-max": (run_geometric_baseline, "inflate"),
    "support-estimation": (run_support_estimation_baseline, "deflate"),
    "spanning-tree": (run_spanning_tree_baseline, "inflate"),
    "flooding-diameter": (run_flooding_baseline, "inflate"),
}


@sweep_task("e7.baseline")
def _baseline_cell(*, name: str, n: int, degree: int, num_byz: int, seed: int) -> dict:
    """One (baseline, Byzantine count) cell attacked with its breaking mode."""
    baseline_runner, attack_mode = _BASELINES[name]
    graph = hnd_random_regular_graph(n, degree, seed=seed)
    log_n = math.log(n)
    byz = random_placement(graph, num_byz, seed=seed + num_byz) if num_byz else set()
    adversary = ValueFakingAdversary(mode=attack_mode) if num_byz else None
    outcome = baseline_runner(graph, byzantine=byz, adversary=adversary, seed=seed)
    return {
        "protocol": name,
        "n": n,
        "byzantine": num_byz,
        "ln_n": round(log_n, 2),
        "median_estimate": outcome.median_estimate(),
        "median_relative_error": outcome.median_relative_error(),
        "fraction_within_2x": round(outcome.fraction_within_factor(0.5, 2.0), 3),
        "decided_fraction": round(outcome.decided_fraction(), 3),
    }


@sweep_task("e7.algorithm2")
def _algorithm2_cell(*, n: int, degree: int, num_byz: int, seed: int) -> dict:
    """Algorithm 2 under the beacon-flood attack for one Byzantine count."""
    params = CongestParameters(d=degree)
    graph = hnd_random_regular_graph(n, degree, seed=seed)
    log_n = math.log(n)
    byz = random_placement(graph, num_byz, seed=seed + num_byz) if num_byz else set()
    adversary = BeaconFloodAdversary(params) if num_byz else None
    max_rounds = params.rounds_through_phase(int(math.ceil(log_n)) + 1)
    run = run_congest_counting(
        graph,
        byzantine=byz,
        adversary=adversary,
        params=params,
        seed=seed,
        max_rounds=max_rounds,
    )
    outcome = run.outcome
    median = outcome.median_estimate()
    error = abs(median - log_n) / log_n if median is not None else None
    return {
        "protocol": "algorithm2 (this paper)",
        "n": n,
        "byzantine": num_byz,
        "ln_n": round(log_n, 2),
        "median_estimate": median,
        "median_relative_error": round(error, 3) if error is not None else None,
        "fraction_within_2x": round(outcome.fraction_within_band(0.5, 2.0), 3),
        "decided_fraction": round(outcome.decided_fraction(), 3),
    }


def sweep_configs(
    *,
    n: int = 256,
    degree: int = 8,
    byzantine_counts: Sequence[int] = (0, 1, 4),
    seed: int = 0,
    include_algorithm2: bool = True,
) -> List[SweepConfig]:
    """The baseline × Byzantine-count grid, then the Algorithm 2 rows."""
    configs = [
        SweepConfig(
            "e7.baseline",
            {"name": name, "n": n, "degree": degree, "num_byz": num_byz, "seed": seed},
        )
        for name in _BASELINES
        for num_byz in byzantine_counts
    ]
    if include_algorithm2:
        configs.extend(
            SweepConfig(
                "e7.algorithm2",
                {"n": n, "degree": degree, "num_byz": num_byz, "seed": seed},
            )
            for num_byz in byzantine_counts
        )
    return configs


def run_experiment(
    *,
    n: int = 256,
    degree: int = 8,
    byzantine_counts: Sequence[int] = (0, 1, 4),
    seed: int = 0,
    include_algorithm2: bool = True,
    runner=None,
) -> ExperimentResult:
    """Compare every baseline (and Algorithm 2) under 0, 1, and several Byzantine nodes."""
    configs = sweep_configs(
        n=n,
        degree=degree,
        byzantine_counts=byzantine_counts,
        seed=seed,
        include_algorithm2=include_algorithm2,
    )
    rows = run_configs(configs, runner)

    result = ExperimentResult(
        experiment="E7",
        claim=(
            "Section 1.2: classical size estimators are exact/accurate with no "
            "Byzantine nodes but are broken by a single Byzantine node; the "
            "paper's counting algorithm keeps a constant-factor estimate"
        ),
    )
    for row in rows:
        result.add_row(**row)
    result.add_note(
        "Each baseline is attacked with the ValueFakingAdversary mode that "
        "targets its aggregation (max -> inflate, min -> deflate); Algorithm 2 "
        "is attacked with the beacon-flooding adversary.  The shape to check: "
        "baselines' median_relative_error explodes (or estimates vanish) with "
        ">= 1 Byzantine node while Algorithm 2's stays bounded."
    )
    return result
