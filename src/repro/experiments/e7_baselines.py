"""Experiment E7 -- the Section 1.2 motivation (baselines break under Byzantine nodes).

Claim: classical network-size estimators (geometric max-propagation,
exponential support estimation, spanning-tree converge-cast, flooding-based
diameter estimation) work in the benign case but lose any approximation
guarantee as soon as a single Byzantine node misbehaves, while the paper's
algorithms keep theirs.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Sequence

from repro.adversary.placement import random_placement
from repro.adversary.strategies import BeaconFloodAdversary, ValueFakingAdversary
from repro.baselines import (
    run_flooding_baseline,
    run_geometric_baseline,
    run_spanning_tree_baseline,
    run_support_estimation_baseline,
)
from repro.core.congest_counting import run_congest_counting
from repro.core.parameters import CongestParameters
from repro.experiments.common import ExperimentResult
from repro.graphs.hnd import hnd_random_regular_graph

__all__ = ["run_experiment"]

#: baseline name -> (runner, the ValueFakingAdversary mode that breaks it)
_BASELINES: Dict[str, tuple] = {
    "geometric-max": (run_geometric_baseline, "inflate"),
    "support-estimation": (run_support_estimation_baseline, "deflate"),
    "spanning-tree": (run_spanning_tree_baseline, "inflate"),
    "flooding-diameter": (run_flooding_baseline, "inflate"),
}


def run_experiment(
    *,
    n: int = 256,
    degree: int = 8,
    byzantine_counts: Sequence[int] = (0, 1, 4),
    seed: int = 0,
    include_algorithm2: bool = True,
) -> ExperimentResult:
    """Compare every baseline (and Algorithm 2) under 0, 1, and several Byzantine nodes."""
    result = ExperimentResult(
        experiment="E7",
        claim=(
            "Section 1.2: classical size estimators are exact/accurate with no "
            "Byzantine nodes but are broken by a single Byzantine node; the "
            "paper's counting algorithm keeps a constant-factor estimate"
        ),
    )
    graph = hnd_random_regular_graph(n, degree, seed=seed)
    log_n = math.log(n)

    for name, (runner, attack_mode) in _BASELINES.items():
        for num_byz in byzantine_counts:
            byz = random_placement(graph, num_byz, seed=seed + num_byz) if num_byz else set()
            adversary = ValueFakingAdversary(mode=attack_mode) if num_byz else None
            outcome = runner(graph, byzantine=byz, adversary=adversary, seed=seed)
            result.add_row(
                protocol=name,
                n=n,
                byzantine=num_byz,
                ln_n=round(log_n, 2),
                median_estimate=outcome.median_estimate(),
                median_relative_error=outcome.median_relative_error(),
                fraction_within_2x=round(outcome.fraction_within_factor(0.5, 2.0), 3),
                decided_fraction=round(outcome.decided_fraction(), 3),
            )

    if include_algorithm2:
        params = CongestParameters(d=degree)
        for num_byz in byzantine_counts:
            byz = random_placement(graph, num_byz, seed=seed + num_byz) if num_byz else set()
            adversary = BeaconFloodAdversary(params) if num_byz else None
            max_rounds = params.rounds_through_phase(int(math.ceil(log_n)) + 1)
            run = run_congest_counting(
                graph,
                byzantine=byz,
                adversary=adversary,
                params=params,
                seed=seed,
                max_rounds=max_rounds,
            )
            outcome = run.outcome
            estimates = outcome.estimates()
            median = outcome.median_estimate()
            error = abs(median - log_n) / log_n if median is not None else None
            result.add_row(
                protocol="algorithm2 (this paper)",
                n=n,
                byzantine=num_byz,
                ln_n=round(log_n, 2),
                median_estimate=median,
                median_relative_error=round(error, 3) if error is not None else None,
                fraction_within_2x=round(outcome.fraction_within_band(0.5, 2.0), 3),
                decided_fraction=round(outcome.decided_fraction(), 3),
            )
    result.add_note(
        "Each baseline is attacked with the ValueFakingAdversary mode that "
        "targets its aggregation (max -> inflate, min -> deflate); Algorithm 2 "
        "is attacked with the beacon-flooding adversary.  The shape to check: "
        "baselines' median_relative_error explodes (or estimates vanish) with "
        ">= 1 Byzantine node while Algorithm 2's stays bounded."
    )
    return result
