"""Experiment E1 -- Theorem 1 (deterministic LOCAL algorithm).

Claim: on bounded-degree expanders with up to ``n^(1-γ)`` adversarially placed
Byzantine nodes, Algorithm 1 finishes in ``O(log n)`` rounds and all nodes of
the ``Good`` set decide a constant-factor estimate of ``log n``.

Expressed declaratively as a :class:`~repro.scenarios.suite.ScenarioSuite`:
one ``local``-protocol scenario per size, evaluated over the Lemma 1 ``Good``
set with the Theorem 1 check.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.core.parameters import byzantine_budget
from repro.experiments.common import ExperimentResult
from repro.runner import SweepConfig
from repro.scenarios import ComponentSpec, Scenario, ScenarioSuite, SuiteRow

__all__ = ["run_experiment", "scenario_suite", "sweep_configs"]


def scenario_suite(
    *,
    sizes: Sequence[int] = (64, 128, 256, 512),
    gamma: float = 0.7,
    degree: int = 8,
    behaviour: str = "fake-topology",
    placement: str = "random",
    trials: int = 2,
    seed: int = 0,
) -> ScenarioSuite:
    """The experiment as declarative data: one scenario (and row) per size."""
    rows: List[SuiteRow] = []
    for n in sizes:
        num_byz = byzantine_budget(n, 1.0 - gamma)
        scenario = Scenario(
            name=f"e1-n{n}",
            graph=ComponentSpec("hnd", {"n": n, "degree": degree}),
            adversary=ComponentSpec(behaviour),
            placement=ComponentSpec(placement, {"count": num_byz}),
            protocol=ComponentSpec("local", {"gamma": gamma, "max_degree": degree}),
            params={
                "evaluation": {"kind": "good", "gamma": gamma},
                "check": {"name": "theorem1"},
            },
            seeds=tuple(seed + 7919 * trial + n for trial in range(trials)),
        )
        rows.append(
            SuiteRow(
                scenario=scenario,
                static={
                    "n": n,
                    "ln_n": round(math.log(n), 2),
                    "byzantine": num_byz,
                    "behaviour": behaviour,
                    "placement": placement,
                },
                columns={
                    "good_set": "eval_nodes",
                    "decided_fraction": "decided_fraction",
                    "fraction_in_band": "fraction_in_band",
                    "min_estimate": "min_estimate",
                    "max_estimate": "max_estimate",
                    "max_decision_round": "max_decision_round",
                    "theorem1_pass_rate": "check_passed",
                },
            )
        )
    return ScenarioSuite(
        experiment="E1",
        claim=(
            "Theorem 1: deterministic LOCAL counting decides a constant-factor "
            "estimate of log n in O(log n) rounds for n - o(n) good nodes under "
            "n^(1-gamma) Byzantine nodes"
        ),
        rows=rows,
        notes=[
            "max_decision_round should grow logarithmically with n "
            "(compare against the ln_n column); fraction_in_band is computed over "
            "the Lemma 1 Good set with the constant-factor band [0.35, 1.6]·ln n."
        ],
    )


def sweep_configs(**kwargs: object) -> List[SweepConfig]:
    """The experiment's sweep as a flat config list (trials nested per size)."""
    return scenario_suite(**kwargs).compile()


def run_experiment(*, runner=None, **kwargs: object) -> ExperimentResult:
    """Sweep network sizes and measure Theorem 1's quantities.

    Each row reports, averaged over ``trials`` seeds: the number of Byzantine
    nodes ``n^(1-γ)``, the size of the Lemma 1 ``Good`` set, the fraction of
    Good nodes that decided, the fraction whose estimate lies in the
    constant-factor band, the estimate range, and the latest decision round
    (to be compared against ``O(log n)``).
    """
    return scenario_suite(**kwargs).run(runner)
