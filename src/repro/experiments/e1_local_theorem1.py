"""Experiment E1 -- Theorem 1 (deterministic LOCAL algorithm).

Claim: on bounded-degree expanders with up to ``n^(1-γ)`` adversarially placed
Byzantine nodes, Algorithm 1 finishes in ``O(log n)`` rounds and all nodes of
the ``Good`` set decide a constant-factor estimate of ``log n``.
"""

from __future__ import annotations

import math
from typing import List, Iterable, Optional, Sequence

from repro.adversary.placement import clustered_placement, random_placement, spread_placement
from repro.adversary.strategies import FakeTopologyAdversary, InconsistentTopologyAdversary
from repro.analysis.accuracy import theorem1_check
from repro.core.local_counting import run_local_counting
from repro.core.parameters import LocalParameters, byzantine_budget
from repro.experiments.common import ExperimentResult, mean_or_none, run_configs
from repro.graphs.expansion import good_set
from repro.graphs.hnd import hnd_random_regular_graph
from repro.runner import SweepConfig, sweep_task
from repro.simulator.byzantine import SilentAdversary

__all__ = ["run_experiment", "sweep_configs"]

_BEHAVIOURS = {
    "silent": SilentAdversary,
    "fake-topology": FakeTopologyAdversary,
    "inconsistent": InconsistentTopologyAdversary,
}

_PLACEMENTS = {
    "random": random_placement,
    "clustered": clustered_placement,
    "spread": spread_placement,
}


@sweep_task("e1.trial")
def _trial(
    *, n: int, gamma: float, degree: int, behaviour: str, placement: str, trial_seed: int
) -> dict:
    """One (size, seed) cell of the sweep: run Algorithm 1 and summarize."""
    params = LocalParameters(gamma=gamma, max_degree=degree)
    num_byz = byzantine_budget(n, 1.0 - gamma)
    graph = hnd_random_regular_graph(n, degree, seed=trial_seed)
    byz = _PLACEMENTS[placement](graph, num_byz, seed=trial_seed)
    adversary = _BEHAVIOURS[behaviour]()
    evaluation = good_set(graph, byz, gamma)
    run = run_local_counting(
        graph,
        byzantine=byz,
        adversary=adversary,
        params=params,
        seed=trial_seed,
        evaluation_set=evaluation,
    )
    check = theorem1_check(run.outcome)
    return {
        "good": len(evaluation),
        "decided": run.outcome.decided_fraction(),
        "in_band": run.outcome.fraction_within_band(0.35, 1.6),
        "min_est": run.outcome.estimate_range()[0],
        "max_est": run.outcome.estimate_range()[1],
        "rounds": run.outcome.max_decision_round(),
        "passed": 1.0 if check.passed else 0.0,
    }


def sweep_configs(
    *,
    sizes: Sequence[int] = (64, 128, 256, 512),
    gamma: float = 0.7,
    degree: int = 8,
    behaviour: str = "fake-topology",
    placement: str = "random",
    trials: int = 2,
    seed: int = 0,
) -> List[SweepConfig]:
    """The experiment's sweep as a flat config list (trials nested per size)."""
    if behaviour not in _BEHAVIOURS:
        raise ValueError(f"unknown behaviour {behaviour!r}; options: {sorted(_BEHAVIOURS)}")
    if placement not in _PLACEMENTS:
        raise ValueError(f"unknown placement {placement!r}; options: {sorted(_PLACEMENTS)}")
    return [
        SweepConfig(
            "e1.trial",
            {
                "n": n,
                "gamma": gamma,
                "degree": degree,
                "behaviour": behaviour,
                "placement": placement,
                "trial_seed": seed + 7919 * trial + n,
            },
        )
        for n in sizes
        for trial in range(trials)
    ]


def run_experiment(
    *,
    sizes: Sequence[int] = (64, 128, 256, 512),
    gamma: float = 0.7,
    degree: int = 8,
    behaviour: str = "fake-topology",
    placement: str = "random",
    trials: int = 2,
    seed: int = 0,
    runner=None,
) -> ExperimentResult:
    """Sweep network sizes and measure Theorem 1's quantities.

    Each row reports, averaged over ``trials`` seeds: the number of Byzantine
    nodes ``n^(1-γ)``, the size of the Lemma 1 ``Good`` set, the fraction of
    Good nodes that decided, the fraction whose estimate lies in the
    constant-factor band, the estimate range, and the latest decision round
    (to be compared against ``O(log n)``).
    """
    configs = sweep_configs(
        sizes=sizes,
        gamma=gamma,
        degree=degree,
        behaviour=behaviour,
        placement=placement,
        trials=trials,
        seed=seed,
    )
    rows = run_configs(configs, runner)

    result = ExperimentResult(
        experiment="E1",
        claim=(
            "Theorem 1: deterministic LOCAL counting decides a constant-factor "
            "estimate of log n in O(log n) rounds for n - o(n) good nodes under "
            "n^(1-gamma) Byzantine nodes"
        ),
    )
    for index, n in enumerate(sizes):
        num_byz = byzantine_budget(n, 1.0 - gamma)
        per_trial = rows[index * trials : (index + 1) * trials]
        result.add_row(
            n=n,
            ln_n=round(math.log(n), 2),
            byzantine=num_byz,
            behaviour=behaviour,
            placement=placement,
            good_set=mean_or_none([t["good"] for t in per_trial]),
            decided_fraction=mean_or_none([t["decided"] for t in per_trial]),
            fraction_in_band=mean_or_none([t["in_band"] for t in per_trial]),
            min_estimate=mean_or_none([t["min_est"] for t in per_trial]),
            max_estimate=mean_or_none([t["max_est"] for t in per_trial]),
            max_decision_round=mean_or_none([t["rounds"] for t in per_trial]),
            theorem1_pass_rate=mean_or_none([t["passed"] for t in per_trial]),
        )
    result.add_note(
        "max_decision_round should grow logarithmically with n "
        "(compare against the ln_n column); fraction_in_band is computed over "
        "the Lemma 1 Good set with the constant-factor band [0.35, 1.6]·ln n."
    )
    return result
