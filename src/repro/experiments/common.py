"""Shared experiment infrastructure: result records and sweep helpers."""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.analysis.tables import render_table
from repro.runner import SweepConfig, SweepRunner

__all__ = ["ExperimentResult", "mean_or_none", "median_or_none", "run_configs"]


def run_configs(
    configs: Sequence[SweepConfig], runner: Optional[SweepRunner] = None
) -> List[Any]:
    """Execute a driver's config list through ``runner``.

    Drivers call this with the runner handed to ``run_experiment``; when none
    was given they fall back to a fresh serial, cache-less
    :class:`~repro.runner.sweep.SweepRunner`, which reproduces the historical
    in-process behaviour exactly.
    """
    return (runner if runner is not None else SweepRunner()).run(configs)


def mean_or_none(values: Iterable[Optional[float]]) -> Optional[float]:
    """Mean of the non-None values, or ``None`` if there are none."""
    filtered = [v for v in values if v is not None]
    return statistics.fmean(filtered) if filtered else None


def median_or_none(values: Iterable[Optional[float]]) -> Optional[float]:
    """Median of the non-None values, or ``None`` if there are none."""
    filtered = [v for v in values if v is not None]
    return statistics.median(filtered) if filtered else None


@dataclass
class ExperimentResult:
    """Uniform result of one experiment run.

    Attributes
    ----------
    experiment:
        Identifier (``"E1"`` ... ``"E12"``).
    claim:
        One-line statement of the paper claim being reproduced.
    rows:
        The regenerated table, one dict per row.
    notes:
        Free-form observations recorded alongside the table (e.g. which
        acceptance checks passed).
    """

    experiment: str
    claim: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **kwargs: object) -> None:
        """Append one table row."""
        self.rows.append(dict(kwargs))

    def add_note(self, note: str) -> None:
        """Append one observation."""
        self.notes.append(note)

    def render(self) -> str:
        """Human-readable table plus notes (what the benchmarks print)."""
        parts = [f"[{self.experiment}] {self.claim}", render_table(self.rows)]
        if self.notes:
            parts.append("Notes:")
            parts.extend(f"  - {note}" for note in self.notes)
        return "\n".join(parts)

    def column(self, name: str) -> List[object]:
        """All values of one column (missing entries become ``None``)."""
        return [row.get(name) for row in self.rows]
