"""Experiment E3 -- Corollary 1 (benign case).

Claim: with no Byzantine nodes, Algorithm 2 terminates (the network goes
quiescent), and Ω(n) nodes decide the same value, bounded above by ``⌈ln n⌉``,
within ``O(log n)`` phases (``O(log² n)`` rounds at these scales).

Expressed declaratively as a :class:`~repro.scenarios.suite.ScenarioSuite`:
one benign ``congest`` scenario per size with a zero-count placement and the
Corollary 1 check.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.experiments.common import ExperimentResult
from repro.runner import SweepConfig
from repro.scenarios import ComponentSpec, Scenario, ScenarioSuite, SuiteRow

__all__ = ["run_experiment", "scenario_suite", "sweep_configs"]


def scenario_suite(
    *,
    sizes: Sequence[int] = (64, 128, 256, 512),
    degree: int = 8,
    trials: int = 2,
    seed: int = 0,
) -> ScenarioSuite:
    """The experiment as declarative data: one benign scenario per size."""
    rows: List[SuiteRow] = []
    for n in sizes:
        scenario = Scenario(
            name=f"e3-n{n}",
            graph=ComponentSpec("hnd", {"n": n, "degree": degree}),
            adversary=ComponentSpec("silent"),
            placement=ComponentSpec("random", {"count": 0}),
            # Corollary 1 mode: run past the last decision until the network
            # goes quiescent (no messages at all in a round).
            protocol=ComponentSpec(
                "congest", {"d": degree, "stop_when_all_decided": False}
            ),
            params={"check": {"name": "corollary1"}},
            seeds=tuple(seed + 31 * trial + n for trial in range(trials)),
        )
        rows.append(
            SuiteRow(
                scenario=scenario,
                static={
                    "n": n,
                    "ln_n": round(math.log(n), 2),
                    "ceil_ln_n": math.ceil(math.log(n)),
                },
                columns={
                    "decided_fraction": "decided_fraction",
                    "modal_estimate": "modal_estimate",
                    "modal_fraction": "modal_fraction",
                    "max_estimate": "max_estimate",
                    "rounds_to_quiescence": "rounds_executed",
                    "quiescent_rate": "quiescent",
                    "corollary1_pass_rate": "check_passed",
                },
            )
        )
    return ScenarioSuite(
        experiment="E3",
        claim=(
            "Corollary 1: with all nodes good the algorithm terminates and "
            "Omega(n) nodes decide a common value bounded by ceil(ln n)"
        ),
        rows=rows,
        notes=[
            "modal_fraction is the fraction of nodes agreeing on the most common "
            "estimate (Corollary 1's Omega(n)); max_estimate must not exceed "
            "ceil_ln_n + 1 (Remark 2); quiescent_rate = 1 means the network "
            "stopped sending messages entirely (termination)."
        ],
    )


def sweep_configs(**kwargs: object) -> List[SweepConfig]:
    """The experiment's sweep as a flat config list (trials nested per size)."""
    return scenario_suite(**kwargs).compile()


def run_experiment(*, runner=None, **kwargs: object) -> ExperimentResult:
    """Benign-case sweep: decision values, modal agreement, quiescence."""
    return scenario_suite(**kwargs).run(runner)
