"""Experiment E3 -- Corollary 1 (benign case).

Claim: with no Byzantine nodes, Algorithm 2 terminates (the network goes
quiescent), and Ω(n) nodes decide the same value, bounded above by ``⌈ln n⌉``,
within ``O(log n)`` phases (``O(log² n)`` rounds at these scales).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import List, Sequence

from repro.analysis.accuracy import corollary1_check
from repro.core.congest_counting import run_congest_counting
from repro.core.parameters import CongestParameters
from repro.experiments.common import ExperimentResult, mean_or_none, run_configs
from repro.graphs.hnd import hnd_random_regular_graph
from repro.runner import SweepConfig, sweep_task

__all__ = ["run_experiment", "sweep_configs"]


@sweep_task("e3.trial")
def _trial(*, n: int, degree: int, trial_seed: int) -> dict:
    """One benign run of Algorithm 2: agreement, quiescence, Corollary 1."""
    params = CongestParameters(d=degree)
    graph = hnd_random_regular_graph(n, degree, seed=trial_seed)
    run = run_congest_counting(
        graph,
        params=params,
        seed=trial_seed,
        stop_when_all_decided=False,
    )
    outcome = run.outcome
    histogram = Counter(outcome.estimates())
    modal_value, modal_count = histogram.most_common(1)[0] if histogram else (None, 0)
    check = corollary1_check(outcome)
    quiescent = (
        run.result.metrics.messages_per_round[-1] == 0
        if run.result.metrics.messages_per_round
        else False
    )
    return {
        "decided": outcome.decided_fraction(),
        "modal_value": modal_value,
        "modal_fraction": modal_count / max(1, len(outcome.records)),
        "max_est": outcome.estimate_range()[1],
        "rounds": run.outcome.rounds_executed,
        "quiescent": 1.0 if quiescent else 0.0,
        "passed": 1.0 if check.passed else 0.0,
    }


def sweep_configs(
    *,
    sizes: Sequence[int] = (64, 128, 256, 512),
    degree: int = 8,
    trials: int = 2,
    seed: int = 0,
) -> List[SweepConfig]:
    """The experiment's sweep as a flat config list (trials nested per size)."""
    return [
        SweepConfig(
            "e3.trial",
            {"n": n, "degree": degree, "trial_seed": seed + 31 * trial + n},
        )
        for n in sizes
        for trial in range(trials)
    ]


def run_experiment(
    *,
    sizes: Sequence[int] = (64, 128, 256, 512),
    degree: int = 8,
    trials: int = 2,
    seed: int = 0,
    runner=None,
) -> ExperimentResult:
    """Benign-case sweep: decision values, modal agreement, quiescence."""
    configs = sweep_configs(sizes=sizes, degree=degree, trials=trials, seed=seed)
    rows = run_configs(configs, runner)

    result = ExperimentResult(
        experiment="E3",
        claim=(
            "Corollary 1: with all nodes good the algorithm terminates and "
            "Omega(n) nodes decide a common value bounded by ceil(ln n)"
        ),
    )
    for index, n in enumerate(sizes):
        per_trial = rows[index * trials : (index + 1) * trials]
        result.add_row(
            n=n,
            ln_n=round(math.log(n), 2),
            ceil_ln_n=math.ceil(math.log(n)),
            decided_fraction=mean_or_none([t["decided"] for t in per_trial]),
            modal_estimate=mean_or_none([t["modal_value"] for t in per_trial]),
            modal_fraction=mean_or_none([t["modal_fraction"] for t in per_trial]),
            max_estimate=mean_or_none([t["max_est"] for t in per_trial]),
            rounds_to_quiescence=mean_or_none([t["rounds"] for t in per_trial]),
            quiescent_rate=mean_or_none([t["quiescent"] for t in per_trial]),
            corollary1_pass_rate=mean_or_none([t["passed"] for t in per_trial]),
        )
    result.add_note(
        "modal_fraction is the fraction of nodes agreeing on the most common "
        "estimate (Corollary 1's Omega(n)); max_estimate must not exceed "
        "ceil_ln_n + 1 (Remark 2); quiescent_rate = 1 means the network "
        "stopped sending messages entirely (termination)."
    )
    return result
