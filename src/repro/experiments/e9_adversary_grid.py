"""Experiment E9 -- adversary robustness grid ("arbitrarily placed" claim).

Claim: Theorems 1 and 2 hold for *any* placement and behaviour of the
Byzantine nodes; this experiment sweeps a placement × behaviour grid for both
algorithms and reports the fraction of evaluation-set nodes achieving the
constant-factor band.
"""

from __future__ import annotations

import math
from typing import List, Dict, Sequence

from repro.adversary.placement import clustered_placement, random_placement, spread_placement
from repro.adversary.strategies import (
    BeaconFloodAdversary,
    ContinueFloodAdversary,
    FakeTopologyAdversary,
    InconsistentTopologyAdversary,
    PathTamperAdversary,
)
from repro.core.congest_counting import run_congest_counting
from repro.core.local_counting import run_local_counting
from repro.core.parameters import CongestParameters, LocalParameters, byzantine_budget
from repro.experiments.common import ExperimentResult, run_configs
from repro.graphs.expansion import good_set
from repro.graphs.hnd import hnd_random_regular_graph
from repro.graphs.neighborhoods import ball_of_set
from repro.runner import SweepConfig, sweep_task
from repro.simulator.byzantine import SilentAdversary

__all__ = ["run_experiment", "sweep_configs"]

_PLACEMENTS = {
    "random": random_placement,
    "clustered": clustered_placement,
    "spread": spread_placement,
}

_LOCAL_BEHAVIOURS = {
    "silent": SilentAdversary,
    "fake-topology": FakeTopologyAdversary,
    "inconsistent": InconsistentTopologyAdversary,
}

_CONGEST_BEHAVIOURS = {
    "silent": lambda params: SilentAdversary(),
    "beacon-flood": BeaconFloodAdversary,
    "path-tamper": PathTamperAdversary,
    "continue-flood": ContinueFloodAdversary,
}


@sweep_task("e9.local")
def _local_cell(
    *, n: int, degree: int, gamma_local: float, placement: str, behaviour: str, seed: int
) -> dict:
    """One Algorithm 1 cell of the placement × behaviour grid."""
    local_params = LocalParameters(gamma=gamma_local, max_degree=degree)
    num_byz_local = byzantine_budget(n, 1.0 - gamma_local)
    graph = hnd_random_regular_graph(n, degree, seed=seed + n)
    byz = _PLACEMENTS[placement](graph, num_byz_local, seed=seed + 1)
    evaluation = good_set(graph, byz, gamma_local)
    run = run_local_counting(
        graph,
        byzantine=byz,
        adversary=_LOCAL_BEHAVIOURS[behaviour](),
        params=local_params,
        seed=seed,
        evaluation_set=evaluation,
    )
    outcome = run.outcome
    return {
        "algorithm": "algorithm1 (LOCAL)",
        "placement": placement,
        "behaviour": behaviour,
        "byzantine": num_byz_local,
        "eval_nodes": len(evaluation),
        "decided_fraction": round(outcome.decided_fraction(), 3),
        "fraction_in_band": round(outcome.fraction_within_band(0.35, 1.6), 3),
        "median_estimate": outcome.median_estimate(),
        "max_decision_round": outcome.max_decision_round(),
    }


@sweep_task("e9.congest")
def _congest_cell(
    *,
    n: int,
    degree: int,
    gamma_congest: float,
    congest_byzantine: int,
    placement: str,
    behaviour: str,
    budget: int,
    seed: int,
) -> dict:
    """One Algorithm 2 cell of the placement × behaviour grid."""
    congest_params = CongestParameters(gamma=gamma_congest, d=degree)
    log_n = math.log(n)
    graph = hnd_random_regular_graph(n, degree, seed=seed + 2 * n)
    byz = _PLACEMENTS[placement](graph, congest_byzantine, seed=seed + 2)
    make_behaviour = _CONGEST_BEHAVIOURS[behaviour]
    run = run_congest_counting(
        graph,
        byzantine=byz,
        adversary=make_behaviour(congest_params),
        params=congest_params,
        seed=seed,
        max_rounds=budget,
    )
    outcome = run.outcome
    contaminated = ball_of_set(graph, byz, 1)
    far = [u for u in outcome.records if u not in contaminated]
    far_in_band = (
        sum(1 for u in far if outcome.records[u].within(0.35 * log_n, 1.6 * log_n))
        / len(far)
        if far
        else 0.0
    )
    return {
        "algorithm": "algorithm2 (CONGEST)",
        "placement": placement,
        "behaviour": behaviour,
        "byzantine": congest_byzantine,
        "eval_nodes": len(far),
        "decided_fraction": round(outcome.decided_fraction(), 3),
        "fraction_in_band": round(far_in_band, 3),
        "median_estimate": outcome.median_estimate(),
        "max_decision_round": outcome.max_decision_round(),
    }


def sweep_configs(
    *,
    n: int = 256,
    degree: int = 8,
    gamma_local: float = 0.7,
    gamma_congest: float = 0.5,
    congest_byzantine: int = 3,
    placements: Sequence[str] = ("random", "clustered", "spread"),
    seed: int = 0,
) -> List[SweepConfig]:
    """Algorithm 1 grid cells first, then the Algorithm 2 grid cells."""
    configs = [
        SweepConfig(
            "e9.local",
            {
                "n": n,
                "degree": degree,
                "gamma_local": gamma_local,
                "placement": placement_name,
                "behaviour": behaviour_name,
                "seed": seed,
            },
        )
        for placement_name in placements
        for behaviour_name in _LOCAL_BEHAVIOURS
    ]
    congest_params = CongestParameters(gamma=gamma_congest, d=degree)
    budget = congest_params.rounds_through_phase(int(math.ceil(math.log(n))) + 1)
    configs.extend(
        SweepConfig(
            "e9.congest",
            {
                "n": n,
                "degree": degree,
                "gamma_congest": gamma_congest,
                "congest_byzantine": congest_byzantine,
                "placement": placement_name,
                "behaviour": behaviour_name,
                "budget": budget,
                "seed": seed,
            },
        )
        for placement_name in placements
        for behaviour_name in _CONGEST_BEHAVIOURS
    )
    return configs


def run_experiment(
    *,
    n: int = 256,
    degree: int = 8,
    gamma_local: float = 0.7,
    gamma_congest: float = 0.5,
    congest_byzantine: int = 3,
    placements: Sequence[str] = ("random", "clustered", "spread"),
    seed: int = 0,
    runner=None,
) -> ExperimentResult:
    """Placement × behaviour grid for both algorithms at a fixed size."""
    configs = sweep_configs(
        n=n,
        degree=degree,
        gamma_local=gamma_local,
        gamma_congest=gamma_congest,
        congest_byzantine=congest_byzantine,
        placements=placements,
        seed=seed,
    )
    rows = run_configs(configs, runner)

    result = ExperimentResult(
        experiment="E9",
        claim=(
            "Theorems 1-2 hold for arbitrarily placed Byzantine nodes and any "
            "behaviour: the fraction of evaluation-set nodes in the "
            "constant-factor band stays high across the placement x behaviour grid"
        ),
    )
    for row in rows:
        result.add_row(**row)
    result.add_note(
        "Algorithm 1 rows evaluate the Lemma 1 Good set; Algorithm 2 rows "
        "evaluate honest nodes at distance >= 2 from every Byzantine node "
        "(the GoodTL stand-in).  fraction_in_band should stay >= ~0.9 across "
        "the whole grid."
    )
    return result
