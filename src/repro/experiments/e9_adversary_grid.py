"""Experiment E9 -- adversary robustness grid ("arbitrarily placed" claim).

Claim: Theorems 1 and 2 hold for *any* placement and behaviour of the
Byzantine nodes; this experiment sweeps a placement × behaviour grid for both
algorithms and reports the fraction of evaluation-set nodes achieving the
constant-factor band.

Each grid cell is one declarative :class:`~repro.scenarios.spec.Scenario`
(the per-component seed spreading of the historical driver is carried by the
spec's ``seed_offset`` fields), so the whole grid is a
:class:`~repro.scenarios.suite.ScenarioSuite`.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.core.parameters import CongestParameters, byzantine_budget
from repro.experiments.common import ExperimentResult
from repro.runner import SweepConfig
from repro.scenarios import ComponentSpec, Scenario, ScenarioSuite, SuiteRow

__all__ = ["run_experiment", "scenario_suite", "sweep_configs"]

#: Behaviours each algorithm's grid half sweeps (in display order).
LOCAL_BEHAVIOURS: Sequence[str] = ("silent", "fake-topology", "inconsistent")
CONGEST_BEHAVIOURS: Sequence[str] = (
    "silent",
    "beacon-flood",
    "path-tamper",
    "continue-flood",
)

#: Column reductions shared by every grid row (single seed, E9's rounding).
_GRID_COLUMNS_LOCAL = {
    "eval_nodes": {"metric": "eval_nodes", "reduce": "first"},
    "decided_fraction": {"metric": "decided_fraction", "reduce": "first", "round": 3},
    "fraction_in_band": {"metric": "fraction_in_band", "reduce": "first", "round": 3},
    "median_estimate": {"metric": "median_estimate", "reduce": "first"},
    "max_decision_round": {"metric": "max_decision_round", "reduce": "first"},
}

#: Algorithm 2 rows report whole-network decision statistics but evaluate the
#: band over the far (GoodTL stand-in) set only, like the historical driver.
_GRID_COLUMNS_CONGEST = {
    "eval_nodes": {"metric": "eval_nodes", "reduce": "first"},
    "decided_fraction": {
        "metric": "decided_fraction_all",
        "reduce": "first",
        "round": 3,
    },
    "fraction_in_band": {"metric": "fraction_in_band", "reduce": "first", "round": 3},
    "median_estimate": {"metric": "median_estimate_all", "reduce": "first"},
    "max_decision_round": {"metric": "max_decision_round_all", "reduce": "first"},
}


def scenario_suite(
    *,
    n: int = 256,
    degree: int = 8,
    gamma_local: float = 0.7,
    gamma_congest: float = 0.5,
    congest_byzantine: int = 3,
    placements: Sequence[str] = ("random", "clustered", "spread"),
    seed: int = 0,
) -> ScenarioSuite:
    """Algorithm 1 grid cells first, then the Algorithm 2 grid cells."""
    rows: List[SuiteRow] = []

    num_byz_local = byzantine_budget(n, 1.0 - gamma_local)
    for placement_name in placements:
        for behaviour_name in LOCAL_BEHAVIOURS:
            scenario = Scenario(
                name=f"e9-local-{placement_name}-{behaviour_name}",
                graph=ComponentSpec("hnd", {"n": n, "degree": degree}, seed_offset=n),
                adversary=ComponentSpec(behaviour_name),
                placement=ComponentSpec(
                    placement_name, {"count": num_byz_local}, seed_offset=1
                ),
                protocol=ComponentSpec(
                    "local", {"gamma": gamma_local, "max_degree": degree}
                ),
                params={"evaluation": {"kind": "good", "gamma": gamma_local}},
                seeds=(seed,),
            )
            rows.append(
                SuiteRow(
                    scenario=scenario,
                    static={
                        "algorithm": "algorithm1 (LOCAL)",
                        "placement": placement_name,
                        "behaviour": behaviour_name,
                        "byzantine": num_byz_local,
                    },
                    columns=dict(_GRID_COLUMNS_LOCAL),
                )
            )

    congest_params = CongestParameters(gamma=gamma_congest, d=degree)
    budget = congest_params.rounds_through_phase(int(math.ceil(math.log(n))) + 1)
    for placement_name in placements:
        for behaviour_name in CONGEST_BEHAVIOURS:
            scenario = Scenario(
                name=f"e9-congest-{placement_name}-{behaviour_name}",
                graph=ComponentSpec(
                    "hnd", {"n": n, "degree": degree}, seed_offset=2 * n
                ),
                adversary=ComponentSpec(behaviour_name),
                placement=ComponentSpec(
                    placement_name, {"count": congest_byzantine}, seed_offset=2
                ),
                protocol=ComponentSpec(
                    "congest",
                    {"gamma": gamma_congest, "d": degree, "max_rounds": budget},
                ),
                params={"evaluation": {"kind": "far", "radius": 1}},
                seeds=(seed,),
            )
            rows.append(
                SuiteRow(
                    scenario=scenario,
                    static={
                        "algorithm": "algorithm2 (CONGEST)",
                        "placement": placement_name,
                        "behaviour": behaviour_name,
                        "byzantine": congest_byzantine,
                    },
                    columns=dict(_GRID_COLUMNS_CONGEST),
                )
            )

    return ScenarioSuite(
        experiment="E9",
        claim=(
            "Theorems 1-2 hold for arbitrarily placed Byzantine nodes and any "
            "behaviour: the fraction of evaluation-set nodes in the "
            "constant-factor band stays high across the placement x behaviour grid"
        ),
        rows=rows,
        notes=[
            "Algorithm 1 rows evaluate the Lemma 1 Good set; Algorithm 2 rows "
            "evaluate honest nodes at distance >= 2 from every Byzantine node "
            "(the GoodTL stand-in).  fraction_in_band should stay >= ~0.9 across "
            "the whole grid."
        ],
    )


def sweep_configs(**kwargs: object) -> List[SweepConfig]:
    """Algorithm 1 grid configs first, then the Algorithm 2 grid configs."""
    return scenario_suite(**kwargs).compile()


def run_experiment(*, runner=None, **kwargs: object) -> ExperimentResult:
    """Placement × behaviour grid for both algorithms at a fixed size."""
    return scenario_suite(**kwargs).run(runner)
