"""Experiment E9 -- adversary robustness grid ("arbitrarily placed" claim).

Claim: Theorems 1 and 2 hold for *any* placement and behaviour of the
Byzantine nodes; this experiment sweeps a placement × behaviour grid for both
algorithms and reports the fraction of evaluation-set nodes achieving the
constant-factor band.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from repro.adversary.placement import clustered_placement, random_placement, spread_placement
from repro.adversary.strategies import (
    BeaconFloodAdversary,
    ContinueFloodAdversary,
    FakeTopologyAdversary,
    InconsistentTopologyAdversary,
    PathTamperAdversary,
)
from repro.core.congest_counting import run_congest_counting
from repro.core.local_counting import run_local_counting
from repro.core.parameters import CongestParameters, LocalParameters, byzantine_budget
from repro.experiments.common import ExperimentResult
from repro.graphs.expansion import good_set
from repro.graphs.hnd import hnd_random_regular_graph
from repro.graphs.neighborhoods import ball_of_set
from repro.simulator.byzantine import SilentAdversary

__all__ = ["run_experiment"]

_PLACEMENTS = {
    "random": random_placement,
    "clustered": clustered_placement,
    "spread": spread_placement,
}


def run_experiment(
    *,
    n: int = 256,
    degree: int = 8,
    gamma_local: float = 0.7,
    gamma_congest: float = 0.5,
    congest_byzantine: int = 3,
    placements: Sequence[str] = ("random", "clustered", "spread"),
    seed: int = 0,
) -> ExperimentResult:
    """Placement × behaviour grid for both algorithms at a fixed size."""
    result = ExperimentResult(
        experiment="E9",
        claim=(
            "Theorems 1-2 hold for arbitrarily placed Byzantine nodes and any "
            "behaviour: the fraction of evaluation-set nodes in the "
            "constant-factor band stays high across the placement x behaviour grid"
        ),
    )
    log_n = math.log(n)

    # -- Algorithm 1 grid -------------------------------------------------- #
    local_params = LocalParameters(gamma=gamma_local, max_degree=degree)
    local_behaviours = {
        "silent": SilentAdversary,
        "fake-topology": FakeTopologyAdversary,
        "inconsistent": InconsistentTopologyAdversary,
    }
    num_byz_local = byzantine_budget(n, 1.0 - gamma_local)
    for placement_name in placements:
        for behaviour_name, behaviour_cls in local_behaviours.items():
            graph = hnd_random_regular_graph(n, degree, seed=seed + n)
            byz = _PLACEMENTS[placement_name](graph, num_byz_local, seed=seed + 1)
            evaluation = good_set(graph, byz, gamma_local)
            run = run_local_counting(
                graph,
                byzantine=byz,
                adversary=behaviour_cls(),
                params=local_params,
                seed=seed,
                evaluation_set=evaluation,
            )
            outcome = run.outcome
            result.add_row(
                algorithm="algorithm1 (LOCAL)",
                placement=placement_name,
                behaviour=behaviour_name,
                byzantine=num_byz_local,
                eval_nodes=len(evaluation),
                decided_fraction=round(outcome.decided_fraction(), 3),
                fraction_in_band=round(outcome.fraction_within_band(0.35, 1.6), 3),
                median_estimate=outcome.median_estimate(),
                max_decision_round=outcome.max_decision_round(),
            )

    # -- Algorithm 2 grid -------------------------------------------------- #
    congest_params = CongestParameters(gamma=gamma_congest, d=degree)
    congest_behaviours = {
        "silent": lambda: SilentAdversary(),
        "beacon-flood": lambda: BeaconFloodAdversary(congest_params),
        "path-tamper": lambda: PathTamperAdversary(congest_params),
        "continue-flood": lambda: ContinueFloodAdversary(congest_params),
    }
    budget = congest_params.rounds_through_phase(int(math.ceil(log_n)) + 1)
    for placement_name in placements:
        for behaviour_name, make_behaviour in congest_behaviours.items():
            graph = hnd_random_regular_graph(n, degree, seed=seed + 2 * n)
            byz = _PLACEMENTS[placement_name](graph, congest_byzantine, seed=seed + 2)
            run = run_congest_counting(
                graph,
                byzantine=byz,
                adversary=make_behaviour(),
                params=congest_params,
                seed=seed,
                max_rounds=budget,
            )
            outcome = run.outcome
            contaminated = ball_of_set(graph, byz, 1)
            far = [u for u in outcome.records if u not in contaminated]
            far_in_band = (
                sum(
                    1
                    for u in far
                    if outcome.records[u].within(0.35 * log_n, 1.6 * log_n)
                )
                / len(far)
                if far
                else 0.0
            )
            result.add_row(
                algorithm="algorithm2 (CONGEST)",
                placement=placement_name,
                behaviour=behaviour_name,
                byzantine=congest_byzantine,
                eval_nodes=len(far),
                decided_fraction=round(outcome.decided_fraction(), 3),
                fraction_in_band=round(far_in_band, 3),
                median_estimate=outcome.median_estimate(),
                max_decision_round=outcome.max_decision_round(),
            )
    result.add_note(
        "Algorithm 1 rows evaluate the Lemma 1 Good set; Algorithm 2 rows "
        "evaluate honest nodes at distance >= 2 from every Byzantine node "
        "(the GoodTL stand-in).  fraction_in_band should stay >= ~0.9 across "
        "the whole grid."
    )
    return result
