"""Experiment E5 -- Lemma 2 (locally tree-like nodes of ``H(n, d)``).

Claim: in an ``H(n, d)`` random graph, with high probability at least
``n - O(n^0.8)`` nodes are locally tree-like up to radius
``log n / (10 log d)``.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.experiments.common import ExperimentResult, mean_or_none, run_configs
from repro.graphs.hnd import hnd_random_regular_graph
from repro.graphs.treelike import treelike_nodes, treelike_radius
from repro.runner import SweepConfig, sweep_task

__all__ = ["run_experiment", "sweep_configs"]


@sweep_task("e5.trial")
def _trial(*, n: int, d: int, radius: int, trial_seed: int) -> int:
    """Count the tree-like nodes of one sampled ``H(n, d)`` graph."""
    graph = hnd_random_regular_graph(n, d, seed=trial_seed)
    return len(treelike_nodes(graph, degree=d, radius=radius))


def sweep_configs(
    *,
    sizes: Sequence[int] = (256, 512, 1024, 2048),
    degrees: Sequence[int] = (8, 12),
    trials: int = 3,
    seed: int = 0,
) -> List[SweepConfig]:
    """The (degree, size, trial) grid as a flat config list."""
    return [
        SweepConfig(
            "e5.trial",
            {
                "n": n,
                "d": d,
                "radius": treelike_radius(n, d),
                "trial_seed": seed + trial * 613 + n + d,
            },
        )
        for d in degrees
        for n in sizes
        for trial in range(trials)
    ]


def run_experiment(
    *,
    sizes: Sequence[int] = (256, 512, 1024, 2048),
    degrees: Sequence[int] = (8, 12),
    trials: int = 3,
    seed: int = 0,
    runner=None,
) -> ExperimentResult:
    """Measure the tree-like fraction against the ``n - O(n^0.8)`` bound."""
    configs = sweep_configs(sizes=sizes, degrees=degrees, trials=trials, seed=seed)
    counts_flat = run_configs(configs, runner)

    result = ExperimentResult(
        experiment="E5",
        claim=(
            "Lemma 2: at least n - O(n^0.8) nodes of H(n, d) are locally "
            "tree-like up to radius log n / (10 log d)"
        ),
    )
    index = 0
    for d in degrees:
        for n in sizes:
            radius = treelike_radius(n, d)
            counts = counts_flat[index : index + trials]
            index += trials
            mean_count = mean_or_none(counts)
            result.add_row(
                n=n,
                d=d,
                radius=radius,
                mean_treelike=round(mean_count, 1),
                mean_fraction=round(mean_count / n, 4),
                non_treelike=round(n - mean_count, 1),
                n_to_0_8=round(n ** 0.8, 1),
                within_lemma_bound=(n - mean_count) <= 3.0 * n ** 0.8,
            )
    result.add_note(
        "within_lemma_bound checks the number of atypical nodes against "
        "3·n^0.8 (the lemma's O(n^0.8) with an explicit constant; the hidden "
        "constant grows with d, so the d = 12 rows need larger n before the "
        "bound with this constant kicks in).  The shape to check is that the "
        "non-tree-like *fraction* shrinks as n grows for every fixed d."
    )
    return result
