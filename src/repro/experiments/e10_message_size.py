"""Experiment E10 -- message sizes (footnote 1 and Theorem 2's CONGEST claim).

Claim: in Algorithm 2 most good nodes only ever send messages of ``O(log n)``
bits plus a constant number of node ids, whereas Algorithm 1 (a LOCAL
algorithm) sends messages whose size grows polynomially with the view.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.congest_counting import run_congest_counting
from repro.core.local_counting import run_local_counting
from repro.core.parameters import CongestParameters, LocalParameters
from repro.experiments.common import ExperimentResult
from repro.graphs.hnd import hnd_random_regular_graph

__all__ = ["run_experiment"]


def run_experiment(
    *,
    sizes: Sequence[int] = (64, 128, 256, 512),
    degree: int = 8,
    seed: int = 0,
) -> ExperimentResult:
    """Per-algorithm message-size statistics across network sizes."""
    result = ExperimentResult(
        experiment="E10",
        claim=(
            "Theorem 2 / footnote 1: Algorithm 2's good nodes send only "
            "O(log n)-bit messages with O(1) ids, while Algorithm 1's messages "
            "grow polynomially with n"
        ),
    )
    local_params = LocalParameters(max_degree=degree)
    congest_params = CongestParameters(d=degree)

    for n in sizes:
        graph = hnd_random_regular_graph(n, degree, seed=seed + n)

        local_run = run_local_counting(graph, params=local_params, seed=seed)
        local_metrics = local_run.result.metrics
        local_max_ids = max(
            (stats.max_message_ids for stats in local_metrics.per_node.values()),
            default=0,
        )

        congest_run = run_congest_counting(graph, params=congest_params, seed=seed)
        congest_metrics = congest_run.result.metrics
        congest_max_ids = max(
            (stats.max_message_ids for stats in congest_metrics.per_node.values()),
            default=0,
        )

        result.add_row(
            n=n,
            ln_n=round(math.log(n), 2),
            local_max_message_ids=local_max_ids,
            local_small_message_fraction=round(
                local_metrics.small_message_fraction(n), 3
            ),
            local_total_messages=local_metrics.total_messages,
            congest_max_message_ids=congest_max_ids,
            congest_small_message_fraction=round(
                congest_metrics.small_message_fraction(n), 3
            ),
            congest_total_messages=congest_metrics.total_messages,
        )
    result.add_note(
        "local_max_message_ids grows roughly like n·d (the algorithm ships "
        "whole neighborhoods), so local_small_message_fraction collapses as n "
        "grows; congest_max_message_ids stays O(log n)-sized (a path field of "
        "at most the current phase length) and the small-message fraction stays ~1."
    )
    return result
