"""Experiment E10 -- message sizes (footnote 1 and Theorem 2's CONGEST claim).

Claim: in Algorithm 2 most good nodes only ever send messages of ``O(log n)``
bits plus a constant number of node ids, whereas Algorithm 1 (a LOCAL
algorithm) sends messages whose size grows polynomially with the view.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.core.congest_counting import run_congest_counting
from repro.core.local_counting import run_local_counting
from repro.core.parameters import CongestParameters, LocalParameters
from repro.experiments.common import ExperimentResult, run_configs
from repro.graphs.hnd import hnd_random_regular_graph
from repro.runner import SweepConfig, sweep_task

__all__ = ["run_experiment", "sweep_configs"]


@sweep_task("e10.local")
def _local_stats(*, n: int, degree: int, seed: int) -> dict:
    """Algorithm 1 message-size statistics on one graph."""
    local_params = LocalParameters(max_degree=degree)
    graph = hnd_random_regular_graph(n, degree, seed=seed + n)
    run = run_local_counting(graph, params=local_params, seed=seed)
    metrics = run.result.metrics
    max_ids = max(
        (stats.max_message_ids for stats in metrics.per_node.values()), default=0
    )
    return {
        "local_max_message_ids": max_ids,
        "local_small_message_fraction": round(metrics.small_message_fraction(n), 3),
        "local_total_messages": metrics.total_messages,
    }


@sweep_task("e10.congest")
def _congest_stats(*, n: int, degree: int, seed: int) -> dict:
    """Algorithm 2 message-size statistics on one graph."""
    congest_params = CongestParameters(d=degree)
    graph = hnd_random_regular_graph(n, degree, seed=seed + n)
    run = run_congest_counting(graph, params=congest_params, seed=seed)
    metrics = run.result.metrics
    max_ids = max(
        (stats.max_message_ids for stats in metrics.per_node.values()), default=0
    )
    return {
        "congest_max_message_ids": max_ids,
        "congest_small_message_fraction": round(metrics.small_message_fraction(n), 3),
        "congest_total_messages": metrics.total_messages,
    }


def sweep_configs(
    *,
    sizes: Sequence[int] = (64, 128, 256, 512),
    degree: int = 8,
    seed: int = 0,
) -> List[SweepConfig]:
    """Per size: one Algorithm 1 run and one Algorithm 2 run (interleaved)."""
    configs: List[SweepConfig] = []
    for n in sizes:
        params = {"n": n, "degree": degree, "seed": seed}
        configs.append(SweepConfig("e10.local", params))
        configs.append(SweepConfig("e10.congest", params))
    return configs


def run_experiment(
    *,
    sizes: Sequence[int] = (64, 128, 256, 512),
    degree: int = 8,
    seed: int = 0,
    runner=None,
) -> ExperimentResult:
    """Per-algorithm message-size statistics across network sizes."""
    configs = sweep_configs(sizes=sizes, degree=degree, seed=seed)
    flat = run_configs(configs, runner)

    result = ExperimentResult(
        experiment="E10",
        claim=(
            "Theorem 2 / footnote 1: Algorithm 2's good nodes send only "
            "O(log n)-bit messages with O(1) ids, while Algorithm 1's messages "
            "grow polynomially with n"
        ),
    )
    for index, n in enumerate(sizes):
        local_stats = flat[2 * index]
        congest_stats = flat[2 * index + 1]
        result.add_row(
            n=n,
            ln_n=round(math.log(n), 2),
            **local_stats,
            **congest_stats,
        )
    result.add_note(
        "local_max_message_ids grows roughly like n·d (the algorithm ships "
        "whole neighborhoods), so local_small_message_fraction collapses as n "
        "grows; congest_max_message_ids stays O(log n)-sized (a path field of "
        "at most the current phase length) and the small-message fraction stays ~1."
    )
    return result
