"""Empirical indistinguishability experiment for Theorem 3 (experiment E4).

Protocol executions on the base graph ``C_n`` and on the glued graph ``H``
(``t`` copies of ``C_n`` sharing one Byzantine node that simulates the
single-copy behaviour toward each copy) are compared.  Theorem 3 predicts
that the estimates inside ``H`` look exactly like estimates for an ``n``-node
network even though ``|H| ≈ t·n``, so more than half the nodes of ``H`` miss
any approximation target that separates ``log n`` from ``log(t·n)``.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.congest_counting import (
    CongestCountingProtocol,
    PhaseSchedule,
    run_congest_counting,
)
from repro.core.parameters import CongestParameters
from repro.graphs.graph import Graph
from repro.impossibility.construction import (
    ChainedCopiesInstance,
    SimulatingCutAdversary,
    build_chained_instance,
)
from repro.simulator.node import NodeContext, Protocol

__all__ = ["IndistinguishabilityResult", "run_indistinguishability_experiment"]


@dataclass
class IndistinguishabilityResult:
    """Outcome of the Theorem 3 experiment."""

    base_n: int
    glued_n: int
    num_copies: int
    base_median_estimate: Optional[float]
    glued_median_estimate: Optional[float]
    glued_fraction_correct_for_glued_size: float
    glued_fraction_matching_base_size: float

    @property
    def log_base_n(self) -> float:
        """``ln`` of the base graph size."""
        return math.log(max(self.base_n, 2))

    @property
    def log_glued_n(self) -> float:
        """``ln`` of the glued graph size."""
        return math.log(max(self.glued_n, 2))

    def demonstrates_impossibility(
        self, *, median_tolerance: float = 1.0, min_log_gap: float = 1.0
    ) -> bool:
        """Whether the run exhibits the Theorem 3 phenomenon.

        The simulating cut node hides ``(t-1)`` copies, so the estimates in the
        glued run should match the estimates of the base run even though the
        true size grew by a factor ``t``.  The check therefore requires

        * the glued-run median estimate to sit within ``median_tolerance`` of
          the base-run median (the executions are indistinguishable -- they
          track the *base* size, so the approximation quality w.r.t. the true
          glued size degrades by the hidden factor for essentially every
          node), while
        * ``ln(glued n) - ln(base n) >= min_log_gap`` (the hidden growth is
          large enough for that degradation to be a genuine constant factor).

        Medians are pooled over the experiment's trials, which keeps the
        criterion stable against the natural per-run variance of Algorithm 2's
        decision phase.
        """
        if self.base_median_estimate is None or self.glued_median_estimate is None:
            return False
        medians_match = (
            abs(self.glued_median_estimate - self.base_median_estimate)
            <= median_tolerance
        )
        hidden_growth = (self.log_glued_n - self.log_base_n) >= min_log_gap
        return medians_match and hidden_growth

    def summary(self) -> Dict[str, object]:
        """Row for the experiment tables."""
        return {
            "base_n": self.base_n,
            "glued_n": self.glued_n,
            "copies": self.num_copies,
            "median_estimate_base_run": self.base_median_estimate,
            "median_estimate_glued_run": self.glued_median_estimate,
            "ln_base_n": round(self.log_base_n, 3),
            "ln_glued_n": round(self.log_glued_n, 3),
            "fraction_correct_for_glued_size": round(
                self.glued_fraction_correct_for_glued_size, 3
            ),
            "fraction_matching_base_size": round(
                self.glued_fraction_matching_base_size, 3
            ),
        }


def run_indistinguishability_experiment(
    base: Graph,
    num_copies: int,
    *,
    params: Optional[CongestParameters] = None,
    seed: int = 0,
    attachment_node: int = 0,
    band_lower: float = 0.6,
    band_upper: float = 1.3,
    num_trials: int = 3,
) -> IndistinguishabilityResult:
    """Run Algorithm 2 on the base graph and on the Theorem 3 glued graph.

    Parameters
    ----------
    base:
        The base graph ``C_n``.  Any graph works; the experiment is most
        striking when ``base`` is itself an expander, showing that the loss of
        *global* expansion caused by the single shared cut node is what breaks
        counting.
    num_copies:
        Number ``t`` of copies glued at the shared node.
    params:
        Algorithm 2 parameters (defaults to the base graph's degree).
    band_lower, band_upper:
        Constant-factor acceptance band used to score estimates against the
        glued size and the base size (reported as diagnostic fractions).
    num_trials:
        Number of independent runs of both configurations; estimates are
        pooled across trials before computing medians so the verdict is not
        at the mercy of a single run's randomness.
    """
    if params is None:
        params = CongestParameters(d=max(3, base.max_degree()))
    num_trials = max(1, num_trials)

    base_estimates: List[float] = []
    glued_estimates: List[float] = []
    glued_records = []
    glued_n = 0

    for trial in range(num_trials):
        trial_seed = seed + 1000 * trial

        # Reference run on the base graph (no Byzantine nodes at all).
        base_run = run_congest_counting(base, params=params, seed=trial_seed)
        base_estimates.extend(
            e for e in base_run.outcome.estimates() if e is not None
        )

        # Glued run with the simulating cut adversary.
        instance = build_chained_instance(
            base, num_copies, attachment_node=attachment_node, seed=trial_seed
        )
        schedule = PhaseSchedule(params)

        def factory(ctx: NodeContext) -> Protocol:
            return CongestCountingProtocol(ctx, params, schedule)

        adversary = SimulatingCutAdversary(instance, factory)
        glued_run = run_congest_counting(
            instance.glued,
            byzantine=[instance.shared_node],
            adversary=adversary,
            params=params,
            seed=trial_seed + 1,
        )
        glued_estimates.extend(
            e for e in glued_run.outcome.estimates() if e is not None
        )
        glued_records.extend(glued_run.outcome.records.values())
        glued_n = instance.glued.n

    base_median = statistics.median(base_estimates) if base_estimates else None
    glued_median = statistics.median(glued_estimates) if glued_estimates else None

    log_glued = math.log(max(glued_n, 2))
    log_base = math.log(max(base.n, 2))
    decided = [r for r in glued_records if r.decided and r.estimate is not None]

    def fraction_in(target_log: float) -> float:
        if not glued_records:
            return 0.0
        low, high = band_lower * target_log, band_upper * target_log
        return sum(1 for r in decided if low <= r.estimate <= high) / len(glued_records)

    return IndistinguishabilityResult(
        base_n=base.n,
        glued_n=glued_n,
        num_copies=num_copies,
        base_median_estimate=base_median,
        glued_median_estimate=glued_median,
        glued_fraction_correct_for_glued_size=fraction_in(log_glued),
        glued_fraction_matching_base_size=fraction_in(log_base),
    )
