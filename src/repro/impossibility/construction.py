"""The Theorem 3 construction and the simulating cut adversary.

``build_chained_instance`` glues ``t`` copies of a base graph at one shared
node ``b``.  ``SimulatingCutAdversary`` makes ``b`` Byzantine in the way the
proof requires: toward each copy, ``b`` behaves exactly as an honest node
running the target protocol would behave if that copy were the whole network.
Consequently the honest nodes of each copy observe an execution that is
message-for-message identical to an execution on the base graph, even though
the real network is ``t`` times larger.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.graphs.generators import chained_copies_graph
from repro.graphs.graph import Graph
from repro.graphs.neighborhoods import induced_subgraph
from repro.simulator.byzantine import Adversary, AdversaryView, ByzantineOutbox
from repro.simulator.messages import Message
from repro.simulator.node import NodeContext, Outbox, Protocol
from repro.simulator.rng import split_seed

__all__ = [
    "ChainedCopiesInstance",
    "build_chained_instance",
    "copies_isomorphic_to_base",
    "SimulatingCutAdversary",
]


@dataclass
class ChainedCopiesInstance:
    """A glued graph together with its bookkeeping.

    Attributes
    ----------
    base:
        The base graph ``C_n``.
    glued:
        The glued graph ``H`` consisting of ``t`` copies of ``base`` sharing
        one node.
    shared_node:
        Index (in ``glued``) of the shared node ``b``.
    copy_membership:
        ``copy_membership[k]`` lists the glued-graph indices of the nodes of
        copy ``k`` (excluding ``b``).
    """

    base: Graph
    glued: Graph
    shared_node: int
    copy_membership: List[List[int]]

    @property
    def num_copies(self) -> int:
        """Number of glued copies ``t``."""
        return len(self.copy_membership)

    def copy_of(self, node: int) -> Optional[int]:
        """Which copy a (non-shared) node belongs to, or ``None`` for ``b``."""
        for k, members in enumerate(self.copy_membership):
            if node in members:
                return k
        return None


def build_chained_instance(
    base: Graph, num_copies: int, *, attachment_node: int = 0, seed: Optional[int] = None
) -> ChainedCopiesInstance:
    """Build the Theorem 3 instance: ``num_copies`` copies of ``base`` glued at one node."""
    glued, shared, membership = chained_copies_graph(
        base, num_copies, attachment_node=attachment_node, seed=seed
    )
    return ChainedCopiesInstance(
        base=base, glued=glued, shared_node=shared, copy_membership=membership
    )


def copies_isomorphic_to_base(instance: ChainedCopiesInstance) -> bool:
    """Verify that every copy together with ``b`` induces a graph isomorphic to the base.

    The construction maps base nodes to glued nodes copy by copy, so the check
    compares the induced subgraph of (copy ∪ {b}) against the base graph under
    the construction's own node correspondence (degree sequence and edge count
    must match exactly).
    """
    base = instance.base
    base_degrees = sorted(base.degree(u) for u in range(base.n))
    base_edges = base.num_edges()
    for members in instance.copy_membership:
        nodes = sorted(members + [instance.shared_node])
        sub, _ = induced_subgraph(instance.glued, nodes)
        if sub.n != base.n:
            return False
        if sub.num_edges() != base_edges:
            return False
        if sorted(sub.degree(u) for u in range(sub.n)) != base_degrees:
            return False
    return True


class SimulatingCutAdversary(Adversary):
    """The shared node ``b`` simulates an independent honest execution per copy.

    For every copy ``k``, the adversary instantiates the honest protocol with
    a context whose neighbors are exactly ``b``'s neighbors *inside copy k*,
    feeds it only the messages arriving from copy ``k``, and relays its
    outbox only into copy ``k``.  Each copy therefore observes precisely the
    execution it would observe if it were the entire network, which is the
    heart of the Theorem 3 argument.

    Parameters
    ----------
    instance:
        The chained-copies instance (identifies ``b`` and the copies).
    protocol_factory:
        Builds the honest protocol given a :class:`NodeContext`; must be the
        same factory the honest nodes use.
    """

    def __init__(
        self,
        instance: ChainedCopiesInstance,
        protocol_factory: Callable[[NodeContext], Protocol],
    ) -> None:
        self.instance = instance
        self.protocol_factory = protocol_factory
        self._per_copy_protocols: Dict[int, Protocol] = {}
        self._per_copy_contexts: Dict[int, NodeContext] = {}
        self._copy_of_neighbor: Dict[int, int] = {}

    def setup(self, graph: Graph, byzantine, rng: random.Random) -> None:  # type: ignore[override]
        super().setup(graph, byzantine, rng)
        shared = self.instance.shared_node
        if shared not in byzantine:
            raise ValueError("the shared node of the construction must be Byzantine")
        # Partition b's neighbors by copy and build one simulated protocol per copy.
        neighbors_by_copy: Dict[int, List[int]] = {}
        for v in graph.neighbors(shared):
            copy_index = self.instance.copy_of(v)
            if copy_index is None:
                continue
            neighbors_by_copy.setdefault(copy_index, []).append(v)
            self._copy_of_neighbor[v] = copy_index
        for copy_index, neighbors in neighbors_by_copy.items():
            ctx = NodeContext(
                index=shared,
                node_id=graph.node_id(shared),
                neighbors=tuple(neighbors),
                neighbor_ids={v: graph.node_id(v) for v in neighbors},
                rng=random.Random(split_seed(rng.getrandbits(62), "copy", copy_index)),
                round=0,
            )
            self._per_copy_contexts[copy_index] = ctx
            self._per_copy_protocols[copy_index] = self.protocol_factory(ctx)

    def act(self, view: AdversaryView) -> ByzantineOutbox:
        shared = self.instance.shared_node
        combined: Dict[int, List[Message]] = {}
        inbox = view.byzantine_inboxes.get(shared, [])
        for copy_index, protocol in self._per_copy_protocols.items():
            ctx = self._per_copy_contexts[copy_index]
            ctx.round = view.round
            copy_inbox = [
                m for m in inbox if m.sender in self._copy_of_neighbor
                and self._copy_of_neighbor[m.sender] == copy_index
            ]
            if view.round == 0:
                outbox: Outbox = protocol.on_start(ctx) or {}
            else:
                outbox = protocol.on_round(ctx, copy_inbox) or {}
            for target, messages in outbox.items():
                combined.setdefault(target, []).extend(messages)
        return {shared: combined}

    def simulated_estimates(self) -> Dict[int, Optional[float]]:
        """The estimate each per-copy simulated instance decided (diagnostics)."""
        return {
            k: (p.estimate if p.decided else None)
            for k, p in self._per_copy_protocols.items()
        }
