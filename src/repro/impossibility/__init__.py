"""The impossibility result (Theorem 3, Section 6).

Without sufficient vertex expansion, no algorithm can let more than ``⌈n/2⌉``
nodes approximate ``log n`` with non-trivial probability even against a single
Byzantine node.  The proof glues ``t`` copies of an arbitrary graph ``C_n`` at
one Byzantine node ``b``; because ``b`` can simulate toward each copy exactly
the messages it would send in a single-copy execution, nodes inside a copy
cannot distinguish "I live in ``C_n``" from "I live in the ``t``-times larger
glued graph", so their estimates are wrong in at least one of the two worlds.

* :mod:`repro.impossibility.construction` -- the glued-graph construction,
  the per-copy isomorphism check, and the simulating cut adversary.
* :mod:`repro.impossibility.experiment` -- the empirical indistinguishability
  experiment (E4).
"""

from repro.impossibility.construction import (
    ChainedCopiesInstance,
    build_chained_instance,
    copies_isomorphic_to_base,
    SimulatingCutAdversary,
)
from repro.impossibility.experiment import (
    IndistinguishabilityResult,
    run_indistinguishability_experiment,
)

__all__ = [
    "ChainedCopiesInstance",
    "build_chained_instance",
    "copies_isomorphic_to_base",
    "SimulatingCutAdversary",
    "IndistinguishabilityResult",
    "run_indistinguishability_experiment",
]
