"""Consistent-hash node grouping (the NBFT-style committee construction).

Nodes and group anchors are hashed onto the same 64-bit ring; each node
belongs to the first anchor clockwise from its position.  The assignment is a
pure function of the node *identifiers* and the group count -- every node
that knows an identifier can compute its group (and each group's leader, the
member with the smallest ring position) without communication, which is what
lets the grouped-BFT protocol below bootstrap per-group agreement from
membership knowledge alone.  SHA-256 keeps the ring placement stable across
processes and Python versions, exactly like
:func:`repro.simulator.rng.split_seed`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["ring_hash", "GroupAssignment", "assign_groups"]


def ring_hash(label: object) -> int:
    """Position of ``label`` on the 64-bit consistent-hash ring."""
    digest = hashlib.sha256(str(label).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class GroupAssignment:
    """One deterministic grouping of a node-id universe.

    Attributes
    ----------
    members:
        Per group, the sorted tuple of member node ids (possibly empty: with
        few nodes and many anchors a group can receive nobody).
    leaders:
        Per group, the leader's node id (``None`` for empty groups).  The
        leader is the member with the smallest ring position, ties broken by
        id.
    group_of:
        Node id -> group index.
    """

    members: Tuple[Tuple[int, ...], ...]
    leaders: Tuple[Optional[int], ...]
    group_of: Dict[int, int]

    @property
    def num_groups(self) -> int:
        return len(self.members)

    def nonempty_groups(self) -> List[int]:
        """Indices of groups with at least one member."""
        return [g for g, ids in enumerate(self.members) if ids]


def assign_groups(node_ids: Iterable[int], num_groups: int) -> GroupAssignment:
    """Assign every node id to one of ``num_groups`` consistent-hash groups."""
    if num_groups < 1:
        raise ValueError(f"num_groups must be >= 1, got {num_groups}")
    anchors = sorted(
        (ring_hash(("group", g)), g) for g in range(num_groups)
    )
    anchor_positions = [position for position, _ in anchors]
    group_of: Dict[int, int] = {}
    buckets: List[List[Tuple[int, int]]] = [[] for _ in range(num_groups)]
    for node_id in node_ids:
        position = ring_hash(("node", node_id))
        # First anchor clockwise (wrapping to the smallest anchor).
        index = 0
        for i, anchor_position in enumerate(anchor_positions):
            if anchor_position >= position:
                index = i
                break
        group = anchors[index][1]
        group_of[node_id] = group
        buckets[group].append((position, node_id))
    members: List[Tuple[int, ...]] = []
    leaders: List[Optional[int]] = []
    for bucket in buckets:
        bucket.sort()
        members.append(tuple(sorted(node_id for _, node_id in bucket)))
        leaders.append(bucket[0][1] if bucket else None)
    return GroupAssignment(
        members=tuple(members), leaders=tuple(leaders), group_of=group_of
    )
