"""Grouped Byzantine agreement: consistent-hash groups + OM(m) cascades.

The NBFT-style construction scales Byzantine agreement by splitting the node
universe into consistent-hash groups (:mod:`repro.protocols.grouping`), each
of which runs classic interactive-consistency agreement on its *leader's*
input value, and then aggregating the per-group results network-wide:

1. **OM cascade** (rounds ``1 .. (m+1)·hops``): each group leader broadcasts
   its input bit; group members relay it with the path-tuple bookkeeping of
   the Lamport-Shostak-Pease OM(m) algorithm (``m = f``): a member that
   accepts a value under path ``p`` re-announces it under ``p + (self,)``
   until paths reach length ``m + 1``.  Honest nodes -- members or not --
   flood every well-formed cascade message once, so the cascade crosses a
   sparse graph within ``hops`` rounds per level instead of assuming a
   clique.
2. **Per-group decision**: after the cascade budget each member runs the
   standard recursive-majority resolution over its path tree (missing
   branches default to 0, the "retreat" convention) to obtain the group's
   agreed value.  With honest group size ``> 3f`` and direct connectivity
   this is exactly OM(m)'s guarantee; with flood-relays the envelope is
   weaker, which the zoo's cross-protocol grid measures rather than assumes.
3. **Aggregation** (the final ``hops + 1`` rounds): every member announces
   ``(group, self, agreed value)``; all nodes flood the announcements, take
   a per-group majority over the reporters, then decide the majority bit
   over the non-empty groups.

All nodes decide simultaneously at the fixed final round, so the run length
is deterministic: ``(m + 2)·hops + 1`` rounds.

The membership map is computed from the graph's node-id universe by the run
wrapper and handed to every instance -- the standard "known membership"
assumption of committee-based BFT, and the one real global input this family
needs beyond the paper's model.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.graphs.graph import Graph
from repro.protocols.common import ZooRun, binary_decision_metrics, build_outcome
from repro.protocols.grouping import GroupAssignment, assign_groups
from repro.simulator.byzantine import Adversary
from repro.simulator.churn import ChurnSchedule
from repro.simulator.engine import SynchronousEngine
from repro.simulator.messages import Message
from repro.simulator.network import Network
from repro.simulator.node import NodeContext, Outbox, Protocol, broadcast
from repro.simulator.rng import coin_stream

__all__ = ["GroupedBftProtocol", "run_grouped_bft", "spec_validate_grouped_bft"]


def _om_message(group: int, path: Tuple[int, ...], value: int) -> Message:
    return Message.make(
        "gbft", payload=("om", group, path, value), num_ids=len(path)
    )


def _agg_message(group: int, reporter: int, value: int) -> Message:
    return Message.make("gbft", payload=("agg", group, reporter, value), num_ids=1)


class GroupedBftProtocol(Protocol):
    """One node of the grouped OM(m) agreement."""

    def __init__(
        self,
        ctx: NodeContext,
        *,
        assignment: GroupAssignment,
        f: int,
        hops: int,
        initial: Any,
        seed: int,
    ) -> None:
        self.assignment = assignment
        self.m = f
        self.hops = hops
        self.node_id = ctx.node_id
        self.group = assignment.group_of[ctx.node_id]
        self.members: Tuple[int, ...] = assignment.members[self.group]
        self.leader_id = assignment.leaders[self.group]
        self.om_deadline = (self.m + 1) * hops
        self.decide_round = self.om_deadline + hops + 1
        if initial == "coin":
            self.value = coin_stream(seed, "gbft-input", ctx.node_id).randrange(2)
        elif initial == "id-parity":
            self.value = ctx.node_id & 1
        else:
            self.value = int(initial)
        #: Accepted cascade values of the own group, keyed by path tuple.
        self.tree: Dict[Tuple[int, ...], int] = {}
        #: Flood-relay dedup across all groups.
        self._seen: Set[Tuple[Any, ...]] = set()
        #: Aggregation reports: (group, reporter id) -> value.
        self.reports: Dict[Tuple[int, int], int] = {}
        self.group_value: Optional[int] = None
        self._decided = False
        self._estimate: Optional[float] = None
        self._decision_round: Optional[int] = None

    # ------------------------------------------------------------------ #
    @property
    def decided(self) -> bool:
        return self._decided

    @property
    def estimate(self) -> Optional[float]:
        return self._estimate

    @property
    def decision_round(self) -> Optional[int]:
        return self._decision_round

    # ------------------------------------------------------------------ #
    def on_start(self, ctx: NodeContext) -> Outbox:
        if ctx.node_id != self.leader_id:
            return {}
        path = (ctx.node_id,)
        self.tree[path] = self.value
        message = _om_message(self.group, path, self.value)
        self._seen.add(("om", self.group, path, self.value))
        return broadcast(ctx.neighbors, message)

    def on_round(self, ctx: NodeContext, inbox: List[Message]) -> Outbox:
        outgoing: List[Message] = []
        for message in inbox:
            outgoing.extend(self._handle(ctx, message))
        if ctx.round == self.om_deadline:
            outgoing.append(self._announce_group_value(ctx))
        if ctx.round >= self.decide_round and not self._decided:
            self._decide(ctx)
        if not outgoing:
            return {}
        return {v: list(outgoing) for v in ctx.neighbors}

    # ------------------------------------------------------------------ #
    def _handle(self, ctx: NodeContext, message: Message) -> List[Message]:
        """Validate, record, and (once) relay one received cascade message."""
        if message.kind != "gbft" or not isinstance(message.payload, tuple):
            return []
        payload = message.payload
        if len(payload) != 4:
            return []
        tag, group, middle, value = payload
        if value not in (0, 1) or not isinstance(group, int):
            return []
        if not 0 <= group < self.assignment.num_groups:
            return []
        if tag == "om":
            return self._handle_om(ctx, group, middle, value)
        if tag == "agg":
            return self._handle_agg(ctx, group, middle, value)
        return []

    def _handle_om(
        self, ctx: NodeContext, group: int, path: Any, value: int
    ) -> List[Message]:
        members = self.assignment.members[group]
        leader = self.assignment.leaders[group]
        if not isinstance(path, tuple) or not 1 <= len(path) <= self.m + 1:
            return []
        if len(set(path)) != len(path) or path[0] != leader:
            return []
        if any(p not in members for p in path):
            return []
        key = ("om", group, path, value)
        if key in self._seen or ctx.round > self.om_deadline:
            return []
        self._seen.add(key)
        relays = [_om_message(group, path, value)]
        if group == self.group and ctx.node_id not in path:
            # Record the first value heard under this path and, below the
            # cascade depth, re-announce it under the extended path.
            if path not in self.tree:
                self.tree[path] = value
                if len(path) <= self.m:
                    extended = path + (ctx.node_id,)
                    extended_key = ("om", group, extended, value)
                    if extended_key not in self._seen:
                        self._seen.add(extended_key)
                        relays.append(_om_message(group, extended, value))
        return relays

    def _handle_agg(
        self, ctx: NodeContext, group: int, reporter: Any, value: int
    ) -> List[Message]:
        if reporter not in self.assignment.members[group]:
            return []
        key = ("agg", group, reporter, value)
        if key in self._seen:
            return []
        self._seen.add(key)
        self.reports.setdefault((group, reporter), value)
        return [_agg_message(group, reporter, value)]

    # ------------------------------------------------------------------ #
    def _resolve(self, path: Tuple[int, ...]) -> int:
        """OM(m) recursive majority over the accepted path tree.

        Missing values default to 0 (the deterministic "retreat" value), and
        ties resolve to 0, matching the classic algorithm's conventions.
        """
        if len(path) == self.m + 1:
            return self.tree.get(path, 0)
        votes = [self.tree.get(path, 0)]
        for q in self.members:
            # The resolving node never stores paths through itself (it *is*
            # the relay on those); including them would vote the default.
            if q not in path and q != self.node_id:
                votes.append(self._resolve(path + (q,)))
        return 1 if sum(votes) * 2 > len(votes) else 0

    def _announce_group_value(self, ctx: NodeContext) -> Message:
        if ctx.node_id == self.leader_id:
            self.group_value = self.value
        else:
            self.group_value = self._resolve((self.leader_id,))
        self.reports[(self.group, ctx.node_id)] = self.group_value
        message = _agg_message(self.group, ctx.node_id, self.group_value)
        self._seen.add(("agg", self.group, ctx.node_id, self.group_value))
        return message

    def _decide(self, ctx: NodeContext) -> None:
        group_votes: List[int] = []
        for group in self.assignment.nonempty_groups():
            votes = [
                value
                for (g, _reporter), value in sorted(self.reports.items())
                if g == group
            ]
            if not votes:
                continue
            group_votes.append(1 if sum(votes) * 2 > len(votes) else 0)
        bit = 1 if group_votes and sum(group_votes) * 2 > len(group_votes) else 0
        self._decided = True
        self._estimate = float(bit)
        self._decision_round = ctx.round


def spec_validate_grouped_bft(params: Mapping[str, Any], n: Optional[int]) -> None:
    """Compile-time envelope check of the ``grouped-bft`` registry entry.

    Raises ``ValueError`` whose message starts with the offending parameter
    name; :meth:`repro.scenarios.spec.Scenario.validate` prefixes the spec
    path.
    """
    f = params.get("f", 1)
    if not isinstance(f, int) or f < 0:
        raise ValueError(f"f: must be a non-negative integer, got {f!r}")
    if n is not None and n <= 3 * f:
        raise ValueError(
            f"f: the OM(m) honest envelope needs n > 3f (n={n}, f={f})"
        )
    groups = params.get("groups")
    if groups is not None:
        if not isinstance(groups, int) or groups < 1:
            raise ValueError(f"groups: must be a positive integer, got {groups!r}")
        if n is not None and groups * (3 * f + 1) > n:
            raise ValueError(
                f"groups: {groups} groups of honest size > 3f need "
                f"n >= groups·(3f+1) = {groups * (3 * f + 1)}, got n={n}"
            )
    hops = params.get("hops")
    if hops is not None and (not isinstance(hops, int) or hops < 1):
        raise ValueError(f"hops: must be a positive integer, got {hops!r}")
    initial = params.get("initial", "coin")
    if initial not in ("coin", "id-parity", 0, 1):
        raise ValueError(
            f"initial: must be 'coin', 'id-parity', 0, or 1, got {initial!r}"
        )


def run_grouped_bft(
    graph: Graph,
    *,
    byzantine: Iterable[int] = (),
    adversary: Optional[Adversary] = None,
    seed: int = 0,
    f: int = 1,
    groups: Optional[int] = None,
    hops: Optional[int] = None,
    initial: Any = "coin",
    max_rounds: Optional[int] = None,
    evaluation_set: Optional[Set[int]] = None,
    churn: Optional[ChurnSchedule] = None,
) -> ZooRun:
    """Execute grouped OM(f) agreement on ``graph`` and summarize the outcome.

    ``groups`` defaults to ``max(1, n // (4·(3f + 1)))`` -- expected group
    sizes comfortably above the ``3f + 1`` OM envelope.  ``hops`` (the
    per-cascade-level flood budget) defaults to 1 on complete graphs and
    ``ceil(log2 n) + 2`` otherwise, an upper bound on the diameter of every
    expander family shipped in :mod:`repro.graphs`.
    """
    if graph.n <= 3 * f:
        raise ValueError(
            f"grouped-bft needs n > 3f (n={graph.n}, f={f})"
        )
    if groups is None:
        groups = max(1, graph.n // (4 * (3 * f + 1)))
    if hops is None:
        complete = all(len(graph.adjacency[u]) == graph.n - 1 for u in range(graph.n))
        hops = 1 if complete else int(math.ceil(math.log2(max(graph.n, 2)))) + 2
    assignment = assign_groups(graph.node_ids, groups)
    decide_round = (f + 2) * hops + 1
    if max_rounds is None:
        max_rounds = decide_round + 2

    def factory(ctx: NodeContext) -> Protocol:
        return GroupedBftProtocol(
            ctx,
            assignment=assignment,
            f=f,
            hops=hops,
            initial=initial,
            seed=seed,
        )

    network = Network(graph=graph, byzantine=frozenset(byzantine))
    engine = SynchronousEngine(
        network,
        factory,
        adversary=adversary,
        seed=seed,
        max_rounds=max_rounds,
        churn=churn,
    )
    result = engine.run()
    outcome = build_outcome(graph, result, evaluation_set=evaluation_set)
    sizes = [len(ids) for ids in assignment.members if ids]
    extra = binary_decision_metrics(outcome)
    extra.update(
        {
            "groups": len(sizes),
            "min_group_size": min(sizes) if sizes else 0,
            "max_group_size": max(sizes) if sizes else 0,
        }
    )
    params: Dict[str, Any] = {
        "f": f,
        "groups": groups,
        "hops": hops,
        "initial": initial,
        "max_rounds": max_rounds,
    }
    return ZooRun(result=result, params=params, outcome=outcome, extra_metrics=extra)
