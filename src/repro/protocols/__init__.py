"""The protocol zoo: consensus families beyond the paper's two algorithms.

The paper's Algorithm 1 (LOCAL counting) and Algorithm 2 (CONGEST counting)
ride the :class:`~repro.simulator.engine.SynchronousEngine` through the
:class:`~repro.simulator.node.Protocol` seam.  This package pressure-tests
that seam with protocol families that have nothing to do with counting:

* :mod:`repro.protocols.benor` -- BenOr-style randomized binary consensus
  (R1/R2 phases, majority thresholds, deterministic per-node coin streams);
* :mod:`repro.protocols.grouped_bft` -- consistent-hash node grouping with
  per-group OM(m)-style Byzantine agreement and cross-group aggregation;
* :mod:`repro.protocols.baselines` -- run wrappers folding the four Section
  1.2 baseline estimators into the same registry interface.

Every family ships a run wrapper returning a :class:`~repro.protocols.common.
ZooRun` whose ``.outcome`` is an ordinary
:class:`~repro.core.estimate.CountingOutcome`, so the generic scenario
metrics extraction, suite reducers, and experiment tables work unchanged;
protocol-specific metrics (agreement reached, decided-value distribution,
phases-to-decide) ride along in ``.extra_metrics``.  Registration into the
``PROTOCOLS`` registry happens in :mod:`repro.scenarios.protocols`.
"""

from repro.protocols.common import ZooRun, build_outcome, binary_decision_metrics
from repro.protocols.grouping import GroupAssignment, assign_groups, ring_hash
from repro.protocols.benor import BenOrProtocol, run_benor, spec_validate_benor
from repro.protocols.grouped_bft import (
    GroupedBftProtocol,
    run_grouped_bft,
    spec_validate_grouped_bft,
)
from repro.protocols.baselines import (
    run_flooding_protocol,
    run_geometric_protocol,
    run_spanning_tree_protocol,
    run_support_estimation_protocol,
)

__all__ = [
    "ZooRun",
    "build_outcome",
    "binary_decision_metrics",
    "GroupAssignment",
    "assign_groups",
    "ring_hash",
    "BenOrProtocol",
    "run_benor",
    "spec_validate_benor",
    "GroupedBftProtocol",
    "run_grouped_bft",
    "spec_validate_grouped_bft",
    "run_flooding_protocol",
    "run_geometric_protocol",
    "run_spanning_tree_protocol",
    "run_support_estimation_protocol",
]
