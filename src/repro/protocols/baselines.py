"""Registry-shaped run wrappers for the four Section 1.2 baseline estimators.

The baseline protocol classes in :mod:`repro.baselines` already implement the
:class:`~repro.simulator.node.Protocol` interface; their historical run
functions summarize into a :class:`~repro.baselines.common.BaselineOutcome`,
which lacks the :class:`~repro.core.estimate.CountingOutcome` API the generic
scenario metrics extraction consumes.  These wrappers run the *same* protocol
classes with the *same* default budgets but summarize into a
:class:`~repro.protocols.common.ZooRun`, making the baselines first-class
citizens of the ``PROTOCOLS`` registry (and of every scenario grid) without
touching the E7 driver or the original entry points.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Optional, Set

from repro.baselines.flooding import FloodingDiameterProtocol
from repro.baselines.geometric import GeometricMaxProtocol
from repro.baselines.spanning_tree import SpanningTreeProtocol
from repro.baselines.support_estimation import SupportEstimationProtocol
from repro.graphs.graph import Graph
from repro.protocols.common import ZooRun, build_outcome
from repro.simulator.byzantine import Adversary
from repro.simulator.churn import ChurnSchedule
from repro.simulator.engine import SynchronousEngine
from repro.simulator.network import Network
from repro.simulator.node import NodeContext, Protocol

__all__ = [
    "run_flooding_protocol",
    "run_geometric_protocol",
    "run_spanning_tree_protocol",
    "run_support_estimation_protocol",
]


def _default_budget(graph: Graph) -> int:
    """The historical per-phase round budget: ``2·ceil(log2 n) + 6``."""
    return 2 * int(math.ceil(math.log2(max(graph.n, 2)))) + 6


def _run(
    graph: Graph,
    factory,
    *,
    byzantine: Iterable[int],
    adversary: Optional[Adversary],
    seed: int,
    max_rounds: int,
    evaluation_set: Optional[Set[int]],
    churn: Optional[ChurnSchedule],
    params: Dict[str, Any],
) -> ZooRun:
    network = Network(graph=graph, byzantine=frozenset(byzantine))
    engine = SynchronousEngine(
        network,
        factory,
        adversary=adversary,
        seed=seed,
        max_rounds=max_rounds,
        churn=churn,
    )
    result = engine.run()
    outcome = build_outcome(graph, result, evaluation_set=evaluation_set)
    return ZooRun(result=result, params=params, outcome=outcome)


def run_flooding_protocol(
    graph: Graph,
    *,
    byzantine: Iterable[int] = (),
    adversary: Optional[Adversary] = None,
    seed: int = 0,
    phase_rounds: Optional[int] = None,
    evaluation_set: Optional[Set[int]] = None,
    churn: Optional[ChurnSchedule] = None,
) -> ZooRun:
    """Flooding-based diameter estimation as a registry protocol."""
    if phase_rounds is None:
        phase_rounds = _default_budget(graph)
    rounds = phase_rounds

    def factory(ctx: NodeContext) -> Protocol:
        return FloodingDiameterProtocol(ctx, rounds, rounds)

    return _run(
        graph,
        factory,
        byzantine=byzantine,
        adversary=adversary,
        seed=seed,
        max_rounds=2 * phase_rounds + 4,
        evaluation_set=evaluation_set,
        churn=churn,
        params={"phase_rounds": phase_rounds},
    )


def run_geometric_protocol(
    graph: Graph,
    *,
    byzantine: Iterable[int] = (),
    adversary: Optional[Adversary] = None,
    seed: int = 0,
    rounds_budget: Optional[int] = None,
    evaluation_set: Optional[Set[int]] = None,
    churn: Optional[ChurnSchedule] = None,
) -> ZooRun:
    """Geometric-distribution maximum propagation as a registry protocol."""
    if rounds_budget is None:
        rounds_budget = _default_budget(graph)
    budget = rounds_budget

    def factory(ctx: NodeContext) -> Protocol:
        return GeometricMaxProtocol(ctx, budget)

    return _run(
        graph,
        factory,
        byzantine=byzantine,
        adversary=adversary,
        seed=seed,
        max_rounds=rounds_budget + 2,
        evaluation_set=evaluation_set,
        churn=churn,
        params={"rounds_budget": rounds_budget},
    )


def run_spanning_tree_protocol(
    graph: Graph,
    *,
    byzantine: Iterable[int] = (),
    adversary: Optional[Adversary] = None,
    seed: int = 0,
    phase_rounds: Optional[int] = None,
    evaluation_set: Optional[Set[int]] = None,
    churn: Optional[ChurnSchedule] = None,
) -> ZooRun:
    """BFS spanning-tree count-and-spread as a registry protocol."""
    if phase_rounds is None:
        phase_rounds = _default_budget(graph)
    rounds = phase_rounds

    def factory(ctx: NodeContext) -> Protocol:
        return SpanningTreeProtocol(ctx, rounds, rounds, rounds)

    return _run(
        graph,
        factory,
        byzantine=byzantine,
        adversary=adversary,
        seed=seed,
        max_rounds=3 * phase_rounds + 4,
        evaluation_set=evaluation_set,
        churn=churn,
        params={"phase_rounds": phase_rounds},
    )


def run_support_estimation_protocol(
    graph: Graph,
    *,
    byzantine: Iterable[int] = (),
    adversary: Optional[Adversary] = None,
    seed: int = 0,
    rounds_budget: Optional[int] = None,
    k: int = 16,
    evaluation_set: Optional[Set[int]] = None,
    churn: Optional[ChurnSchedule] = None,
) -> ZooRun:
    """Exponential-minimum support estimation as a registry protocol."""
    if rounds_budget is None:
        rounds_budget = _default_budget(graph)
    budget = rounds_budget

    def factory(ctx: NodeContext) -> Protocol:
        return SupportEstimationProtocol(ctx, budget, k)

    return _run(
        graph,
        factory,
        byzantine=byzantine,
        adversary=adversary,
        seed=seed,
        max_rounds=rounds_budget + 2,
        evaluation_set=evaluation_set,
        churn=churn,
        params={"rounds_budget": rounds_budget, "k": k},
    )
