"""BenOr-style randomized binary consensus on the synchronous engine.

The classic Ben-Or protocol proceeds in phases of two message exchanges:

* **R1 (report)** -- every node broadcasts its current value; a node that
  sees a strict majority for some value ``w`` among its phase-``p`` reports
  *proposes* ``w``, otherwise it proposes "?".
* **R2 (propose)** -- proposals are exchanged; a node seeing at least
  ``2f + 1`` proposals for ``w`` **decides** ``w``, a node seeing at least
  ``f + 1`` *adopts* ``w``, and a node seeing neither flips its private coin
  for the next phase.

This port adapts the thresholds to the network setting the engine models:
each node only exchanges messages with its graph neighborhood, so the
participant count is the closed neighborhood ``deg(u) + 1`` rather than a
global ``n``.  On a complete graph this is exactly Ben-Or (agreement with
probability 1 for ``n > 2f``); on sparse graphs it degrades into a *local*
consensus whose agreement rate is an experimental observable -- which is the
point of running it on the zoo's shared graph grid.

Determinism: the coin of node ``u`` is its own ``random.Random`` stream
derived via :func:`repro.simulator.rng.coin_stream` from the run's master
seed and the node *identifier* -- independent of scheduling, engine backend,
and process boundaries, so a (seed, graph) pair reproduces bit-identically on
the serial, pool, and distributed backends.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Mapping, Optional, Set

from repro.graphs.graph import Graph
from repro.protocols.common import ZooRun, binary_decision_metrics, build_outcome
from repro.simulator.byzantine import Adversary
from repro.simulator.churn import ChurnSchedule
from repro.simulator.engine import SynchronousEngine
from repro.simulator.messages import Message
from repro.simulator.network import Network
from repro.simulator.node import NodeContext, Outbox, Protocol, broadcast
from repro.simulator.rng import coin_stream

__all__ = ["BenOrProtocol", "run_benor", "spec_validate_benor"]

_R1 = "R1"
_R2 = "R2"
#: Wire encoding of the "no majority seen" proposal.
_ABSTAIN = "?"


class BenOrProtocol(Protocol):
    """One node of the phased randomized binary consensus."""

    def __init__(
        self,
        ctx: NodeContext,
        *,
        f: int,
        initial: Any,
        max_phases: int,
        seed: int,
    ) -> None:
        self.f = f
        self.max_phases = max_phases
        self._coin = coin_stream(seed, "benor-coin", ctx.node_id)
        if initial == "coin":
            self.value = self._coin.randrange(2)
        elif initial == "id-parity":
            self.value = ctx.node_id & 1
        else:
            self.value = int(initial)
        self._proposal: Optional[int] = None
        self._decided = False
        self._estimate: Optional[float] = None
        self._decision_round: Optional[int] = None
        self.decided_phase: Optional[int] = None

    # ------------------------------------------------------------------ #
    @property
    def decided(self) -> bool:
        return self._decided

    @property
    def estimate(self) -> Optional[float]:
        return self._estimate

    @property
    def decision_round(self) -> Optional[int]:
        return self._decision_round

    @property
    def halted(self) -> bool:
        # A decided node keeps echoing its value so undecided neighbors can
        # still reach their thresholds; the run wrapper's stop condition ends
        # the run once every honest node has decided.
        return False

    # ------------------------------------------------------------------ #
    def _message(self, tag: str, phase: int, value: Any) -> Message:
        return Message.make("benor", payload=(tag, phase, value))

    def on_start(self, ctx: NodeContext) -> Outbox:
        return broadcast(ctx.neighbors, self._message(_R1, 1, self.value))

    def on_round(self, ctx: NodeContext, inbox: List[Message]) -> Outbox:
        phase = (ctx.round + 1) // 2
        if phase > self.max_phases:
            return {}
        if ctx.round % 2 == 1:
            return self._process_reports(ctx, inbox, phase)
        return self._process_proposals(ctx, inbox, phase)

    def _tally(
        self, inbox: List[Message], tag: str, phase: int
    ) -> Dict[int, int]:
        """Count valid phase-``phase`` values of kind ``tag`` in the inbox."""
        counts = {0: 0, 1: 0}
        for message in inbox:
            if message.kind != "benor":
                continue
            payload = message.payload
            if (
                isinstance(payload, tuple)
                and len(payload) == 3
                and payload[0] == tag
                and payload[1] == phase
                and payload[2] in (0, 1)
            ):
                counts[payload[2]] += 1
        return counts

    def _process_reports(
        self, ctx: NodeContext, inbox: List[Message], phase: int
    ) -> Outbox:
        counts = self._tally(inbox, _R1, phase)
        counts[self.value] += 1  # own report
        participants = ctx.degree + 1
        if counts[1] * 2 > participants:
            self._proposal = 1
        elif counts[0] * 2 > participants:
            self._proposal = 0
        else:
            self._proposal = None
        wire = self._proposal if self._proposal is not None else _ABSTAIN
        return broadcast(ctx.neighbors, self._message(_R2, phase, wire))

    def _process_proposals(
        self, ctx: NodeContext, inbox: List[Message], phase: int
    ) -> Outbox:
        counts = self._tally(inbox, _R2, phase)
        if self._proposal is not None:
            counts[self._proposal] += 1  # own proposal
        best = 1 if counts[1] >= counts[0] else 0
        if not self._decided:
            if counts[best] >= 2 * self.f + 1:
                self.value = best
                self._decided = True
                self._estimate = float(best)
                self._decision_round = ctx.round
                self.decided_phase = phase
            elif counts[best] >= self.f + 1:
                self.value = best
            else:
                self.value = self._coin.randrange(2)
        if phase >= self.max_phases:
            return {}
        return broadcast(ctx.neighbors, self._message(_R1, phase + 1, self.value))


def spec_validate_benor(params: Mapping[str, Any], n: Optional[int]) -> None:
    """Compile-time envelope check of the ``benor`` registry entry.

    Raises ``ValueError`` whose message starts with the offending parameter
    name; :meth:`repro.scenarios.spec.Scenario.validate` prefixes the spec
    path.
    """
    f = params.get("f", 1)
    if not isinstance(f, int) or f < 0:
        raise ValueError(f"f: must be a non-negative integer, got {f!r}")
    if n is not None and n <= 2 * f:
        raise ValueError(
            f"f: BenOr needs n > 2f to terminate (n={n}, f={f})"
        )
    max_phases = params.get("max_phases")
    if max_phases is not None and (not isinstance(max_phases, int) or max_phases < 1):
        raise ValueError(f"max_phases: must be a positive integer, got {max_phases!r}")
    initial = params.get("initial", "coin")
    if initial not in ("coin", "id-parity", 0, 1):
        raise ValueError(
            f"initial: must be 'coin', 'id-parity', 0, or 1, got {initial!r}"
        )


def run_benor(
    graph: Graph,
    *,
    byzantine: Iterable[int] = (),
    adversary: Optional[Adversary] = None,
    seed: int = 0,
    f: int = 1,
    initial: Any = "coin",
    max_phases: Optional[int] = None,
    max_rounds: Optional[int] = None,
    evaluation_set: Optional[Set[int]] = None,
    churn: Optional[ChurnSchedule] = None,
) -> ZooRun:
    """Execute BenOr-style consensus on ``graph`` and summarize the outcome.

    ``max_phases`` defaults to ``6·ceil(log2 n) + 16`` -- far beyond the
    expected constant number of phases on benign runs, so undecided nodes at
    the budget indicate genuine (adversarial or topological) divergence.
    """
    network = Network(graph=graph, byzantine=frozenset(byzantine))
    if max_phases is None:
        max_phases = 6 * int(math.ceil(math.log2(max(graph.n, 2)))) + 16
    if max_rounds is None:
        max_rounds = 2 * max_phases + 2

    effective_phases = max_phases

    def factory(ctx: NodeContext) -> Protocol:
        return BenOrProtocol(
            ctx, f=f, initial=initial, max_phases=effective_phases, seed=seed
        )

    engine = SynchronousEngine(
        network,
        factory,
        adversary=adversary,
        seed=seed,
        max_rounds=max_rounds,
        stop_condition=lambda protocols, _round: all(
            p.decided for p in protocols.values()
        ),
        churn=churn,
    )
    result = engine.run()
    outcome = build_outcome(graph, result, evaluation_set=evaluation_set)
    decided_phases = [
        p.decided_phase
        for p in result.protocols.values()
        if isinstance(p, BenOrProtocol) and p.decided_phase is not None
    ]
    extra = binary_decision_metrics(outcome)
    extra["phases_to_decide"] = max(decided_phases) if decided_phases else None
    params: Dict[str, Any] = {
        "f": f,
        "initial": initial,
        "max_phases": max_phases,
        "max_rounds": max_rounds,
    }
    return ZooRun(result=result, params=params, outcome=outcome, extra_metrics=extra)
