"""Shared plumbing of the protocol zoo.

Every zoo family funnels its engine run through :class:`ZooRun`: the raw
:class:`~repro.simulator.engine.RunResult`, the effective parameters, a
standard :class:`~repro.core.estimate.CountingOutcome` (so the generic
``scenario.run`` metrics extraction works on zoo protocols exactly as on the
paper's algorithms), and an ``extra_metrics`` dict of protocol-specific
values that :func:`repro.scenarios.execute._collect_metrics` merges into the
uniform metrics dict -- which is how agreement rates and decided-value
distributions flow through the existing suite reducers with zero new
aggregation code.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set

from repro.core.estimate import CountingOutcome, DecisionRecord
from repro.graphs.graph import Graph
from repro.simulator.engine import RunResult

__all__ = ["ZooRun", "build_outcome", "binary_decision_metrics"]


@dataclass
class ZooRun:
    """Result wrapper of one protocol-zoo execution.

    ``outcome`` is a plain :class:`CountingOutcome` -- for binary-consensus
    families the "estimate" is the decided value (0.0 or 1.0) rather than an
    approximation of ``log n``, so the band metrics are not meaningful for
    them, but decision fractions, rounds, and communication volume are
    computed by exactly the same code as for the paper's protocols.
    """

    result: RunResult
    params: Dict[str, Any]
    outcome: CountingOutcome
    #: Protocol-specific metrics merged into the uniform metrics dict.
    extra_metrics: Dict[str, Any] = field(default_factory=dict)


def build_outcome(
    graph: Graph,
    result: RunResult,
    *,
    evaluation_set: Optional[Set[int]] = None,
) -> CountingOutcome:
    """Summarize an engine run into a :class:`CountingOutcome`.

    Identical to the paper protocols' run wrappers: one
    :class:`DecisionRecord` per honest node, plus the run's round and
    communication totals.
    """
    records: Dict[int, DecisionRecord] = {}
    for u, protocol in result.protocols.items():
        records[u] = DecisionRecord(
            node=u,
            decided=protocol.decided,
            estimate=protocol.estimate,
            decision_round=protocol.decision_round,
        )
    return CountingOutcome(
        n=graph.n,
        records=records,
        evaluation_set=set(evaluation_set) if evaluation_set is not None else set(),
        rounds_executed=result.rounds_executed,
        total_messages=result.metrics.total_messages,
        total_bits=result.metrics.total_bits,
        small_message_fraction=result.metrics.small_message_fraction(
            graph.n, list(result.protocols.keys())
        ),
    )


def binary_decision_metrics(outcome: CountingOutcome) -> Dict[str, Any]:
    """Consensus-flavoured metrics over a run's decided values.

    ``agreement_reached``
        1.0 when every decided honest node decided the *same* value (and at
        least one decided), else 0.0 -- the agreement property of consensus.
    ``ones_fraction``
        Fraction of decided nodes whose value is 1 (the decided-value
        distribution of a binary consensus; ``None`` when nothing decided).
    ``modal_agreement``
        Fraction of decided nodes holding the modal decided value -- a graded
        view of how close the run came to agreement on sparse graphs.
    """
    values = [
        record.estimate
        for record in outcome.records.values()
        if record.decided and record.estimate is not None
    ]
    if not values:
        return {
            "agreement_reached": 0.0,
            "ones_fraction": None,
            "modal_agreement": None,
        }
    modal = statistics.mode(values) if len(set(values)) > 1 else values[0]
    modal_count = sum(1 for v in values if v == modal)
    return {
        "agreement_reached": 1.0 if len(set(values)) == 1 else 0.0,
        "ones_fraction": sum(1 for v in values if v == 1.0) / len(values),
        "modal_agreement": modal_count / len(values),
    }
