"""Cross-protocol comparison tables.

The protocol zoo runs several consensus families over one shared
graph x adversary x placement grid (``examples/scenario_zoo_compare.json``).
The suite's own table keeps one row per (protocol, workload) cell;
:func:`protocol_comparison` folds those rows into one summary row per
protocol -- averaging the numeric metric columns -- so the fault-tolerance
envelopes of the families can be eyeballed side by side.
"""

from __future__ import annotations

import statistics
from typing import Any, Dict, List, Mapping, Sequence

from repro.analysis.tables import render_table

__all__ = ["protocol_comparison", "render_protocol_comparison"]


def protocol_comparison(
    rows: Sequence[Mapping[str, Any]],
    *,
    key: str = "protocol",
    metrics: Sequence[str] = (
        "decided_fraction",
        "median_estimate",
        "rounds",
        "messages",
    ),
) -> List[Dict[str, Any]]:
    """One summary row per distinct ``key`` value, averaging ``metrics``.

    ``rows`` are table rows (e.g. ``ExperimentResult.rows`` of a zoo suite
    run) whose ``key`` column names the protocol.  Non-numeric or missing
    metric values are skipped; a metric with no usable values renders as
    ``None``.  Rows lacking the ``key`` column entirely are ignored, so the
    helper can be pointed at heterogeneous result sets.
    """
    groups: Dict[Any, List[Mapping[str, Any]]] = {}
    order: List[Any] = []
    for row in rows:
        if key not in row:
            continue
        value = row[key]
        if value not in groups:
            groups[value] = []
            order.append(value)
        groups[value].append(row)
    summary: List[Dict[str, Any]] = []
    for value in order:
        cells: Dict[str, Any] = {key: value, "cells": len(groups[value])}
        for metric in metrics:
            numbers = [
                row[metric]
                for row in groups[value]
                if isinstance(row.get(metric), (int, float))
                and not isinstance(row.get(metric), bool)
            ]
            cells[metric] = statistics.fmean(numbers) if numbers else None
        summary.append(cells)
    return summary


def render_protocol_comparison(
    rows: Sequence[Mapping[str, Any]],
    *,
    key: str = "protocol",
    metrics: Sequence[str] = (
        "decided_fraction",
        "median_estimate",
        "rounds",
        "messages",
    ),
    title: str = "cross-protocol comparison",
) -> str:
    """Render :func:`protocol_comparison` as a fixed-width table."""
    return render_table(
        protocol_comparison(rows, key=key, metrics=metrics), title=title
    )
