"""Outcome analysis: theorem-shaped acceptance checks, complexity fits, tables."""

from repro.analysis.accuracy import (
    theorem1_check,
    theorem2_check,
    corollary1_check,
    AccuracyReport,
)
from repro.analysis.complexity import (
    fit_log_model,
    fit_blog2_model,
    FitResult,
)
from repro.analysis.tables import render_table, render_series
from repro.analysis.comparison import protocol_comparison, render_protocol_comparison

__all__ = [
    "protocol_comparison",
    "render_protocol_comparison",
    "theorem1_check",
    "theorem2_check",
    "corollary1_check",
    "AccuracyReport",
    "fit_log_model",
    "fit_blog2_model",
    "FitResult",
    "render_table",
    "render_series",
]
