"""Round-complexity model fits for experiment E12.

Theorem 1 predicts rounds ``Θ(log n)`` for Algorithm 1 and Theorem 2 predicts
rounds ``O(B(n)·log² n)`` for Algorithm 2; these helpers fit the measured
round counts against those models with ordinary least squares and report the
goodness of fit, so the *shape* of the complexity claims can be checked
without matching absolute constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = ["FitResult", "fit_log_model", "fit_blog2_model"]


@dataclass
class FitResult:
    """Least-squares fit ``y ≈ a·f(x) + b``."""

    model: str
    coefficient: float
    intercept: float
    r_squared: float
    predictions: List[float]

    def summary(self) -> Dict[str, object]:
        """Row for the experiment tables."""
        return {
            "model": self.model,
            "coefficient": round(self.coefficient, 4),
            "intercept": round(self.intercept, 4),
            "r_squared": round(self.r_squared, 4),
        }


def _least_squares(features: Sequence[float], values: Sequence[float]) -> Tuple[float, float, float, List[float]]:
    """Fit ``values ≈ a·features + b``; returns (a, b, r², predictions)."""
    import numpy as np

    x = np.asarray(features, dtype=float)
    y = np.asarray(values, dtype=float)
    if len(x) != len(y) or len(x) == 0:
        raise ValueError("features and values must be non-empty and of equal length")
    if len(x) == 1:
        prediction = [float(y[0])]
        return 0.0, float(y[0]), 1.0, prediction
    design = np.vstack([x, np.ones_like(x)]).T
    (a, b), *_ = np.linalg.lstsq(design, y, rcond=None)
    predictions = design @ np.array([a, b])
    residual = float(np.sum((y - predictions) ** 2))
    total = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return float(a), float(b), r_squared, [float(p) for p in predictions]


def fit_log_model(sizes: Sequence[int], rounds: Sequence[float]) -> FitResult:
    """Fit ``rounds ≈ a·ln n + b`` (the Theorem 1 shape)."""
    features = [math.log(max(n, 2)) for n in sizes]
    a, b, r2, predictions = _least_squares(features, rounds)
    return FitResult(
        model="rounds = a*ln(n) + b",
        coefficient=a,
        intercept=b,
        r_squared=r2,
        predictions=predictions,
    )


def fit_blog2_model(
    sizes: Sequence[int], byzantine_counts: Sequence[int], rounds: Sequence[float]
) -> FitResult:
    """Fit ``rounds ≈ a·(B(n)+1)·ln²n + b`` (the Theorem 2 shape)."""
    if len(sizes) != len(byzantine_counts):
        raise ValueError("sizes and byzantine_counts must have equal length")
    features = [
        (b + 1) * math.log(max(n, 2)) ** 2 for n, b in zip(sizes, byzantine_counts)
    ]
    a, b, r2, predictions = _least_squares(features, rounds)
    return FitResult(
        model="rounds = a*(B+1)*ln(n)^2 + b",
        coefficient=a,
        intercept=b,
        r_squared=r2,
        predictions=predictions,
    )
