"""Theorem-shaped acceptance checks.

These functions turn a :class:`~repro.core.estimate.CountingOutcome` into a
pass/fail verdict phrased the way the paper states its guarantees, with the
constants made explicit.  The default bands are documented in EXPERIMENTS.md:
at simulable scales the decided values track ``log_d n + O(1)`` (between the
paper's lower bound ρ and its upper bound ``⌈ln n⌉ + 1``), so the default
acceptance band is ``[0.35·ln n, 1.6·ln n]`` -- a fixed constant-factor band
independent of ``n``, which is exactly what Definition 2 requires.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.estimate import CountingOutcome

__all__ = ["AccuracyReport", "theorem1_check", "theorem2_check", "corollary1_check"]

#: Default constant-factor acceptance band (lower, upper) relative to ln n.
DEFAULT_BAND = (0.35, 1.6)


@dataclass
class AccuracyReport:
    """Verdict of one theorem check."""

    name: str
    passed: bool
    decided_fraction: float
    fraction_in_band: float
    min_fraction_required: float
    median_estimate: Optional[float]
    log_n: float
    max_decision_round: Optional[int]
    round_budget: Optional[int]
    details: Dict[str, object]

    def summary(self) -> Dict[str, object]:
        """Flat dictionary used by the experiment tables."""
        return {
            "check": self.name,
            "passed": self.passed,
            "decided_fraction": round(self.decided_fraction, 4),
            "fraction_in_band": round(self.fraction_in_band, 4),
            "required_fraction": self.min_fraction_required,
            "median_estimate": self.median_estimate,
            "log_n": round(self.log_n, 3),
            "max_decision_round": self.max_decision_round,
            "round_budget": self.round_budget,
            **self.details,
        }


def _base_report(
    name: str,
    outcome: CountingOutcome,
    *,
    band: tuple,
    min_fraction: float,
    round_budget: Optional[int],
    extra: Optional[Dict[str, object]] = None,
) -> AccuracyReport:
    decided = outcome.decided_fraction()
    in_band = outcome.fraction_within_band(band[0], band[1])
    max_round = outcome.max_decision_round()
    rounds_ok = True
    if round_budget is not None and max_round is not None:
        rounds_ok = max_round <= round_budget
    passed = decided >= 1.0 - 1e-9 and in_band >= min_fraction and rounds_ok
    return AccuracyReport(
        name=name,
        passed=passed,
        decided_fraction=decided,
        fraction_in_band=in_band,
        min_fraction_required=min_fraction,
        median_estimate=outcome.median_estimate(),
        log_n=outcome.log_n,
        max_decision_round=max_round,
        round_budget=round_budget,
        details=dict(extra or {}),
    )


def theorem1_check(
    outcome: CountingOutcome,
    *,
    band: tuple = DEFAULT_BAND,
    min_fraction: float = 0.9,
    round_budget_factor: float = 4.0,
) -> AccuracyReport:
    """Theorem 1: every evaluated node decides, most land in the band, in O(log n) rounds.

    The round budget defaults to ``round_budget_factor · ln n`` which is well
    above ``diam(G) + 1`` for the expander workloads.
    """
    budget = int(math.ceil(round_budget_factor * outcome.log_n)) + 2
    return _base_report(
        "theorem1",
        outcome,
        band=band,
        min_fraction=min_fraction,
        round_budget=budget,
        extra={"round_budget_factor": round_budget_factor},
    )


def theorem2_check(
    outcome: CountingOutcome,
    *,
    band: tuple = DEFAULT_BAND,
    beta: float = 0.1,
    num_byzantine: int = 0,
    round_budget: Optional[int] = None,
    small_message_min_fraction: float = 0.9,
) -> AccuracyReport:
    """Theorem 2: ``(1-β)n`` nodes land in the band, most send only small messages.

    ``round_budget`` should be the ``O(B(n)·log² n)`` budget the caller used
    (e.g. :meth:`CongestParameters.round_budget`); if ``None`` the round check
    is skipped.
    """
    report = _base_report(
        "theorem2",
        outcome,
        band=band,
        min_fraction=1.0 - beta,
        round_budget=round_budget,
        extra={
            "beta": beta,
            "num_byzantine": num_byzantine,
            "small_message_fraction": outcome.small_message_fraction,
        },
    )
    if (
        outcome.small_message_fraction is not None
        and outcome.small_message_fraction < small_message_min_fraction
    ):
        report.passed = False
        report.details["small_message_check_failed"] = True
    return report


def corollary1_check(
    outcome: CountingOutcome,
    *,
    upper_slack: float = 1.0,
    min_fraction: float = 0.9,
) -> AccuracyReport:
    """Corollary 1 (benign case): estimates are bounded above by ``⌈ln n⌉ + slack``.

    At asymptotic scale the decided value is exactly ``⌈ln n⌉``; at simulable
    scale the decisions land between ``log_d n`` and ``⌈ln n⌉`` (see
    EXPERIMENTS.md), so the check enforces the upper bound of Remark 2 plus
    the constant-factor lower bound of the default band.
    """
    upper_abs = math.ceil(outcome.log_n) + upper_slack
    low = DEFAULT_BAND[0] * outcome.log_n
    records = [outcome.records[u] for u in sorted(outcome.evaluation_set)]
    if records:
        in_band = sum(
            1
            for r in records
            if r.decided and r.estimate is not None and low <= r.estimate <= upper_abs
        ) / len(records)
    else:
        in_band = 0.0
    decided = outcome.decided_fraction()
    passed = decided >= 1.0 - 1e-9 and in_band >= min_fraction
    return AccuracyReport(
        name="corollary1",
        passed=passed,
        decided_fraction=decided,
        fraction_in_band=in_band,
        min_fraction_required=min_fraction,
        median_estimate=outcome.median_estimate(),
        log_n=outcome.log_n,
        max_decision_round=outcome.max_decision_round(),
        round_budget=None,
        details={"absolute_upper_bound": upper_abs},
    )
