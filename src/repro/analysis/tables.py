"""Plain-text table rendering for the experiment harness and benchmarks.

Every experiment prints one or more tables; these helpers keep the format
uniform (fixed-width columns, ``None`` rendered as ``-``, floats rounded)
so the EXPERIMENTS.md extracts are easy to regenerate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["render_table", "render_series"]


def _format_cell(value: object, *, float_digits: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        return f"{value:.{float_digits}f}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    float_digits: int = 3,
) -> str:
    """Render a list of dict rows as a fixed-width ASCII table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    formatted: List[List[str]] = [
        [_format_cell(row.get(col), float_digits=float_digits) for col in columns]
        for row in rows
    ]
    widths = [
        max(len(str(col)), max(len(r[i]) for r in formatted))
        for i, col in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    separator = "-+-".join("-" * widths[i] for i in range(len(columns)))
    lines.append(header)
    lines.append(separator)
    for row in formatted:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(
    xs: Sequence[object],
    ys: Sequence[object],
    *,
    x_label: str = "x",
    y_label: str = "y",
    title: Optional[str] = None,
    float_digits: int = 3,
) -> str:
    """Render paired series (the textual analogue of a figure)."""
    rows = [{x_label: x, y_label: y} for x, y in zip(xs, ys)]
    return render_table(rows, columns=[x_label, y_label], title=title, float_digits=float_digits)
