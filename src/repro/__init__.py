"""Byzantine-Resilient Counting in Networks -- reproduction library.

A full reimplementation of Chatterjee, Pandurangan & Robinson, *Byzantine-
Resilient Counting in Networks* (ICDCS 2022, arXiv:2204.11951): the
deterministic LOCAL-model counting algorithm (Theorem 1), the randomized
small-message CONGEST algorithm (Theorem 2), the structural machinery they
rely on (expander subgraph lemma, locally-tree-like property of ``H(n, d)``
random regular graphs), the impossibility construction (Theorem 3), the
non-Byzantine-resilient baselines the paper motivates against, and a
synchronous full-information-adversary simulator to run them all on.

Quickstart
----------

>>> from repro import hnd_random_regular_graph, run_congest_counting
>>> graph = hnd_random_regular_graph(256, 8, seed=1)
>>> run = run_congest_counting(graph, seed=1)
>>> run.outcome.decided_fraction()
1.0

See ``examples/`` for end-to-end scenarios and ``benchmarks/`` for the
experiment harness that regenerates every quantitative claim of the paper.
"""

from repro.core import (
    CongestCountingProtocol,
    CongestCountingRun,
    CongestParameters,
    CountingOutcome,
    DecisionRecord,
    LocalCountingProtocol,
    LocalCountingRun,
    LocalParameters,
    PhaseSchedule,
    byzantine_budget,
    run_congest_counting,
    run_local_counting,
)
from repro.graphs import (
    Graph,
    barbell_graph,
    chained_copies_graph,
    configuration_model_graph,
    cycle_graph,
    good_set,
    good_treelike_set,
    hnd_random_regular_graph,
    hypercube_graph,
    margulis_torus_graph,
    small_world_graph,
    treelike_nodes,
    vertex_expansion_sampled,
)
from repro.simulator import (
    Adversary,
    Message,
    Network,
    Protocol,
    RunResult,
    SilentAdversary,
    SynchronousEngine,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "LocalParameters",
    "CongestParameters",
    "byzantine_budget",
    "DecisionRecord",
    "CountingOutcome",
    "LocalCountingProtocol",
    "LocalCountingRun",
    "run_local_counting",
    "CongestCountingProtocol",
    "CongestCountingRun",
    "PhaseSchedule",
    "run_congest_counting",
    # graphs
    "Graph",
    "hnd_random_regular_graph",
    "configuration_model_graph",
    "hypercube_graph",
    "margulis_torus_graph",
    "cycle_graph",
    "barbell_graph",
    "chained_copies_graph",
    "small_world_graph",
    "good_set",
    "good_treelike_set",
    "treelike_nodes",
    "vertex_expansion_sampled",
    # simulator
    "Message",
    "Network",
    "Protocol",
    "RunResult",
    "SynchronousEngine",
    "Adversary",
    "SilentAdversary",
]
