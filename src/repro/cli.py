"""Command-line entry point: ``repro-byzantine-counting``.

Sub-commands:

``run``
    Execute one counting algorithm on a generated topology and print the
    outcome summary, e.g.::

        repro-byzantine-counting run --algorithm congest --n 256 --byzantine 3 \
            --adversary beacon-flood --seed 1

``experiment``
    Run one of the E1-E12 experiment drivers with its default (small)
    configuration and print the regenerated table, e.g.::

        repro-byzantine-counting experiment e3

``sweep``
    Run one experiment (or ``all``) through the parallel sweep runner, fanning
    the driver's config list over an execution backend -- serial, a local
    worker pool, or the distributed broker/worker cluster -- and optionally
    caching each run as a JSON artifact (see RUNNER.md), e.g.::

        repro-byzantine-counting sweep e12 --workers 8 --artifact-dir .sweeps
        repro-byzantine-counting sweep e12 --backend distributed --listen :9876

``worker``
    Worker daemon for the distributed backend: connect to a broker started
    with ``sweep/scenario run --backend distributed --listen HOST:PORT``,
    lease tasks, stream results back (see RUNNER.md, "Distributed
    backend")::

        repro-byzantine-counting worker --connect 10.0.0.5:9876 --workers 8

``scenario``
    The declarative scenario API (see SCENARIOS.md).  ``scenario run`` executes
    a JSON spec -- either a single scenario or a suite with a table layout --
    through the sweep runner; ``scenario list`` enumerates the registered
    graph families, adversary behaviours, placements, and protocols::

        repro-byzantine-counting scenario run examples/scenario_e2_small.json
        repro-byzantine-counting scenario list

``bench``
    Run the pinned performance scenarios (E2/E3/E12-style workloads at
    several n), write the measurements to ``BENCH_<date>.json``, and
    optionally diff against the previous trajectory file, failing on a >10%
    wall-clock regression (see RUNNER.md, "Performance")::

        repro-byzantine-counting bench --compare

``hub``
    The standing multi-tenant sweep service (see RUNNER.md, "Sweep Hub").
    ``hub serve`` runs the daemon (shared worker fleet, concurrent
    submissions, fair-share dispatch, optional ``--http`` dashboard);
    ``hub status`` queries a running hub; ``hub dash`` serves the
    dashboard standalone over an artifact root::

        repro-byzantine-counting hub serve --listen :9876 --artifact-dir .sweeps
        repro-byzantine-counting scenario run spec.json --connect host:9876 \
            --artifact-dir .sweeps
        repro-byzantine-counting hub status --connect host:9876

``sweeps``
    List the sweep journals under an artifact root with their status
    (done/total, resumable, error) -- the building block ``hub status``
    and the dashboard reuse::

        repro-byzantine-counting sweeps --artifact-dir .sweeps

``runs``
    Query the results database derived from artifacts + journals:
    ``runs list`` (history), ``runs show REF`` (one run's params, result,
    meta), ``runs diff REF_A REF_B`` (field-by-field comparison)::

        repro-byzantine-counting runs list --artifact-dir .sweeps
        repro-byzantine-counting runs diff ab12 cd34 --artifact-dir .sweeps
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.tables import render_table
from repro.scenarios import (
    ADVERSARIES,
    GRAPHS,
    PLACEMENTS,
    PROTOCOLS,
    ComponentSpec,
    Scenario,
    ScenarioSuite,
    all_registries,
    materialize,
)

__all__ = ["main", "build_parser"]


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return parsed


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared sweep-execution flags (``sweep`` and ``scenario run``)."""
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="worker processes (1 = serial); for --backend distributed this "
        "is the default number of loopback workers to spawn",
    )
    parser.add_argument(
        "--artifact-dir",
        default=None,
        help="JSON artifact cache directory (makes re-runs resumable)",
    )
    parser.add_argument(
        "--force", action="store_true", help="recompute even when artifacts exist"
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted sweep: report what the sweep journal in "
        "--artifact-dir recorded and re-execute only the configs whose "
        "artifacts are missing (requires --artifact-dir)",
    )
    parser.add_argument(
        "--backend",
        choices=("serial", "pool", "distributed"),
        default=None,
        help="execution backend (default: serial for --workers 1, else pool)",
    )
    parser.add_argument(
        "--listen",
        metavar="HOST:PORT",
        default=None,
        help="distributed: bind the broker here and wait for external "
        "workers (started with the 'worker' subcommand) instead of "
        "spawning loopback ones",
    )
    parser.add_argument(
        "--spawn-workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="distributed: spawn N loopback worker processes (default: "
        "--workers when no --listen is given)",
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="distributed: broker lease TTL (default 30; lower it to detect "
        "dead workers faster in chaos/demo runs)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="distributed: re-dispatches per task before the sweep fails "
        "(default 2; raise it under fault injection)",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help="distributed: deterministic fault-injection plan -- inline JSON "
        "(starts with '{') or a path to a JSON file (see RUNNER.md, "
        "'Fault injection & resume')",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="always show the sweep-level k/N progress line (default: only "
        "parallel backends on a terminal)",
    )
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help="submit the sweep to a standing hub ('hub serve') instead of "
        "running a private broker; implies --backend distributed",
    )
    parser.add_argument(
        "--priority",
        type=int,
        default=0,
        help="hub submission priority (with --connect): higher preempts "
        "other sweeps at the next lease grant",
    )
    parser.add_argument(
        "--reconnect-attempts",
        type=int,
        default=None,
        metavar="N",
        help="with --connect: consecutive failed hub reconnects tolerated "
        "before giving up (default 8; 0 fails fast)",
    )


def _parse_fault_plan(spec: str):
    """``--fault-plan``: inline JSON object or a path to a JSON file."""
    from repro.runner import FaultPlan

    if spec.lstrip().startswith("{"):
        document = json.loads(spec)
    else:
        with open(spec, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    return FaultPlan.from_dict(document)


def _runner_from_args(args: argparse.Namespace):
    """Build the SweepRunner the shared execution flags describe."""
    from repro.runner import DistributedBackend, SweepRunner
    from repro.runner.distributed import parse_address

    distributed_only = {
        "--listen": args.listen is not None,
        "--spawn-workers": args.spawn_workers is not None,
        "--lease-ttl": args.lease_ttl is not None,
        "--max-retries": args.max_retries is not None,
        "--fault-plan": args.fault_plan is not None,
    }
    if args.connect is not None:
        # A hub submission: the hub owns the broker-side knobs.
        if args.backend not in (None, "distributed"):
            raise SystemExit(f"--connect conflicts with --backend {args.backend}")
        conflicting = [flag for flag, on in distributed_only.items() if on]
        if conflicting:
            raise SystemExit(
                f"{'/'.join(conflicting)} conflict(s) with --connect: a "
                "standing hub owns its broker configuration ('hub serve')"
            )
    elif args.backend != "distributed" and any(distributed_only.values()):
        used = "/".join(flag for flag, on in distributed_only.items() if on)
        raise SystemExit(f"{used} require(s) --backend distributed")
    if args.priority and args.connect is None:
        raise SystemExit("--priority requires --connect (hub submission)")
    if args.reconnect_attempts is not None and args.connect is None:
        raise SystemExit("--reconnect-attempts requires --connect (hub submission)")
    if args.resume and args.artifact_dir is None:
        raise SystemExit("--resume requires --artifact-dir (nothing to resume from)")
    if args.resume and args.force:
        raise SystemExit("--resume and --force are contradictory")
    backend = args.backend
    if args.connect is not None:
        connect_extra = {}
        if args.reconnect_attempts is not None:
            connect_extra["reconnect_attempts"] = args.reconnect_attempts
        backend = DistributedBackend(
            connect=parse_address(args.connect),
            priority=args.priority,
            **connect_extra,
        )
    elif backend == "distributed":
        if args.listen is not None:
            listen = parse_address(args.listen)
            spawn = args.spawn_workers or 0
        else:
            listen = ("127.0.0.1", 0)
            spawn = args.spawn_workers if args.spawn_workers is not None else args.workers
        extra = {}
        if args.lease_ttl is not None:
            extra["lease_ttl_s"] = args.lease_ttl
        if args.max_retries is not None:
            extra["max_retries"] = args.max_retries
        if args.fault_plan is not None:
            extra["fault_plan"] = _parse_fault_plan(args.fault_plan)
        backend = DistributedBackend(listen=listen, spawn_workers=spawn, **extra)
    return SweepRunner(
        workers=args.workers,
        artifact_dir=args.artifact_dir,
        force=args.force,
        progress=True if args.progress else None,
        backend=backend,
        resume=args.resume,
    )


def _registry_epilog() -> str:
    """One line per registry for ``--help`` (the composable scenario axes)."""
    lines = ["registered scenario components (see SCENARIOS.md):"]
    for axis, registry in all_registries().items():
        lines.append(f"  {axis + 's':<12} {', '.join(registry.names())}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-byzantine-counting",
        description="Byzantine-resilient counting in networks (ICDCS 2022) reproduction",
        epilog=_registry_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one counting algorithm")
    run_parser.add_argument("--algorithm", choices=PROTOCOLS.names(), default="congest")
    run_parser.add_argument("--topology", choices=GRAPHS.names(), default="hnd")
    run_parser.add_argument("--n", type=int, default=256, help="number of nodes")
    run_parser.add_argument("--degree", type=int, default=8, help="degree d of H(n, d)")
    run_parser.add_argument("--byzantine", type=int, default=0, help="number of Byzantine nodes")
    run_parser.add_argument("--placement", choices=PLACEMENTS.names(), default="random")
    run_parser.add_argument("--adversary", choices=ADVERSARIES.names(), default="silent")
    run_parser.add_argument("--gamma", type=float, default=0.5)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--max-rounds", type=int, default=None)

    exp_parser = sub.add_parser("experiment", help="run an experiment driver (E1-E12)")
    exp_parser.add_argument("name", help="experiment id, e.g. e1 or e7")

    sweep_parser = sub.add_parser(
        "sweep", help="run an experiment sweep through the parallel runner"
    )
    sweep_parser.add_argument("name", help="experiment id (e1-e12) or 'all'")
    _add_runner_arguments(sweep_parser)

    worker_parser = sub.add_parser(
        "worker", help="worker daemon for the distributed sweep backend"
    )
    worker_parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="broker address (the --listen of a distributed sweep)",
    )
    worker_parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="local worker processes for leased tasks",
    )
    worker_parser.add_argument(
        "--exit-when-drained",
        action="store_true",
        help="exit after the first drained sweep instead of polling for the "
        "next one (loopback/demo mode)",
    )
    worker_parser.add_argument(
        "--worker-id",
        default=None,
        help="identity reported to the broker (default: host:pid)",
    )
    worker_parser.add_argument(
        "--giveup-attempts",
        type=_positive_int,
        default=8,
        metavar="N",
        help="with --exit-when-drained: give up after N consecutive failed "
        "connection attempts (counted on the reconnect backoff)",
    )
    worker_parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help="deterministic fault-injection plan (inline JSON or file path); "
        "normally forwarded automatically by a chaos sweep's backend",
    )
    worker_parser.add_argument(
        "--fault-salt",
        default="",
        metavar="SALT",
        help="decision-stream separator for --fault-plan (one per worker "
        "process, e.g. worker-0)",
    )
    worker_parser.add_argument(
        "--lease-capacity",
        type=_positive_int,
        default=None,
        metavar="N",
        help="tasks to request per lease (default: --workers)",
    )
    worker_parser.add_argument(
        "--verbose", action="store_true", help="log connection/lease events"
    )

    scenario_parser = sub.add_parser(
        "scenario", help="declarative scenario specs (see SCENARIOS.md)"
    )
    scenario_sub = scenario_parser.add_subparsers(dest="scenario_command", required=True)
    scenario_run = scenario_sub.add_parser(
        "run", help="run a scenario (or suite) JSON spec through the sweep runner"
    )
    scenario_run.add_argument("spec", help="path to a scenario or suite JSON file")
    _add_runner_arguments(scenario_run)
    scenario_sub.add_parser(
        "list", help="list the registered components of every scenario axis"
    )

    bench_parser = sub.add_parser(
        "bench", help="run the pinned perf scenarios and record BENCH_<date>.json"
    )
    bench_parser.add_argument(
        "--scenarios",
        choices=("full", "smoke"),
        default="full",
        help="scenario suite: 'full' (trajectory) or 'smoke' (sub-minute)",
    )
    bench_parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="worker processes (keep 1 for the least noisy wall-clocks)",
    )
    bench_parser.add_argument(
        "--repeats",
        type=_positive_int,
        default=3,
        help="runs per scenario; the minimum wall-clock is recorded",
    )
    bench_parser.add_argument(
        "--output-dir",
        default=".",
        help="directory holding the BENCH_<date>.json trajectory",
    )
    bench_parser.add_argument(
        "--no-write",
        action="store_true",
        help="measure and print only; do not write a BENCH file",
    )
    bench_parser.add_argument(
        "--compare",
        action="store_true",
        help="diff against the most recent previous BENCH file in --output-dir",
    )
    bench_parser.add_argument(
        "--compare-to",
        default=None,
        metavar="PATH",
        help="diff against a specific BENCH json file",
    )
    bench_parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative wall-clock regression tolerance (default 0.10 = 10%%)",
    )
    bench_parser.add_argument(
        "--output-name",
        default=None,
        metavar="FILENAME",
        help=(
            "file name for the written report (default BENCH_<date>.json); "
            "use to avoid clobbering a same-day baseline"
        ),
    )
    bench_parser.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help=(
            "run the bench under cProfile and write a top-25 cumulative "
            "report to PATH (forces --workers 1)"
        ),
    )

    hub_parser = sub.add_parser(
        "hub", help="standing multi-tenant sweep service (see RUNNER.md)"
    )
    hub_sub = hub_parser.add_subparsers(dest="hub_command", required=True)
    hub_serve = hub_sub.add_parser(
        "serve", help="run the hub daemon (shared fleet, concurrent sweeps)"
    )
    hub_serve.add_argument(
        "--listen",
        metavar="HOST:PORT",
        default="127.0.0.1:0",
        help="bind address for workers and submissions (port 0: pick a free "
        "port; the chosen address is announced on stdout)",
    )
    hub_serve.add_argument(
        "--artifact-dir",
        default=None,
        help="shared artifact root: every submission dedupes against and "
        "persists into it (strongly recommended)",
    )
    hub_serve.add_argument(
        "--lease-ttl", type=float, default=30.0, metavar="SECONDS",
        help="broker lease TTL (default 30)",
    )
    hub_serve.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="default re-dispatch budget per task (default 2)",
    )
    hub_serve.add_argument(
        "--chunk-size", type=_positive_int, default=None, metavar="N",
        help="cap tasks per lease (default: the worker's requested capacity)",
    )
    hub_serve.add_argument(
        "--state",
        default=None,
        metavar="DIR",
        help="hub journal directory: accepted submissions are recorded "
        "crash-safely and interrupted sweeps are re-adopted on restart",
    )
    hub_serve.add_argument(
        "--max-pending",
        type=_positive_int,
        default=None,
        metavar="N",
        help="admission control: reject new submissions (with a structured "
        "retry-after) once this many tasks are pending hub-wide",
    )
    hub_serve.add_argument(
        "--autoscale",
        default=None,
        metavar="MIN:MAX",
        help="supervise a loopback worker pool sized between MIN and MAX "
        "from the hub's queue depth (without it the supervisor only "
        "emits scale events)",
    )
    hub_serve.add_argument(
        "--autoscale-procs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="processes per autoscaled loopback worker (default 1)",
    )
    hub_serve.add_argument(
        "--fault-plan",
        default=None,
        metavar="JSON|PATH",
        help="chaos-test the hub itself: a FaultPlan document (inline JSON "
        "or a file path) consulted under the 'hub' salt -- see "
        "SCENARIOS.md for the crash-hub / hang-hub sites",
    )
    hub_serve.add_argument(
        "--http",
        type=int,
        default=None,
        metavar="PORT",
        help="also serve the HTML dashboard on this port (0: pick a free one)",
    )
    hub_serve.add_argument(
        "--bench-dir",
        default=None,
        help="directory of BENCH_<date>.json files for the dashboard's "
        "bench-trajectory page",
    )
    hub_status = hub_sub.add_parser("status", help="query a running hub")
    hub_status.add_argument(
        "--connect", required=True, metavar="HOST:PORT", help="the hub address"
    )
    hub_status.add_argument(
        "--artifact-dir",
        default=None,
        help="also list the sweep journals under this artifact root",
    )
    hub_dash = hub_sub.add_parser(
        "dash", help="serve the HTML dashboard standalone (no hub required)"
    )
    hub_dash.add_argument(
        "--artifact-dir", default=None, help="artifact root for run history"
    )
    hub_dash.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="a running hub to show live queue/fleet state from",
    )
    hub_dash.add_argument(
        "--port", type=int, default=8765, help="HTTP port (default 8765)"
    )
    hub_dash.add_argument(
        "--bench-dir", default=None, help="directory of BENCH_<date>.json files"
    )

    sweeps_parser = sub.add_parser(
        "sweeps", help="list sweep journals under an artifact root"
    )
    sweeps_parser.add_argument(
        "--artifact-dir", required=True, help="artifact root holding the journals"
    )

    runs_parser = sub.add_parser(
        "runs", help="query run history (artifacts + journals; see RUNNER.md)"
    )
    runs_sub = runs_parser.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser("list", help="list stored runs")
    runs_list.add_argument("--artifact-dir", required=True)
    runs_list.add_argument("--task", default=None, help="restrict to one task")
    runs_list.add_argument(
        "--sweep", default=None, help="restrict to one sweep id (see 'sweeps')"
    )
    runs_show = runs_sub.add_parser("show", help="show one run in full")
    runs_show.add_argument("ref", help="artifact key prefix (or task/prefix)")
    runs_show.add_argument("--artifact-dir", required=True)
    runs_diff = runs_sub.add_parser("diff", help="compare two runs field by field")
    runs_diff.add_argument("ref_a", help="first run (key prefix or task/prefix)")
    runs_diff.add_argument("ref_b", help="second run")
    runs_diff.add_argument("--artifact-dir", required=True)
    return parser


def _cli_scenario(args: argparse.Namespace) -> Scenario:
    """The declarative scenario equivalent of the ``run`` subcommand's flags."""
    graph_params = {"n": args.n}
    if args.topology in ("hnd", "configuration"):
        graph_params["degree"] = args.degree
    protocol_params = {}
    if args.algorithm == "local":
        # Algorithm 1's analysis needs gamma bounded away from 0.
        protocol_params["gamma"] = max(args.gamma, 0.05)
    else:
        protocol_params["gamma"] = args.gamma
    if args.max_rounds is not None:
        protocol_params["max_rounds"] = args.max_rounds
    return Scenario(
        name=f"cli-{args.algorithm}",
        graph=ComponentSpec(args.topology, graph_params),
        adversary=ComponentSpec(args.adversary),
        placement=ComponentSpec(args.placement, {"count": args.byzantine}),
        protocol=ComponentSpec(args.algorithm, protocol_params),
        seeds=(args.seed,),
    )


def _command_run(args: argparse.Namespace) -> int:
    cell = materialize(_cli_scenario(args), args.seed)
    summary = cell.run.outcome.summary()
    print(
        render_table(
            [summary], title=f"{args.algorithm} counting on {cell.graph.name}"
        )
    )
    histogram = cell.run.outcome.estimate_histogram()
    if histogram:
        print()
        print(
            render_table(
                [{"estimate": k, "nodes": v} for k, v in histogram.items()],
                title="decided estimates",
            )
        )
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    name = args.name.lower()
    if name not in ALL_EXPERIMENTS:
        print(f"unknown experiment {args.name!r}; options: {sorted(ALL_EXPERIMENTS)}")
        return 2
    module = ALL_EXPERIMENTS[name]
    result = module.run_experiment()
    print(result.render())
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    # Numeric order (e1..e12), not lexicographic (which puts e10 after e1).
    ordered = sorted(ALL_EXPERIMENTS, key=lambda key: int(key[1:]))
    name = args.name.lower()
    names = ordered if name == "all" else [name]
    for candidate in names:
        if candidate not in ALL_EXPERIMENTS:
            print(f"unknown experiment {args.name!r}; options: {ordered}")
            return 2
    runner = _runner_from_args(args)
    for candidate in names:
        result = ALL_EXPERIMENTS[candidate].run_experiment(runner=runner)
        print(result.render())
        if runner.store is not None:
            print(
                f"[sweep] {candidate}: {runner.last_cached} cached, "
                f"{runner.last_executed} executed -> artifacts in {runner.store.root}"
            )
        print()
    return 0


def _command_worker(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.runner import FaultInjector
    from repro.runner.distributed import WorkerDaemon, parse_address

    host, port = parse_address(args.connect)
    injector = None
    if args.fault_plan is not None:
        injector = FaultInjector(_parse_fault_plan(args.fault_plan), salt=args.fault_salt)
    daemon = WorkerDaemon(
        host,
        port,
        procs=args.workers,
        lease_capacity=args.lease_capacity,
        worker_id=args.worker_id,
        exit_when_drained=args.exit_when_drained,
        giveup_attempts=args.giveup_attempts,
        injector=injector,
        verbose=args.verbose,
    )
    # Graceful fleet scale-down: SIGTERM finishes the task in flight,
    # abandons the unstarted rest of the lease back to the broker, and
    # exits -- instead of dying mid-lease and costing a TTL expiry.
    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, lambda *_: daemon.request_shutdown())
    try:
        return daemon.run()
    except KeyboardInterrupt:
        return 0


def _command_scenario_run(args: argparse.Namespace) -> int:
    runner = _runner_from_args(args)
    try:
        with open(args.spec, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        if isinstance(document, dict) and "rows" in document:
            suite = ScenarioSuite.from_dict(document)
            result = suite.run(runner)
            print(result.render())
        else:
            scenario = Scenario.from_dict(document)
            rows = runner.run(scenario.compile())
            print(
                render_table(
                    [
                        {"seed": seed, **metrics}
                        for seed, metrics in zip(scenario.seeds, rows)
                    ],
                    title=scenario.name or "scenario",
                )
            )
    except (OSError, TypeError, ValueError, KeyError) as exc:
        # Spec authoring errors (unreadable file, malformed JSON, unknown
        # components or fields) get a one-line diagnosis, not a traceback.
        print(f"invalid scenario spec {args.spec}: {exc}")
        return 2
    if runner.store is not None:
        print(
            f"[scenario] {runner.last_cached} cached, {runner.last_executed} "
            f"executed -> artifacts in {runner.store.root}"
        )
    return 0


def _command_scenario_list(args: argparse.Namespace) -> int:
    for axis, registry in all_registries().items():
        rows = []
        for entry in registry.entries():
            row = {"name": entry.name, "description": entry.description}
            if "targets" in entry.tags:
                row["targets"] = ", ".join(entry.tags["targets"])
            surface = entry.tags.get("params")
            if surface is not None:
                # Declared parameter surface (protocol zoo): required params
                # plain, optional params with a trailing "?".
                required = [str(p) for p in surface.get("required", ())]
                optional = [f"{p}?" for p in surface.get("optional", ())]
                row["params"] = ", ".join(required + optional) or "-"
            rows.append(row)
        print(render_table(rows, title=f"{axis} registry ({registry.kind})"))
        print()
    print("Compose one component per axis into a Scenario spec; see SCENARIOS.md.")
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    from repro.runner import bench

    scenarios = bench.SMOKE_SCENARIOS if args.scenarios == "smoke" else bench.SCENARIOS
    if args.profile is not None:
        # Profile mode: run the suite in-process under cProfile and write a
        # top-25 cumulative report artifact.  The wall-clocks are inflated
        # by the profiler, so profile mode never writes a BENCH file (which
        # could clobber a same-day baseline) and never runs the regression
        # comparison.
        import cProfile
        import io
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        report = bench.run_bench(scenarios, workers=1, repeats=args.repeats)
        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(25)
        profile_path = Path(args.profile)
        profile_path.parent.mkdir(parents=True, exist_ok=True)
        profile_path.write_text(buffer.getvalue(), encoding="utf-8")
        print(bench.render_report(report))
        print("[bench] profile mode: report not written, comparison skipped")
        print(f"[bench] wrote profile report {profile_path}")
        return 0
    report = bench.run_bench(scenarios, workers=args.workers, repeats=args.repeats)
    print(bench.render_report(report))

    # Resolve (and read) the comparison baseline *before* writing the new
    # file: a same-day re-run overwrites BENCH_<date>.json, which would
    # otherwise silently destroy the baseline and skip the regression gate.
    previous_path = None
    previous = None
    if args.compare_to is not None:
        previous_path = args.compare_to
        previous = bench.load_report(previous_path)
    elif args.compare:
        previous_path = bench.find_previous_report(args.output_dir)
        if previous_path is not None:
            previous = bench.load_report(previous_path)

    if not args.no_write:
        path = bench.write_report(report, args.output_dir, filename=args.output_name)
        print(f"[bench] wrote {path}")

    if args.compare and previous is None and args.compare_to is None:
        print(f"[bench] no previous BENCH_*.json in {args.output_dir} to compare against")
        return 0
    if previous is None:
        return 0
    rows = bench.compare_reports(report, previous, threshold=args.threshold)
    print()
    print(f"[bench] comparison against {previous_path} (threshold {args.threshold:.0%}):")
    print(bench.render_comparison(rows))
    if bench.comparison_failed(rows):
        print("[bench] FAIL: wall-clock regression or result drift detected")
        return 1
    print("[bench] ok: no regression beyond threshold")
    return 0


def _sweep_table(records) -> str:
    """The journal listing shared by ``sweeps`` and ``hub status``."""
    rows = [
        {
            "sweep": record["sweep"],
            "status": record["status"],
            "done": f"{record['done']}/{record['total']}",
            "cached": record["cached"],
            "resumed": record["resumed"],
            "events_dropped": record["events_dropped"],
            "updated": record["updated"],
            "error": record["error"],
        }
        for record in records
    ]
    return render_table(rows, title="sweep journals") if rows else "(no sweep journals)"


def _command_sweeps(args: argparse.Namespace) -> int:
    from repro.runner.hub import ResultsDB

    db = ResultsDB(args.artifact_dir)
    print(_sweep_table(db.sweep_records()))
    if db.skipped_count:
        print(f"[sweeps] {db.skipped_count} unreadable file(s) skipped")
    return 0


def _parse_autoscale(spec: str) -> tuple:
    """``--autoscale MIN:MAX`` -> (min, max) with 0 <= min <= max."""
    lo_text, sep, hi_text = spec.partition(":")
    try:
        if not sep:
            raise ValueError
        lo, hi = int(lo_text), int(hi_text)
    except ValueError:
        raise SystemExit(f"--autoscale expects MIN:MAX, got {spec!r}")
    if lo < 0 or hi < lo:
        raise SystemExit(f"--autoscale needs 0 <= MIN <= MAX, got {spec!r}")
    return (lo, hi)


def _command_hub_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.runner import ArtifactStore, FaultInjector
    from repro.runner.distributed import parse_address
    from repro.runner.faults import CRASH_EXIT_CODE
    from repro.runner.hub import DashboardServer, HubSupervisor, SweepHub

    host, port = parse_address(args.listen)
    store = ArtifactStore(args.artifact_dir) if args.artifact_dir else None
    autoscale = _parse_autoscale(args.autoscale) if args.autoscale else None
    injector = None
    if args.fault_plan is not None:
        injector = FaultInjector(_parse_fault_plan(args.fault_plan), salt="hub")
    hub = SweepHub(
        store=store,
        host=host,
        port=port,
        lease_ttl_s=args.lease_ttl,
        max_retries=args.max_retries,
        chunk_size=args.chunk_size,
        state_dir=args.state,
        max_pending=args.max_pending,
        injector=injector,
    )
    # A restarted hub re-binds its fixed port: give the previous
    # incarnation's socket a grace window to clear instead of failing.
    address = hub.start(bind_retry_s=10.0 if port else 0.0)
    # Parseable announcement: demo harnesses read the chosen port from it.
    print(f"[hub] listening on {address[0]}:{address[1]}", flush=True)
    if store is not None:
        print(f"[hub] artifact root: {store.root}", flush=True)
    if args.state:
        print(f"[hub] state dir: {args.state}", flush=True)
        for adopted in hub.adopt_journaled():
            print(
                f"[hub] re-adopted sweep {adopted['sweep']} "
                f"(identity {adopted['identity']}, "
                f"{adopted['cached']}/{adopted['total']} already done)",
                flush=True,
            )
    supervisor = HubSupervisor(
        hub,
        autoscale=autoscale,
        procs=args.autoscale_procs,
        verbose=bool(autoscale),
    )
    supervisor.start()
    if autoscale:
        print(
            f"[hub] autoscaling loopback workers in [{autoscale[0]}, "
            f"{autoscale[1]}]",
            flush=True,
        )
    dashboard = None
    if args.http is not None:
        dashboard = DashboardServer(
            artifact_dir=args.artifact_dir,
            hub=hub,
            bench_dir=args.bench_dir,
            host=host if host not in ("0.0.0.0", "::", "") else "127.0.0.1",
            port=args.http,
        )
        dash_address = dashboard.start()
        print(f"[hub] dashboard on http://{dash_address[0]}:{dash_address[1]}/", flush=True)
    stop = threading.Event()
    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, lambda *_: stop.set())
    try:
        while not stop.is_set() and not hub.crashed.is_set():
            stop.wait(0.5)
    except KeyboardInterrupt:
        pass
    finally:
        crashed = hub.crashed.is_set()
        print(
            "[hub] crashed (injected fault)" if crashed else "[hub] shutting down",
            flush=True,
        )
        supervisor.stop()
        if dashboard is not None:
            dashboard.stop()
        if not crashed:
            hub.stop()
    return CRASH_EXIT_CODE if crashed else 0


def _command_hub_status(args: argparse.Namespace) -> int:
    from repro.runner import BrokerError
    from repro.runner.distributed import parse_address
    from repro.runner.hub import ResultsDB, query_hub_status

    try:
        status = query_hub_status(parse_address(args.connect))
    except BrokerError as exc:
        print(f"hub status failed: {exc}")
        return 1
    address = status.get("address") or ["?", "?"]
    print(
        f"hub {address[0]}:{address[1]} -- up {status.get('uptime_s', '?')}s, "
        f"{status.get('active_leases', 0)} active lease(s), "
        f"{status.get('events_dropped', 0)} event(s) dropped"
    )
    print()
    sweeps = status.get("sweeps", [])
    if sweeps:
        print(render_table(sweeps, title="sweeps"))
    else:
        print("(no sweeps submitted)")
    print()
    workers = status.get("workers", [])
    if workers:
        print(render_table(workers, title="workers"))
    else:
        print("(no workers connected)")
    print()
    stats = status.get("stats", {})
    print(render_table([stats], title="stats") if stats else "(no stats)")
    if args.artifact_dir:
        print()
        print(_sweep_table(ResultsDB(args.artifact_dir).sweep_records()))
    return 0


def _command_hub_dash(args: argparse.Namespace) -> int:
    from repro.runner.distributed import parse_address
    from repro.runner.hub import DashboardServer

    dashboard = DashboardServer(
        artifact_dir=args.artifact_dir,
        hub_address=parse_address(args.connect) if args.connect else None,
        bench_dir=args.bench_dir,
        port=args.port,
    )
    address = dashboard.start()
    print(f"[dash] serving on http://{address[0]}:{address[1]}/", flush=True)
    try:
        import threading

        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        dashboard.stop()
    return 0


def _command_runs(args: argparse.Namespace) -> int:
    from repro.runner.hub import ResultsDB

    db = ResultsDB(args.artifact_dir)
    if args.runs_command == "list":
        records = db.run_records(task=args.task, sweep=args.sweep, with_result=False)
        rows = [
            {
                "task": record["task"],
                "key": record["key"][:16],
                "sweeps": ", ".join(record["sweeps"]) or "-",
                "updated": record["updated"],
            }
            for record in records
        ]
        print(render_table(rows, title=f"runs ({len(rows)})") if rows else "(no stored runs)")
        if db.skipped_count:
            print(f"[runs] {db.skipped_count} unreadable file(s) skipped")
        return 0
    try:
        if args.runs_command == "show":
            record = db.find(args.ref)
            print(json.dumps(record, indent=2, sort_keys=True))
            return 0
        if args.runs_command == "diff":
            diff = db.diff(args.ref_a, args.ref_b)
            print(json.dumps(diff, indent=2, sort_keys=True))
            if not diff["params"] and not diff["result"]:
                print("[runs] identical params and result")
            return 0
    except KeyError as exc:
        print(f"runs {args.runs_command} failed: {exc.args[0]}")
        return 2
    return 2


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "worker":
        return _command_worker(args)
    if args.command == "scenario":
        if args.scenario_command == "run":
            return _command_scenario_run(args)
        return _command_scenario_list(args)
    if args.command == "bench":
        return _command_bench(args)
    if args.command == "hub":
        if args.hub_command == "serve":
            return _command_hub_serve(args)
        if args.hub_command == "status":
            return _command_hub_status(args)
        return _command_hub_dash(args)
    if args.command == "sweeps":
        return _command_sweeps(args)
    if args.command == "runs":
        return _command_runs(args)
    parser.print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
