"""Flooding-based diameter estimation (Section 1.2).

For a bounded-degree expander the diameter is ``Θ(log n)``, so a node can
estimate ``log n`` by measuring how long a flood takes to cross the network:

1. the maximum-id node emerges as the leader while every node floods the
   largest id it has seen, recording the hop count at which that id reached
   it;
2. the network then propagates the maximum observed hop count, so every node
   learns (approximately) the leader's eccentricity, a 2-approximation of the
   diameter.

The paper points out (Section 1.2) that this approach already fails at the
leader-election step in the Byzantine setting, and that Byzantine nodes can
fake hop counts arbitrarily; this implementation exposes both failure modes.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

from repro.baselines.common import BaselineOutcome
from repro.graphs.graph import Graph
from repro.simulator.byzantine import Adversary
from repro.simulator.engine import SynchronousEngine
from repro.simulator.messages import Message
from repro.simulator.network import Network
from repro.simulator.node import NodeContext, Outbox, Protocol

__all__ = ["FloodingDiameterProtocol", "run_flooding_baseline"]

_LEADER = "flood-leader"
_ECC = "flood-ecc"


def _message(tag: str, *values) -> Message:
    # Node identifiers are carried as exact integers; hop counts as floats.
    num_ids = 1 if tag == _LEADER else 0
    return Message(
        kind="estimate", payload=(tag,) + tuple(values), size_bits=64, num_ids=num_ids
    )


class FloodingDiameterProtocol(Protocol):
    """Leader flood with hop counting, then eccentricity max-propagation."""

    def __init__(self, ctx: NodeContext, flood_rounds: int, ecc_rounds: int) -> None:
        self.flood_rounds = flood_rounds
        self.ecc_rounds = ecc_rounds
        self.best_id = ctx.node_id
        self.best_hops = 0.0
        self.max_ecc = 0.0
        self._decided = False
        self._estimate: Optional[float] = None
        self._decision_round: Optional[int] = None

    @property
    def decided(self) -> bool:
        return self._decided

    @property
    def estimate(self) -> Optional[float]:
        return self._estimate

    @property
    def decision_round(self) -> Optional[int]:
        return self._decision_round

    def on_start(self, ctx: NodeContext) -> Outbox:
        message = _message(_LEADER, self.best_id, 0.0)
        return {v: [message] for v in ctx.neighbors}

    def on_round(self, ctx: NodeContext, inbox: List) -> Outbox:
        round_number = ctx.round
        changed = False
        for message in inbox:
            if message.kind != "estimate":
                continue
            payload = message.payload
            if isinstance(payload, (int, float)) and not isinstance(payload, bool):
                # Byzantine value injection: read as a claimed hop count /
                # eccentricity, exactly what the max-propagation trusts.
                value = float(payload)
                if value > self.max_ecc:
                    self.max_ecc = value
                    changed = True
                continue
            if not isinstance(payload, tuple) or not payload:
                continue
            tag = payload[0]
            if tag == _LEADER and len(payload) == 3:
                claimed_id = payload[1]
                if not isinstance(claimed_id, int) or isinstance(claimed_id, bool):
                    continue
                try:
                    hops = float(payload[2]) + 1.0
                except (TypeError, ValueError):
                    continue
                if claimed_id > self.best_id or (
                    claimed_id == self.best_id and hops < self.best_hops
                ):
                    self.best_id = claimed_id
                    self.best_hops = hops
                    changed = True
            elif tag == _ECC and len(payload) == 2:
                try:
                    value = float(payload[1])
                except (TypeError, ValueError):
                    continue
                if value > self.max_ecc:
                    self.max_ecc = value
                    changed = True

        if round_number < self.flood_rounds:
            if changed:
                message = _message(_LEADER, self.best_id, self.best_hops)
                return {v: [message] for v in ctx.neighbors}
            return {}

        if round_number == self.flood_rounds:
            # Transition: seed the eccentricity propagation with our own hops.
            self.max_ecc = max(self.max_ecc, self.best_hops)
            message = _message(_ECC, self.max_ecc)
            return {v: [message] for v in ctx.neighbors}

        if round_number < self.flood_rounds + self.ecc_rounds:
            if changed:
                message = _message(_ECC, self.max_ecc)
                return {v: [message] for v in ctx.neighbors}
            return {}

        if not self._decided:
            self._decided = True
            self._decision_round = round_number
            self._estimate = self.max_ecc if self.max_ecc > 0 else None
        return {}


def run_flooding_baseline(
    graph: Graph,
    *,
    byzantine: Iterable[int] = (),
    adversary: Optional[Adversary] = None,
    seed: int = 0,
    phase_rounds: Optional[int] = None,
) -> BaselineOutcome:
    """Run the flooding baseline; estimates are the learned leader eccentricity."""
    network = Network(graph=graph, byzantine=frozenset(byzantine))
    if phase_rounds is None:
        phase_rounds = 2 * int(math.ceil(math.log2(max(graph.n, 2)))) + 6

    def factory(ctx: NodeContext) -> Protocol:
        return FloodingDiameterProtocol(ctx, phase_rounds, phase_rounds)

    engine = SynchronousEngine(
        network,
        factory,
        adversary=adversary,
        seed=seed,
        max_rounds=2 * phase_rounds + 4,
    )
    result = engine.run()
    estimates = {u: p.estimate for u, p in result.protocols.items()}
    return BaselineOutcome(
        name="flooding-diameter",
        n=graph.n,
        estimates=estimates,
        rounds_executed=result.rounds_executed,
        total_messages=result.metrics.total_messages,
    )
