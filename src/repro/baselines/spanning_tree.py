"""Spanning-tree converge-cast counting (Section 1.2).

The folklore exact-counting protocol for benign synchronous networks:

1. **Tree building.**  Every node floods the largest node id it has seen
   together with its distance to that id; each node adopts the sender of the
   best announcement as its parent, which builds a BFS tree rooted at the
   maximum-id node.
2. **Converge-cast.**  Every node repeatedly reports ``1 + Σ (children's
   latest counts)`` to its parent; after ``depth`` rounds the root's value is
   exactly ``n``.
3. **Broadcast.**  The root floods the final count; every node's estimate of
   ``log n`` is the natural logarithm of the count it receives.

With zero Byzantine nodes this counts exactly.  A single Byzantine node can
report an arbitrary subtree count (inflating the total without bound) or
announce a phantom maximum id, so the protocol has no Byzantine resilience --
the paper's motivating observation.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from repro.baselines.common import BaselineOutcome
from repro.graphs.graph import Graph
from repro.simulator.byzantine import Adversary
from repro.simulator.engine import SynchronousEngine
from repro.simulator.messages import Message
from repro.simulator.network import Network
from repro.simulator.node import NodeContext, Outbox, Protocol

__all__ = ["SpanningTreeProtocol", "run_spanning_tree_baseline"]

_BUILD = "st-build"
_COUNT = "st-count"
_RESULT = "st-result"


def _message(tag: str, *values) -> Message:
    # Node identifiers are kept as exact integers (casting a 62-bit id to a
    # float would corrupt it); counts/depths may be ints or floats.
    num_ids = 1 if tag == _BUILD else 0
    return Message(
        kind="estimate", payload=(tag,) + tuple(values), size_bits=64, num_ids=num_ids
    )


class SpanningTreeProtocol(Protocol):
    """BFS-tree construction, converge-cast, and result broadcast."""

    def __init__(self, ctx: NodeContext, build_rounds: int, count_rounds: int, spread_rounds: int) -> None:
        self.build_rounds = build_rounds
        self.count_rounds = count_rounds
        self.spread_rounds = spread_rounds
        self.root_id = ctx.node_id
        self.parent: Optional[int] = None  # neighbor index
        self.depth = 0
        self._child_counts: Dict[int, float] = {}
        self._result: Optional[float] = None
        self._decided = False
        self._estimate: Optional[float] = None
        self._decision_round: Optional[int] = None

    @property
    def decided(self) -> bool:
        return self._decided

    @property
    def estimate(self) -> Optional[float]:
        return self._estimate

    @property
    def decision_round(self) -> Optional[int]:
        return self._decision_round

    # -- helpers ---------------------------------------------------------- #
    def _total_rounds(self) -> int:
        return self.build_rounds + self.count_rounds + self.spread_rounds

    def _my_count(self) -> float:
        return 1.0 + sum(self._child_counts.values())

    def _finish(self, ctx: NodeContext) -> None:
        if self._decided:
            return
        self._decided = True
        self._decision_round = ctx.round
        if self.root_id == ctx.node_id:
            # The root's own converge-cast value is the count.
            self._result = self._my_count()
        if self._result is not None and self._result >= 1.0:
            self._estimate = math.log(self._result)
        else:
            self._estimate = None

    # -- engine callbacks -------------------------------------------------- #
    def on_start(self, ctx: NodeContext) -> Outbox:
        message = _message(_BUILD, self.root_id, 0)
        return {v: [message] for v in ctx.neighbors}

    def on_round(self, ctx: NodeContext, inbox: List) -> Outbox:
        round_number = ctx.round
        if round_number > self._total_rounds():
            self._finish(ctx)
            return {}

        changed = False
        for message in inbox:
            if message.kind != "estimate":
                continue
            payload = message.payload
            if isinstance(payload, (int, float)) and not isinstance(payload, bool):
                # Byzantine value injection: an untagged number is read the way
                # the converge-cast reads a child's report -- a claimed
                # subtree count.  Nothing in the protocol can validate it.
                self._child_counts[message.sender] = float(payload)
                continue
            if not isinstance(payload, tuple) or not payload:
                continue
            tag = payload[0]
            if tag == _BUILD and len(payload) == 3:
                claimed_root, claimed_depth = payload[1], payload[2]
                if not isinstance(claimed_root, int) or isinstance(claimed_root, bool):
                    continue
                try:
                    claimed_depth = float(claimed_depth)
                except (TypeError, ValueError):
                    continue
                better_root = claimed_root > self.root_id
                shorter = claimed_root == self.root_id and claimed_depth + 1 < self.depth
                if better_root or shorter:
                    self.root_id = claimed_root
                    self.depth = claimed_depth + 1
                    self.parent = message.sender
                    self._child_counts.clear()
                    changed = True
            elif tag == _COUNT and len(payload) == 3:
                claimed_root, count = payload[1], payload[2]
                if not isinstance(claimed_root, int) or isinstance(claimed_root, bool):
                    continue
                try:
                    count = float(count)
                except (TypeError, ValueError):
                    continue
                if claimed_root == self.root_id:
                    self._child_counts[message.sender] = count
            elif tag == _RESULT and len(payload) == 2:
                try:
                    result = float(payload[1])
                except (TypeError, ValueError):
                    continue
                if self._result is None:
                    self._result = result

        if round_number <= self.build_rounds:
            if changed:
                message = _message(_BUILD, self.root_id, self.depth)
                return {v: [message] for v in ctx.neighbors}
            return {}

        if round_number <= self.build_rounds + self.count_rounds:
            # Converge-cast: report the current subtree count to the parent.
            if self.parent is not None:
                message = _message(_COUNT, self.root_id, self._my_count())
                return {self.parent: [message]}
            return {}

        # Result-broadcast window.
        if self.root_id == ctx.node_id and self._result is None:
            self._result = self._my_count()
        if round_number == self._total_rounds():
            self._finish(ctx)
        if self._result is not None:
            message = _message(_RESULT, self._result)
            return {v: [message] for v in ctx.neighbors}
        return {}


def run_spanning_tree_baseline(
    graph: Graph,
    *,
    byzantine: Iterable[int] = (),
    adversary: Optional[Adversary] = None,
    seed: int = 0,
    phase_rounds: Optional[int] = None,
) -> BaselineOutcome:
    """Run the spanning-tree baseline and collect per-node estimates of ``ln n``."""
    network = Network(graph=graph, byzantine=frozenset(byzantine))
    if phase_rounds is None:
        phase_rounds = 2 * int(math.ceil(math.log2(max(graph.n, 2)))) + 6

    def factory(ctx: NodeContext) -> Protocol:
        return SpanningTreeProtocol(ctx, phase_rounds, phase_rounds, phase_rounds)

    engine = SynchronousEngine(
        network,
        factory,
        adversary=adversary,
        seed=seed,
        max_rounds=3 * phase_rounds + 4,
    )
    result = engine.run()
    estimates = {u: p.estimate for u, p in result.protocols.items()}
    return BaselineOutcome(
        name="spanning-tree",
        n=graph.n,
        estimates=estimates,
        rounds_executed=result.rounds_executed,
        total_messages=result.metrics.total_messages,
    )
