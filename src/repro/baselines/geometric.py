"""Geometric-distribution maximum propagation (Section 1.2).

Every node flips a fair coin until it sees heads; the number of flips ``X_u``
is geometrically distributed and the global maximum ``X̄ = max_u X_u`` is
``Θ(log n)`` with high probability (in fact ``≈ log2 n``), so propagating the
maximum yields an estimate of ``log n`` -- *in the absence of Byzantine
nodes*.  A single Byzantine node faking a huge value (or simply not forwarding
the true maximum) breaks any approximation guarantee, which is the paper's
motivating observation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from repro.baselines.common import BaselineOutcome, parse_value, value_payload
from repro.graphs.graph import Graph
from repro.simulator.byzantine import Adversary
from repro.simulator.engine import SynchronousEngine
from repro.simulator.network import Network
from repro.simulator.node import NodeContext, Outbox, Protocol

__all__ = ["GeometricMaxProtocol", "run_geometric_baseline"]

_TAG = "geometric-max"


class GeometricMaxProtocol(Protocol):
    """Draw a geometric sample, flood the maximum, decide after a round budget."""

    def __init__(self, ctx: NodeContext, rounds_budget: int) -> None:
        self.rounds_budget = rounds_budget
        # Flip a fair coin until heads.
        flips = 1
        while ctx.rng.random() < 0.5:
            flips += 1
        self.best = float(flips)
        self._decided = False
        self._estimate: Optional[float] = None
        self._decision_round: Optional[int] = None

    @property
    def decided(self) -> bool:
        return self._decided

    @property
    def estimate(self) -> Optional[float]:
        return self._estimate

    @property
    def decision_round(self) -> Optional[int]:
        return self._decision_round

    def _maybe_decide(self, round_number: int) -> None:
        if round_number >= self.rounds_budget and not self._decided:
            self._decided = True
            # max of n geometric(1/2) samples concentrates around log2 n, so
            # the natural-log estimate is best · ln 2.
            self._estimate = self.best * math.log(2.0)
            self._decision_round = round_number

    def on_start(self, ctx: NodeContext) -> Outbox:
        message = value_payload(_TAG, self.best)
        return {v: [message] for v in ctx.neighbors}

    def on_round(self, ctx: NodeContext, inbox: List) -> Outbox:
        improved = False
        for message in inbox:
            value = parse_value(message, _TAG)
            if value is not None and value > self.best:
                self.best = value
                improved = True
        self._maybe_decide(ctx.round)
        if self._decided:
            return {}
        if improved:
            message = value_payload(_TAG, self.best)
            return {v: [message] for v in ctx.neighbors}
        return {}


def run_geometric_baseline(
    graph: Graph,
    *,
    byzantine: Iterable[int] = (),
    adversary: Optional[Adversary] = None,
    seed: int = 0,
    rounds_budget: Optional[int] = None,
) -> BaselineOutcome:
    """Run the geometric-maximum baseline and collect per-node estimates.

    ``rounds_budget`` defaults to ``2·ceil(log2 n) + 6``, enough for the
    maximum to flood any expander; it is information the real counting
    protocols cannot assume, which is part of why they are harder to build.
    """
    network = Network(graph=graph, byzantine=frozenset(byzantine))
    if rounds_budget is None:
        rounds_budget = 2 * int(math.ceil(math.log2(max(graph.n, 2)))) + 6

    def factory(ctx: NodeContext) -> Protocol:
        return GeometricMaxProtocol(ctx, rounds_budget)

    engine = SynchronousEngine(
        network, factory, adversary=adversary, seed=seed, max_rounds=rounds_budget + 2
    )
    result = engine.run()
    estimates = {u: p.estimate for u, p in result.protocols.items()}
    return BaselineOutcome(
        name="geometric-max",
        n=graph.n,
        estimates=estimates,
        rounds_executed=result.rounds_executed,
        total_messages=result.metrics.total_messages,
    )
