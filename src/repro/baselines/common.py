"""Shared result type and helpers for the baseline estimators."""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["BaselineOutcome", "value_payload", "parse_value"]

from repro.simulator.messages import Message


def value_payload(kind_tag: str, value: float) -> Message:
    """A small message carrying one numeric protocol value."""
    return Message(kind="estimate", payload=(kind_tag, float(value)), size_bits=64, num_ids=0)


def parse_value(message: Message, kind_tag: str) -> Optional[float]:
    """Extract a numeric value from an ``estimate`` message.

    Honest senders use ``(kind_tag, value)`` tuples.  Byzantine senders (the
    :class:`~repro.adversary.strategies.ValueFakingAdversary`) send bare
    floats; these are interpreted as a claimed value of whatever protocol the
    receiver runs -- which is exactly the attack the baseline has no defence
    against.
    """
    if message.kind != "estimate":
        return None
    payload = message.payload
    if isinstance(payload, tuple) and len(payload) == 2 and payload[0] == kind_tag:
        try:
            return float(payload[1])
        except (TypeError, ValueError):
            return None
    if isinstance(payload, (int, float)) and not isinstance(payload, bool):
        return float(payload)
    return None


@dataclass
class BaselineOutcome:
    """Outcome of a baseline run: per-node estimates of ``ln n``.

    Estimates of ``None`` mean the node produced no estimate (e.g. the flood
    never reached it).
    """

    name: str
    n: int
    estimates: Dict[int, Optional[float]]
    rounds_executed: int
    total_messages: int

    @property
    def log_n(self) -> float:
        """True ``ln n``."""
        return math.log(max(self.n, 2))

    def decided_fraction(self) -> float:
        """Fraction of honest nodes with a (finite) estimate."""
        if not self.estimates:
            return 0.0
        ok = sum(
            1
            for e in self.estimates.values()
            if e is not None and math.isfinite(e)
        )
        return ok / len(self.estimates)

    def median_estimate(self) -> Optional[float]:
        """Median finite estimate (None if there is none)."""
        values = [
            e for e in self.estimates.values() if e is not None and math.isfinite(e)
        ]
        return statistics.median(values) if values else None

    def median_relative_error(self) -> Optional[float]:
        """Median of ``|estimate - ln n| / ln n`` over finite estimates."""
        values = [
            abs(e - self.log_n) / self.log_n
            for e in self.estimates.values()
            if e is not None and math.isfinite(e)
        ]
        return statistics.median(values) if values else None

    def fraction_within_factor(self, lower: float, upper: float) -> float:
        """Fraction of nodes whose estimate lies in ``[lower·ln n, upper·ln n]``."""
        if not self.estimates:
            return 0.0
        low, high = lower * self.log_n, upper * self.log_n
        ok = sum(
            1
            for e in self.estimates.values()
            if e is not None and math.isfinite(e) and low <= e <= high
        )
        return ok / len(self.estimates)

    def summary(self) -> Dict[str, object]:
        """Row for the experiment tables."""
        return {
            "baseline": self.name,
            "n": self.n,
            "decided_fraction": round(self.decided_fraction(), 3),
            "median_estimate": self.median_estimate(),
            "log_n": round(self.log_n, 3),
            "median_relative_error": self.median_relative_error(),
            "rounds": self.rounds_executed,
        }
