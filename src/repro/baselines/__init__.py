"""Non-Byzantine-resilient size-estimation baselines (Section 1.2).

The paper motivates its algorithms by observing that the classical network
size estimators all collapse as soon as a single Byzantine node is present:

* :mod:`repro.baselines.geometric` -- every node draws a geometric random
  variable and the network propagates the maximum (``max ≈ log2 n``); a
  Byzantine node can fake an arbitrarily large value.
* :mod:`repro.baselines.support_estimation` -- every node draws exponential
  variables and the network propagates coordinate-wise minima
  (``n ≈ (k-1)/Σ min``); a Byzantine node can fake minima near zero.
* :mod:`repro.baselines.spanning_tree` -- build a BFS tree from the maximum-id
  node and converge-cast subtree counts; a Byzantine node can report an
  arbitrary subtree count (or hijack leadership with a fake id).
* :mod:`repro.baselines.flooding` -- the maximum-id node floods a token and
  nodes estimate ``log n`` from the flood's arrival times (≈ diameter for an
  expander); a Byzantine node can replay or fabricate tokens and hop counts.

Experiment E7 runs each of them with zero, one, and ``√n`` Byzantine nodes to
regenerate the motivating claim.
"""

from repro.baselines.geometric import GeometricMaxProtocol, run_geometric_baseline
from repro.baselines.support_estimation import (
    SupportEstimationProtocol,
    run_support_estimation_baseline,
)
from repro.baselines.spanning_tree import SpanningTreeProtocol, run_spanning_tree_baseline
from repro.baselines.flooding import FloodingDiameterProtocol, run_flooding_baseline
from repro.baselines.common import BaselineOutcome

__all__ = [
    "BaselineOutcome",
    "GeometricMaxProtocol",
    "run_geometric_baseline",
    "SupportEstimationProtocol",
    "run_support_estimation_baseline",
    "SpanningTreeProtocol",
    "run_spanning_tree_baseline",
    "FloodingDiameterProtocol",
    "run_flooding_baseline",
]
