"""Exponential support estimation (Section 1.2, following [7, 5]).

Every node draws ``k`` independent ``Exp(1)`` samples; the network propagates
the coordinate-wise minimum vector.  The sum of the ``k`` global minima is a
``Gamma(k, n)`` variable, so ``n̂ = (k-1)/Σ min_i`` is an unbiased estimator of
``n`` and concentrates for moderate ``k``.  As with the geometric protocol, a
single Byzantine node claiming minima near zero drives the estimate to
infinity.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from repro.baselines.common import BaselineOutcome
from repro.graphs.graph import Graph
from repro.simulator.byzantine import Adversary
from repro.simulator.engine import SynchronousEngine
from repro.simulator.messages import Message
from repro.simulator.network import Network
from repro.simulator.node import NodeContext, Outbox, Protocol

__all__ = ["SupportEstimationProtocol", "run_support_estimation_baseline"]

_TAG = "support-min"


def _make_message(minima: Tuple[float, ...]) -> Message:
    return Message(kind="estimate", payload=(_TAG, tuple(minima)), size_bits=64 * len(minima), num_ids=0)


def _parse(message: Message, k: int) -> Optional[Tuple[float, ...]]:
    if message.kind != "estimate":
        return None
    payload = message.payload
    if isinstance(payload, tuple) and len(payload) == 2 and payload[0] == _TAG:
        values = payload[1]
        if isinstance(values, tuple) and len(values) == k:
            try:
                return tuple(float(v) for v in values)
            except (TypeError, ValueError):
                return None
        return None
    # A bare number from a Byzantine value-faker: interpret it as a claimed
    # minimum in every coordinate (a deflation attack on this estimator).
    if isinstance(payload, (int, float)) and not isinstance(payload, bool):
        return tuple(max(0.0, float(payload)) for _ in range(k))
    return None


class SupportEstimationProtocol(Protocol):
    """Propagate coordinate-wise exponential minima, decide after a round budget."""

    def __init__(self, ctx: NodeContext, rounds_budget: int, k: int) -> None:
        self.rounds_budget = rounds_budget
        self.k = k
        self.minima: Tuple[float, ...] = tuple(
            ctx.rng.expovariate(1.0) for _ in range(k)
        )
        self._decided = False
        self._estimate: Optional[float] = None
        self._decision_round: Optional[int] = None

    @property
    def decided(self) -> bool:
        return self._decided

    @property
    def estimate(self) -> Optional[float]:
        return self._estimate

    @property
    def decision_round(self) -> Optional[int]:
        return self._decision_round

    def _maybe_decide(self, round_number: int) -> None:
        if round_number >= self.rounds_budget and not self._decided:
            self._decided = True
            total = sum(self.minima)
            if total <= 0.0:
                self._estimate = math.inf
            else:
                n_hat = max(1.0, (self.k - 1) / total)
                self._estimate = math.log(n_hat)
            self._decision_round = round_number

    def on_start(self, ctx: NodeContext) -> Outbox:
        message = _make_message(self.minima)
        return {v: [message] for v in ctx.neighbors}

    def on_round(self, ctx: NodeContext, inbox: List) -> Outbox:
        improved = False
        for message in inbox:
            values = _parse(message, self.k)
            if values is None:
                continue
            merged = tuple(min(a, b) for a, b in zip(self.minima, values))
            if merged != self.minima:
                self.minima = merged
                improved = True
        self._maybe_decide(ctx.round)
        if self._decided:
            return {}
        if improved:
            message = _make_message(self.minima)
            return {v: [message] for v in ctx.neighbors}
        return {}


def run_support_estimation_baseline(
    graph: Graph,
    *,
    byzantine: Iterable[int] = (),
    adversary: Optional[Adversary] = None,
    seed: int = 0,
    rounds_budget: Optional[int] = None,
    k: int = 16,
) -> BaselineOutcome:
    """Run the support-estimation baseline and collect per-node estimates of ``ln n``."""
    network = Network(graph=graph, byzantine=frozenset(byzantine))
    if rounds_budget is None:
        rounds_budget = 2 * int(math.ceil(math.log2(max(graph.n, 2)))) + 6

    def factory(ctx: NodeContext) -> Protocol:
        return SupportEstimationProtocol(ctx, rounds_budget, k)

    engine = SynchronousEngine(
        network, factory, adversary=adversary, seed=seed, max_rounds=rounds_budget + 2
    )
    result = engine.run()
    estimates = {u: p.estimate for u, p in result.protocols.items()}
    return BaselineOutcome(
        name="support-estimation",
        n=graph.n,
        estimates=estimates,
        rounds_executed=result.rounds_executed,
        total_messages=result.metrics.total_messages,
    )
