"""Byzantine-placement registrations for the scenario API.

Each entry has the uniform signature ``fn(graph, count, *, seed) -> Set[int]``
of :mod:`repro.adversary.placement`.  :func:`place_byzantine` is the single
call site helper: a ``count`` of zero short-circuits to the empty set without
invoking the strategy (matching the benign drivers, which never called a
placement function at all).
"""

from __future__ import annotations

from typing import Any, Set

from repro.adversary.placement import (
    clustered_placement,
    cut_placement,
    high_degree_placement,
    random_placement,
    spread_placement,
)
from repro.graphs.graph import Graph
from repro.scenarios.registry import PLACEMENTS

__all__ = ["place_byzantine"]


def place_byzantine(
    name: str, graph: Graph, count: int, *, seed: int, **params: Any
) -> Set[int]:
    """Place ``count`` Byzantine nodes with the registered strategy ``name``."""
    if count <= 0:
        PLACEMENTS.get(name)  # still validate the name
        return set()
    return PLACEMENTS.build(name, graph, count, seed=seed, **params)


@PLACEMENTS.register("random")
def _random(graph: Graph, count: int, *, seed: int = 0) -> Set[int]:
    """Uniformly random nodes (the prior work's placement model)."""
    return random_placement(graph, count, seed=seed)


@PLACEMENTS.register("clustered")
def _clustered(graph: Graph, count: int, *, seed: int = 0) -> Set[int]:
    """A BFS ball around a random center (the Remark 1 worst case)."""
    return clustered_placement(graph, count, seed=seed)


@PLACEMENTS.register("cut")
def _cut(graph: Graph, count: int, *, seed: int = 0) -> Set[int]:
    """Nodes straddling a heuristic sparse cut."""
    return cut_placement(graph, count, seed=seed)


@PLACEMENTS.register("spread")
def _spread(graph: Graph, count: int, *, seed: int = 0) -> Set[int]:
    """Greedily pairwise-far nodes (maximizes the contaminated area)."""
    return spread_placement(graph, count, seed=seed)


@PLACEMENTS.register("high-degree")
def _high_degree(graph: Graph, count: int, *, seed: int = 0) -> Set[int]:
    """Highest-degree nodes (meaningful on irregular topologies)."""
    return high_degree_placement(graph, count, seed=seed)
