"""Declarative scenario API: composable registries for graphs x adversaries
x placements x protocols x churn schedules.

Every paper claim is "protocol P on graph family G under adversary A with
placement L" -- optionally "under churn schedule C".  This package makes
that sentence executable data:

* :mod:`repro.scenarios.registry` -- five string-keyed component registries,
  populated by decorators in :mod:`~repro.scenarios.graphs`,
  :mod:`~repro.scenarios.behaviours`, :mod:`~repro.scenarios.placements`,
  :mod:`~repro.scenarios.protocols`, and :mod:`~repro.scenarios.churn`
  (importing this package registers everything, which is what spawn-method
  sweep workers rely on).
* :mod:`repro.scenarios.spec` -- the JSON-round-trippable :class:`Scenario`
  dataclass, compiling to ``SweepConfig`` lists that ride the existing
  sweep runner and artifact cache unchanged.
* :mod:`repro.scenarios.suite` -- :class:`ScenarioSuite`: scenarios plus a
  declarative table, regenerating an experiment's table from a JSON file.
* :mod:`repro.scenarios.execute` -- the generic ``scenario.run`` sweep task.

See SCENARIOS.md for the spec schema and the registry extension recipe.
"""

from repro.scenarios.registry import (
    ADVERSARIES,
    CHURN,
    GRAPHS,
    PLACEMENTS,
    PROTOCOLS,
    ComponentRegistry,
    RegistryEntry,
    UnknownComponentError,
    all_registries,
)
from repro.scenarios.graphs import build_graph
from repro.scenarios.behaviours import make_adversary
from repro.scenarios.churn import build_churn
from repro.scenarios.placements import place_byzantine
from repro.scenarios.protocols import run_protocol
from repro.scenarios.spec import SCENARIO_TASK, ComponentSpec, Scenario
from repro.scenarios.suite import ScenarioSuite, SuiteRow
from repro.scenarios.execute import MaterializedCell, execute_cell, materialize

__all__ = [
    "ADVERSARIES",
    "CHURN",
    "GRAPHS",
    "PLACEMENTS",
    "PROTOCOLS",
    "ComponentRegistry",
    "ComponentSpec",
    "MaterializedCell",
    "RegistryEntry",
    "SCENARIO_TASK",
    "Scenario",
    "ScenarioSuite",
    "SuiteRow",
    "UnknownComponentError",
    "all_registries",
    "build_churn",
    "build_graph",
    "execute_cell",
    "make_adversary",
    "materialize",
    "place_byzantine",
    "run_protocol",
]
