"""Declarative scenario suites: scenarios plus their table presentation.

A :class:`ScenarioSuite` is what an experiment driver *is*, as data: a list
of scenarios, and for each a table row -- leading ``static`` columns (values
known at spec time: n, ln n, the behaviour name, the round budget) followed
by ``columns`` mapping column names to metric reductions over the scenario's
seeds.  ``ScenarioSuite.run`` compiles every scenario, executes the flat
config list through a :class:`~repro.runner.sweep.SweepRunner`, and
aggregates the metrics into an ``ExperimentResult`` -- so a committed JSON
suite regenerates a driver's table byte-for-byte from the spec alone.

Column reductions
-----------------
A column value is either a metric key (reduced with the mean over seeds,
``None``-filtered exactly like ``mean_or_none``) or a mapping::

    {"metric": "decided_fraction", "reduce": "mean" | "first" | "median"
                                           | "min" | "max", "round": 3}

``round`` (optional) applies ``round(value, digits)`` after the reduction.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.runner.config import SweepConfig
from repro.runner.sweep import SweepRunner
from repro.scenarios.spec import Scenario

__all__ = ["SuiteRow", "ScenarioSuite"]


def _filtered(values: Sequence[Any]) -> List[Any]:
    return [v for v in values if v is not None]


def _reduce(spec: Union[str, Mapping[str, Any]], values: Sequence[Any]) -> Any:
    """Reduce one column's per-seed metric values to a table cell."""
    if isinstance(spec, str):
        spec = {"metric": spec}
    reducer = spec.get("reduce", "mean")
    if reducer == "first":
        value = values[0] if values else None
    else:
        filtered = _filtered(values)
        if not filtered:
            value = None
        elif reducer == "mean":
            value = statistics.fmean(filtered)
        elif reducer == "median":
            value = statistics.median(filtered)
        elif reducer == "min":
            value = min(filtered)
        elif reducer == "max":
            value = max(filtered)
        else:
            raise ValueError(
                f"unknown reducer {reducer!r}; options: "
                "['first', 'max', 'mean', 'median', 'min']"
            )
    digits = spec.get("round")
    if digits is not None and value is not None:
        value = round(value, int(digits))
    return value


@dataclass(frozen=True)
class SuiteRow:
    """One scenario and the table row it aggregates into."""

    scenario: Scenario
    #: Leading columns with spec-time constants ({} = none).
    static: Dict[str, Any] = field(default_factory=dict)
    #: Metric columns: column name -> metric key or reduction mapping.
    columns: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario.to_dict(),
            "static": dict(self.static),
            "columns": dict(self.columns),
        }

    @classmethod
    def from_dict(cls, value: Mapping[str, Any]) -> "SuiteRow":
        unknown = set(value) - {"scenario", "static", "columns"}
        if unknown:
            raise ValueError(f"unknown suite row keys: {sorted(unknown)}")
        return cls(
            scenario=Scenario.from_dict(value["scenario"]),
            static=dict(value.get("static", {})),
            columns=dict(value.get("columns", {})),
        )


@dataclass(frozen=True)
class ScenarioSuite:
    """An experiment expressed as data: scenarios plus table presentation."""

    experiment: str
    claim: str
    rows: List[SuiteRow] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    def scenarios(self) -> List[Scenario]:
        return [row.scenario for row in self.rows]

    def compile(self) -> List[SweepConfig]:
        """The flat config list of every scenario (in row, then seed order)."""
        return [config for row in self.rows for config in row.scenario.compile()]

    def run(self, runner: Optional[SweepRunner] = None):
        """Execute the suite and aggregate its table.

        Returns an :class:`~repro.experiments.common.ExperimentResult`
        (imported lazily: the experiments package imports this one).
        """
        from repro.experiments.common import ExperimentResult

        configs = self.compile()
        flat = (runner if runner is not None else SweepRunner()).run(configs)
        result = ExperimentResult(experiment=self.experiment, claim=self.claim)
        index = 0
        for row in self.rows:
            num_seeds = len(row.scenario.seeds)
            per_seed = flat[index : index + num_seeds]
            index += num_seeds
            cells = dict(row.static)
            for column, reduction in row.columns.items():
                metric = reduction if isinstance(reduction, str) else reduction["metric"]
                missing = [m for m in per_seed if metric not in m]
                if missing:
                    raise ValueError(
                        f"column {column!r} references unknown metric {metric!r}; "
                        f"available metrics: {sorted(missing[0])}"
                    )
                cells[column] = _reduce(reduction, [m[metric] for m in per_seed])
            result.add_row(**cells)
        for note in self.notes:
            result.add_note(note)
        return result

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "claim": self.claim,
            "rows": [row.to_dict() for row in self.rows],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, value: Mapping[str, Any]) -> "ScenarioSuite":
        unknown = set(value) - {"experiment", "claim", "rows", "notes"}
        if unknown:
            raise ValueError(f"unknown suite keys: {sorted(unknown)}")
        return cls(
            experiment=str(value.get("experiment", "scenario")),
            claim=str(value.get("claim", "")),
            rows=[SuiteRow.from_dict(row) for row in value.get("rows", [])],
            notes=[str(note) for note in value.get("notes", [])],
        )

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSuite":
        return cls.from_dict(json.loads(text))
