"""Protocol registrations for the scenario API.

Each entry owns the full "run protocol P" recipe: build the parameter object
from the spec's protocol params (defaulting degree bounds from the graph the
way the CLI historically did), construct the adversary behaviour *with those
parameters* (scheduled Algorithm 2 attacks read their round schedule from
them), and execute the run.  Entries return the protocol's run object
(``LocalCountingRun`` / ``CongestCountingRun`` /
:class:`~repro.protocols.common.ZooRun`), whose ``.outcome`` feeds the
generic metrics extraction in :mod:`repro.scenarios.execute`.

Entry metadata (the protocol-zoo contract)
------------------------------------------
Every entry declares its parameter surface through registry tags:

* ``params``: a ``{"required": (...), "optional": (...)}`` mapping.
  :meth:`repro.scenarios.spec.Scenario.validate` rejects unknown or missing
  protocol params at *compile* time (with the offending
  ``scenario.protocol.params.<key>`` path), and ``scenario list`` prints the
  surface, so the zoo is discoverable without reading source.
* ``validate`` (optional): a callable ``(params, n) -> None`` raising
  ``ValueError`` with a message starting with the offending parameter name
  when params are out of envelope (e.g. ``grouped-bft`` with ``n <= 3f``).
  ``n`` is the graph size when the spec carries one, else ``None``.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Set

from repro.core.congest_counting import CongestCountingRun, run_congest_counting
from repro.core.local_counting import LocalCountingRun, run_local_counting
from repro.core.parameters import CongestParameters, LocalParameters
from repro.graphs.graph import Graph
from repro.protocols import (
    ZooRun,
    run_benor,
    run_flooding_protocol,
    run_geometric_protocol,
    run_grouped_bft,
    run_spanning_tree_protocol,
    run_support_estimation_protocol,
    spec_validate_benor,
    spec_validate_grouped_bft,
)
from repro.scenarios.behaviours import make_adversary
from repro.scenarios.registry import PROTOCOLS
from repro.simulator.churn import ChurnSchedule

__all__ = ["run_protocol"]


def run_protocol(
    name: str,
    graph: Graph,
    *,
    byzantine: Set[int],
    behaviour: str,
    behaviour_params: Mapping[str, Any],
    seed: int,
    evaluation_set: Optional[Set[int]] = None,
    churn: Optional[ChurnSchedule] = None,
    **params: Any,
):
    """Run the registered protocol ``name`` and return its run object."""
    return PROTOCOLS.build(
        name,
        graph,
        byzantine=byzantine,
        behaviour=behaviour,
        behaviour_params=behaviour_params,
        seed=seed,
        evaluation_set=evaluation_set,
        churn=churn,
        **params,
    )


@PROTOCOLS.register(
    "local",
    params={
        "required": (),
        "optional": (
            "gamma",
            "max_degree",
            "alpha_prime",
            "exhaustive_subset_check",
            "max_rounds",
        ),
    },
)
def _local(
    graph: Graph,
    *,
    byzantine: Set[int],
    behaviour: str,
    behaviour_params: Mapping[str, Any],
    seed: int,
    evaluation_set: Optional[Set[int]] = None,
    max_rounds: Optional[int] = None,
    churn: Optional[ChurnSchedule] = None,
    **params: Any,
) -> LocalCountingRun:
    """Algorithm 1: deterministic LOCAL counting (Theorem 1)."""
    if "max_degree" not in params:
        params = {**params, "max_degree": max(2, graph.max_degree())}
    local_params = LocalParameters(**params)
    adversary = make_adversary(behaviour, local_params, **behaviour_params)
    return run_local_counting(
        graph,
        byzantine=byzantine,
        adversary=adversary,
        params=local_params,
        seed=seed,
        max_rounds=max_rounds,
        evaluation_set=evaluation_set,
        churn=churn,
    )


@PROTOCOLS.register(
    "congest",
    params={
        "required": (),
        "optional": (
            "gamma",
            "delta",
            "eta",
            "d",
            "c1",
            "first_phase",
            "blacklist_enabled",
            "min_suffix",
            "max_rounds",
            "stop_when_all_decided",
        ),
    },
)
def _congest(
    graph: Graph,
    *,
    byzantine: Set[int],
    behaviour: str,
    behaviour_params: Mapping[str, Any],
    seed: int,
    evaluation_set: Optional[Set[int]] = None,
    max_rounds: Optional[int] = None,
    stop_when_all_decided: bool = True,
    churn: Optional[ChurnSchedule] = None,
    **params: Any,
) -> CongestCountingRun:
    """Algorithm 2: randomized small-message CONGEST counting (Theorem 2)."""
    if "d" not in params:
        params = {**params, "d": max(3, graph.max_degree())}
    congest_params = CongestParameters(**params)
    adversary = make_adversary(behaviour, congest_params, **behaviour_params)
    return run_congest_counting(
        graph,
        byzantine=byzantine,
        adversary=adversary,
        params=congest_params,
        seed=seed,
        max_rounds=max_rounds,
        stop_when_all_decided=stop_when_all_decided,
        evaluation_set=evaluation_set,
        churn=churn,
    )


# --------------------------------------------------------------------------- #
# The protocol zoo (PR 10): consensus families and baselines behind the same
# entry point.  Zoo adversaries are built with ``protocol_params=None`` --
# none of the scheduled Algorithm 2 attacks apply to them.
# --------------------------------------------------------------------------- #
@PROTOCOLS.register(
    "benor",
    params={
        "required": (),
        "optional": ("f", "initial", "max_phases", "max_rounds"),
    },
    validate=spec_validate_benor,
)
def _benor(
    graph: Graph,
    *,
    byzantine: Set[int],
    behaviour: str,
    behaviour_params: Mapping[str, Any],
    seed: int,
    evaluation_set: Optional[Set[int]] = None,
    churn: Optional[ChurnSchedule] = None,
    **params: Any,
) -> ZooRun:
    """BenOr-style randomized binary consensus (R1/R2 phases, per-node coins)."""
    adversary = make_adversary(behaviour, None, **behaviour_params)
    return run_benor(
        graph,
        byzantine=byzantine,
        adversary=adversary,
        seed=seed,
        evaluation_set=evaluation_set,
        churn=churn,
        **params,
    )


@PROTOCOLS.register(
    "grouped-bft",
    params={
        "required": (),
        "optional": ("f", "groups", "hops", "initial", "max_rounds"),
    },
    validate=spec_validate_grouped_bft,
)
def _grouped_bft(
    graph: Graph,
    *,
    byzantine: Set[int],
    behaviour: str,
    behaviour_params: Mapping[str, Any],
    seed: int,
    evaluation_set: Optional[Set[int]] = None,
    churn: Optional[ChurnSchedule] = None,
    **params: Any,
) -> ZooRun:
    """Consistent-hash grouped OM(m) agreement with cross-group aggregation."""
    adversary = make_adversary(behaviour, None, **behaviour_params)
    return run_grouped_bft(
        graph,
        byzantine=byzantine,
        adversary=adversary,
        seed=seed,
        evaluation_set=evaluation_set,
        churn=churn,
        **params,
    )


@PROTOCOLS.register(
    "flooding",
    params={"required": (), "optional": ("phase_rounds",)},
)
def _flooding(
    graph: Graph,
    *,
    byzantine: Set[int],
    behaviour: str,
    behaviour_params: Mapping[str, Any],
    seed: int,
    evaluation_set: Optional[Set[int]] = None,
    churn: Optional[ChurnSchedule] = None,
    **params: Any,
) -> ZooRun:
    """Flooding-based diameter estimation (Section 1.2 baseline)."""
    adversary = make_adversary(behaviour, None, **behaviour_params)
    return run_flooding_protocol(
        graph,
        byzantine=byzantine,
        adversary=adversary,
        seed=seed,
        evaluation_set=evaluation_set,
        churn=churn,
        **params,
    )


@PROTOCOLS.register(
    "geometric",
    params={"required": (), "optional": ("rounds_budget",)},
)
def _geometric(
    graph: Graph,
    *,
    byzantine: Set[int],
    behaviour: str,
    behaviour_params: Mapping[str, Any],
    seed: int,
    evaluation_set: Optional[Set[int]] = None,
    churn: Optional[ChurnSchedule] = None,
    **params: Any,
) -> ZooRun:
    """Geometric-distribution maximum propagation (Section 1.2 baseline)."""
    adversary = make_adversary(behaviour, None, **behaviour_params)
    return run_geometric_protocol(
        graph,
        byzantine=byzantine,
        adversary=adversary,
        seed=seed,
        evaluation_set=evaluation_set,
        churn=churn,
        **params,
    )


@PROTOCOLS.register(
    "spanning-tree",
    params={"required": (), "optional": ("phase_rounds",)},
)
def _spanning_tree(
    graph: Graph,
    *,
    byzantine: Set[int],
    behaviour: str,
    behaviour_params: Mapping[str, Any],
    seed: int,
    evaluation_set: Optional[Set[int]] = None,
    churn: Optional[ChurnSchedule] = None,
    **params: Any,
) -> ZooRun:
    """BFS spanning-tree count-and-spread (Section 1.2 baseline)."""
    adversary = make_adversary(behaviour, None, **behaviour_params)
    return run_spanning_tree_protocol(
        graph,
        byzantine=byzantine,
        adversary=adversary,
        seed=seed,
        evaluation_set=evaluation_set,
        churn=churn,
        **params,
    )


@PROTOCOLS.register(
    "support-estimation",
    params={"required": (), "optional": ("rounds_budget", "k")},
)
def _support_estimation(
    graph: Graph,
    *,
    byzantine: Set[int],
    behaviour: str,
    behaviour_params: Mapping[str, Any],
    seed: int,
    evaluation_set: Optional[Set[int]] = None,
    churn: Optional[ChurnSchedule] = None,
    **params: Any,
) -> ZooRun:
    """Exponential-minimum support estimation (Section 1.2 baseline)."""
    adversary = make_adversary(behaviour, None, **behaviour_params)
    return run_support_estimation_protocol(
        graph,
        byzantine=byzantine,
        adversary=adversary,
        seed=seed,
        evaluation_set=evaluation_set,
        churn=churn,
        **params,
    )
