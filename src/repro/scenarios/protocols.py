"""Protocol registrations for the scenario API.

Each entry owns the full "run protocol P" recipe: build the parameter object
from the spec's protocol params (defaulting degree bounds from the graph the
way the CLI historically did), construct the adversary behaviour *with those
parameters* (scheduled Algorithm 2 attacks read their round schedule from
them), and execute the run.  Entries return the protocol's run object
(``LocalCountingRun`` / ``CongestCountingRun``), whose ``.outcome`` feeds the
generic metrics extraction in :mod:`repro.scenarios.execute`.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Set

from repro.core.congest_counting import CongestCountingRun, run_congest_counting
from repro.core.local_counting import LocalCountingRun, run_local_counting
from repro.core.parameters import CongestParameters, LocalParameters
from repro.graphs.graph import Graph
from repro.scenarios.behaviours import make_adversary
from repro.scenarios.registry import PROTOCOLS
from repro.simulator.churn import ChurnSchedule

__all__ = ["run_protocol"]


def run_protocol(
    name: str,
    graph: Graph,
    *,
    byzantine: Set[int],
    behaviour: str,
    behaviour_params: Mapping[str, Any],
    seed: int,
    evaluation_set: Optional[Set[int]] = None,
    churn: Optional[ChurnSchedule] = None,
    **params: Any,
):
    """Run the registered protocol ``name`` and return its run object."""
    return PROTOCOLS.build(
        name,
        graph,
        byzantine=byzantine,
        behaviour=behaviour,
        behaviour_params=behaviour_params,
        seed=seed,
        evaluation_set=evaluation_set,
        churn=churn,
        **params,
    )


@PROTOCOLS.register("local")
def _local(
    graph: Graph,
    *,
    byzantine: Set[int],
    behaviour: str,
    behaviour_params: Mapping[str, Any],
    seed: int,
    evaluation_set: Optional[Set[int]] = None,
    max_rounds: Optional[int] = None,
    churn: Optional[ChurnSchedule] = None,
    **params: Any,
) -> LocalCountingRun:
    """Algorithm 1: deterministic LOCAL counting (Theorem 1)."""
    if "max_degree" not in params:
        params = {**params, "max_degree": max(2, graph.max_degree())}
    local_params = LocalParameters(**params)
    adversary = make_adversary(behaviour, local_params, **behaviour_params)
    return run_local_counting(
        graph,
        byzantine=byzantine,
        adversary=adversary,
        params=local_params,
        seed=seed,
        max_rounds=max_rounds,
        evaluation_set=evaluation_set,
        churn=churn,
    )


@PROTOCOLS.register("congest")
def _congest(
    graph: Graph,
    *,
    byzantine: Set[int],
    behaviour: str,
    behaviour_params: Mapping[str, Any],
    seed: int,
    evaluation_set: Optional[Set[int]] = None,
    max_rounds: Optional[int] = None,
    stop_when_all_decided: bool = True,
    churn: Optional[ChurnSchedule] = None,
    **params: Any,
) -> CongestCountingRun:
    """Algorithm 2: randomized small-message CONGEST counting (Theorem 2)."""
    if "d" not in params:
        params = {**params, "d": max(3, graph.max_degree())}
    congest_params = CongestParameters(**params)
    adversary = make_adversary(behaviour, congest_params, **behaviour_params)
    return run_congest_counting(
        graph,
        byzantine=byzantine,
        adversary=adversary,
        params=congest_params,
        seed=seed,
        max_rounds=max_rounds,
        stop_when_all_decided=stop_when_all_decided,
        evaluation_set=evaluation_set,
        churn=churn,
    )
