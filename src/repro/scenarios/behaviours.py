"""Adversary-behaviour registrations for the scenario API.

Construction is *uniform*: every factory takes the running protocol's
parameter object first (scheduled Algorithm 2 attacks derive their
phase/iteration schedule from it; everything else ignores it) plus the
behaviour's own keyword parameters.  Call sites therefore never branch on the
behaviour name -- the historical
``behaviour_cls() if behaviour == "silent" else behaviour_cls(params)``
pattern lives here, once.

The ``targets`` tag records which protocols an attack is designed against;
it is informational (shown by ``scenario list``), not enforced -- the paper's
adversaries may behave arbitrarily, including running the "wrong" attack.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.adversary.strategies import (
    BeaconFloodAdversary,
    ContinueFloodAdversary,
    ContinueSuppressAdversary,
    FakeTopologyAdversary,
    InconsistentTopologyAdversary,
    PathTamperAdversary,
    ValueFakingAdversary,
)
from repro.core.parameters import CongestParameters
from repro.scenarios.registry import ADVERSARIES
from repro.simulator.byzantine import Adversary, SilentAdversary

__all__ = ["make_adversary"]


def make_adversary(
    name: str, protocol_params: Optional[object] = None, **params: Any
) -> Adversary:
    """Construct the registered behaviour ``name``.

    ``protocol_params`` is the parameter object of the protocol under attack
    (:class:`CongestParameters`, ``LocalParameters``, or ``None``); scheduled
    Algorithm 2 attacks read their round schedule from it when it is a
    :class:`CongestParameters`, and every other behaviour ignores it.
    """
    return ADVERSARIES.build(name, protocol_params, **params)


def _schedule_params(protocol_params: Optional[object]) -> Optional[CongestParameters]:
    """The schedule source for Algorithm 2 attacks (None = their default)."""
    return protocol_params if isinstance(protocol_params, CongestParameters) else None


@ADVERSARIES.register("silent", targets=("local", "congest"))
def _silent(protocol_params: Optional[object] = None, **params: Any) -> Adversary:
    """Pure omission: Byzantine nodes never send anything."""
    return SilentAdversary(**params)


@ADVERSARIES.register("fake-topology", targets=("local",))
def _fake_topology(protocol_params: Optional[object] = None, **params: Any) -> Adversary:
    """Algorithm 1 attack: advertise a fabricated subnetwork (Remark 1)."""
    return FakeTopologyAdversary(**params)


@ADVERSARIES.register("inconsistent", targets=("local",))
def _inconsistent(protocol_params: Optional[object] = None, **params: Any) -> Adversary:
    """Algorithm 1 attack: claim false incident-edge sets for honest nodes."""
    return InconsistentTopologyAdversary(**params)


@ADVERSARIES.register("beacon-flood", targets=("congest",))
def _beacon_flood(protocol_params: Optional[object] = None, **params: Any) -> Adversary:
    """Algorithm 2 attack: emit fresh fake beacons every beacon-window round."""
    return BeaconFloodAdversary(_schedule_params(protocol_params), **params)


@ADVERSARIES.register("path-tamper", targets=("congest",))
def _path_tamper(protocol_params: Optional[object] = None, **params: Any) -> Adversary:
    """Algorithm 2 attack: flood beacons with scrambled/framing path prefixes."""
    return PathTamperAdversary(_schedule_params(protocol_params), **params)


@ADVERSARIES.register("continue-flood", targets=("congest",))
def _continue_flood(protocol_params: Optional[object] = None, **params: Any) -> Adversary:
    """Algorithm 2 attack: spam continue messages to prevent quiescence."""
    return ContinueFloodAdversary(_schedule_params(protocol_params), **params)


@ADVERSARIES.register("continue-suppress", targets=("congest",))
def _continue_suppress(protocol_params: Optional[object] = None, **params: Any) -> Adversary:
    """Omission attack restated for the CONGEST protocol (sends nothing)."""
    return ContinueSuppressAdversary(**params)


@ADVERSARIES.register("value-faking", targets=("baseline",))
def _value_faking(protocol_params: Optional[object] = None, **params: Any) -> Adversary:
    """Baseline attack: inject absurd values into non-resilient estimators."""
    return ValueFakingAdversary(**params)
