"""Graph-family registrations for the scenario API.

Each entry is a uniform builder ``fn(*, seed, **params) -> Graph``.  Builders
for deterministic constructions simply ignore ``seed``; builders whose natural
parameterization is not ``n`` (hypercubes, Margulis tori, barbells) derive
their shape parameter from ``n`` exactly the way the historical CLI did, while
still accepting the precise parameter (``dimension``, ``side``,
``clique_size``) for spec authors who want exact control.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.graphs.expanders import hypercube_graph, margulis_torus_graph
from repro.graphs.generators import (
    barbell_graph,
    complete_graph,
    cycle_graph,
    path_graph,
    small_world_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.hnd import configuration_model_graph, hnd_random_regular_graph
from repro.scenarios.registry import GRAPHS

__all__ = ["build_graph"]


def build_graph(name: str, *, seed: int, **params: object) -> Graph:
    """Build the registered graph family ``name`` with ``params``."""
    return GRAPHS.build(name, seed=seed, **params)


@GRAPHS.register("hnd")
def _hnd(*, n: int, degree: int = 8, seed: int = 0) -> Graph:
    """H(n, d) permutation-model random regular graph (union of d/2 Hamiltonian cycles)."""
    return hnd_random_regular_graph(n, degree, seed=seed)


@GRAPHS.register("configuration")
def _configuration(*, n: int, degree: int = 8, seed: int = 0) -> Graph:
    """Configuration-model random regular graph."""
    return configuration_model_graph(n, degree, seed=seed)


@GRAPHS.register("margulis")
def _margulis(*, n: Optional[int] = None, side: Optional[int] = None, seed: int = 0) -> Graph:
    """Margulis-style torus expander (side derived from n unless given)."""
    if side is None:
        if n is None:
            raise ValueError("margulis graph needs 'n' or 'side'")
        side = max(2, int(round(math.sqrt(n))))
    return margulis_torus_graph(side)


@GRAPHS.register("hypercube")
def _hypercube(
    *, n: Optional[int] = None, dimension: Optional[int] = None, seed: int = 0
) -> Graph:
    """Boolean hypercube expander (dimension derived from n unless given)."""
    if dimension is None:
        if n is None:
            raise ValueError("hypercube graph needs 'n' or 'dimension'")
        dimension = max(1, int(round(math.log2(n))))
    return hypercube_graph(dimension)


@GRAPHS.register("cycle")
def _cycle(*, n: int, seed: int = 0) -> Graph:
    """Cycle graph (low-expansion negative control)."""
    return cycle_graph(n)


@GRAPHS.register("path")
def _path(*, n: int, seed: int = 0) -> Graph:
    """Path graph (low-expansion negative control)."""
    return path_graph(n)


@GRAPHS.register("complete")
def _complete(*, n: int, seed: int = 0) -> Graph:
    """Complete graph."""
    return complete_graph(n)


@GRAPHS.register("star")
def _star(*, n: int, seed: int = 0) -> Graph:
    """Star graph (irregular-degree negative control)."""
    return star_graph(n)


@GRAPHS.register("barbell")
def _barbell(
    *,
    n: Optional[int] = None,
    clique_size: Optional[int] = None,
    bridge_length: int = 2,
    seed: int = 0,
) -> Graph:
    """Two cliques joined by a bridge (clique size n//2 unless given)."""
    if clique_size is None:
        if n is None:
            raise ValueError("barbell graph needs 'n' or 'clique_size'")
        clique_size = n // 2
    return barbell_graph(clique_size, bridge_length)


@GRAPHS.register("small-world")
def _small_world(
    *, n: int, k: int = 4, rewire_probability: float = 0.1, seed: int = 0
) -> Graph:
    """Watts-Strogatz-style small-world graph (prior-work comparison substrate)."""
    return small_world_graph(n, k=k, rewire_probability=rewire_probability, seed=seed)
