"""The declarative scenario spec: one JSON document per paper-style claim.

A :class:`Scenario` names one component from each of the five registries
(graph family x adversary behaviour x placement x protocol x churn
schedule), carries their parameters, and lists the seeds to run.  It is plain data: it round-trips
through ``canonical_json`` untouched, validates against the registries
without constructing anything, and **compiles to a list of
:class:`~repro.runner.config.SweepConfig`** (one per seed, all referencing
the generic ``scenario.run`` task) -- so scenarios ride the existing
``SweepRunner`` worker pool and artifact cache unchanged.

Seed derivation
---------------
Each compiled cell has one master seed (from :attr:`Scenario.seeds`).  The
graph and placement components may declare a ``seed_offset``; their effective
seed is ``cell seed + seed_offset``.  This reproduces the historical drivers'
per-component seed spreading (e.g. E9 building its graph from ``seed + n``)
exactly, from pure data.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.runner.config import SweepConfig
from repro.scenarios.registry import CHURN, PROTOCOLS, all_registries

__all__ = ["ComponentSpec", "Scenario", "SCENARIO_TASK"]

#: Name of the generic sweep task every scenario compiles to
#: (registered in :mod:`repro.scenarios.execute`).
SCENARIO_TASK = "scenario.run"


def _plain(value: Any, where: str) -> Any:
    """Deep-copy ``value`` into plain JSON types (tuples become lists)."""
    if isinstance(value, Mapping):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(f"{where}: mapping keys must be strings, got {key!r}")
            out[key] = _plain(item, f"{where}.{key}")
        return out
    if isinstance(value, (list, tuple)):
        return [_plain(item, f"{where}[{i}]") for i, item in enumerate(value)]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"{where}: {value!r} is not JSON-serializable scenario data")


@dataclass(frozen=True)
class ComponentSpec:
    """One registry component reference: a name plus its parameters."""

    name: str
    params: Dict[str, Any] = field(default_factory=dict)
    #: Added to the cell seed when this component consumes randomness
    #: (used by the graph and placement axes; ignored by the rest).
    seed_offset: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _plain(self.params, f"{self.name}.params"))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "params": dict(self.params),
            "seed_offset": self.seed_offset,
        }

    @classmethod
    def from_dict(cls, value: Union[str, Mapping[str, Any]]) -> "ComponentSpec":
        """Parse a component reference (a full dict or a bare name string)."""
        if isinstance(value, str):
            return cls(name=value)
        if not isinstance(value, Mapping):
            raise TypeError(f"component spec must be a name or mapping, got {value!r}")
        unknown = set(value) - {"name", "params", "seed_offset"}
        if unknown:
            raise ValueError(f"unknown component spec keys: {sorted(unknown)}")
        if "name" not in value:
            raise ValueError(f"component spec {dict(value)!r} is missing 'name'")
        return cls(
            name=value["name"],
            params=dict(value.get("params", {})),
            seed_offset=int(value.get("seed_offset", 0)),
        )


@dataclass(frozen=True)
class Scenario:
    """One declarative workload: graph x adversary x placement x protocol.

    Attributes
    ----------
    graph, adversary, placement, protocol:
        Component references into the registries.  The placement's
        ``count`` parameter is the Byzantine budget (0 = benign run).
    churn:
        Churn-schedule reference (fifth axis).  Defaults to ``none`` --
        a static topology -- and is *omitted* from serialized dicts when
        left at the default, so pre-churn specs, golden tables, and
        artifact-cache content hashes are untouched.
    params:
        Scenario-level options consumed by the generic executor:
        ``evaluation`` (which nodes the outcome statistics evaluate),
        ``band`` (the constant-factor approximation band), and ``check``
        (a named theorem check) -- see SCENARIOS.md.
    seeds:
        Master seeds; the scenario compiles to one sweep config per seed.
    name:
        Optional display name.
    """

    graph: ComponentSpec
    adversary: ComponentSpec
    placement: ComponentSpec
    protocol: ComponentSpec
    churn: ComponentSpec = field(default_factory=lambda: ComponentSpec("none"))
    params: Dict[str, Any] = field(default_factory=dict)
    seeds: Tuple[int, ...] = (0,)
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _plain(self.params, "scenario.params"))
        seeds = tuple(int(s) for s in self.seeds)
        if not seeds:
            raise ValueError("a scenario needs at least one seed")
        object.__setattr__(self, "seeds", seeds)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        out = {
            "name": self.name,
            "graph": self.graph.to_dict(),
            "adversary": self.adversary.to_dict(),
            "placement": self.placement.to_dict(),
            "protocol": self.protocol.to_dict(),
            "params": dict(self.params),
            "seeds": list(self.seeds),
        }
        # The churn axis is serialized only when it deviates from the static
        # default: existing specs, goldens, and cache hashes stay byte-stable.
        if self.churn != ComponentSpec("none"):
            out["churn"] = self.churn.to_dict()
        return out

    @classmethod
    def from_dict(cls, value: Mapping[str, Any]) -> "Scenario":
        if not isinstance(value, Mapping):
            raise TypeError(f"scenario spec must be a mapping, got {value!r}")
        required = {"graph", "adversary", "placement", "protocol"}
        missing = required - set(value)
        if missing:
            raise ValueError(f"scenario spec is missing fields: {sorted(missing)}")
        unknown = set(value) - required - {"name", "params", "seeds", "churn"}
        if unknown:
            raise ValueError(f"unknown scenario spec keys: {sorted(unknown)}")
        return cls(
            graph=ComponentSpec.from_dict(value["graph"]),
            adversary=ComponentSpec.from_dict(value["adversary"]),
            placement=ComponentSpec.from_dict(value["placement"]),
            protocol=ComponentSpec.from_dict(value["protocol"]),
            churn=ComponentSpec.from_dict(value.get("churn", "none")),
            params=dict(value.get("params", {})),
            seeds=tuple(value.get("seeds", (0,))),
            name=str(value.get("name", "")),
        )

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------ #
    # Validation and compilation
    # ------------------------------------------------------------------ #
    def validate(self) -> "Scenario":
        """Check every component name against its registry.

        Raises :class:`~repro.scenarios.registry.UnknownComponentError`
        (a ``ValueError``) carrying the list of valid names.  Churn
        schedules naming explicit node ids are additionally range-checked
        against the graph size (when the graph spec carries ``n``), with the
        offending spec path in the error -- mirroring the compile-time
        non-finite rejection.  Protocol params are checked against the
        registry entry's declared parameter surface and envelope validator
        (see :mod:`repro.scenarios.protocols`), so an unknown or
        out-of-envelope protocol param fails at compile time with its
        ``scenario.protocol.params.<key>`` path instead of mid-run.
        """
        for axis, registry in all_registries().items():
            registry.get(getattr(self, axis).name)
        self._validate_churn_node_ids()
        self._validate_protocol_params()
        return self

    def _validate_churn_node_ids(self) -> None:
        """Reject churn params naming node ids outside ``[0, n)``.

        Which churn params hold node ids is declared by the registry entry
        (the ``node_id_params`` tag), so new schedule generators opt into the
        check without edits here.  Graphs whose spec does not carry ``n``
        (e.g. a hypercube given by ``dimension``) defer to the engine's
        runtime range check.
        """
        n = self.graph.params.get("n")
        if not isinstance(n, int):
            return
        entry = CHURN.get(self.churn.name)
        for param in entry.tags.get("node_id_params", ()):
            ids = self.churn.params.get(param)
            if ids is None:
                continue
            for index, node in enumerate(ids):
                if not isinstance(node, int) or not 0 <= node < n:
                    raise ValueError(
                        f"scenario.churn.params.{param}[{index}]: node id "
                        f"{node!r} outside graph range [0, {n})"
                    )

    def _validate_protocol_params(self) -> None:
        """Reject unknown or out-of-envelope protocol params at compile time.

        A protocol entry's parameter surface is declared by its registry
        ``params`` tag (``{"required": (...), "optional": (...)}``); entries
        may additionally carry a ``validate`` tag -- a callable
        ``(params, n) -> None`` raising ``ValueError`` whose message starts
        with the offending parameter name (e.g. the ``grouped-bft``
        ``n > 3f`` honest envelope).  Entries without a ``params`` tag skip
        the check entirely, so third-party registrations opt in rather than
        break.
        """
        entry = PROTOCOLS.get(self.protocol.name)
        surface = entry.tags.get("params")
        if surface is not None:
            required = tuple(surface.get("required", ()))
            known = set(required) | set(surface.get("optional", ()))
            for key in self.protocol.params:
                if key not in known:
                    raise ValueError(
                        f"scenario.protocol.params.{key}: unknown parameter of "
                        f"protocol {self.protocol.name!r}; known params: "
                        f"{sorted(known)}"
                    )
            for key in required:
                if key not in self.protocol.params:
                    raise ValueError(
                        f"scenario.protocol.params.{key}: required by "
                        f"protocol {self.protocol.name!r} but missing"
                    )
        validator = entry.tags.get("validate")
        if validator is not None:
            n = self.graph.params.get("n")
            try:
                validator(self.protocol.params, n if isinstance(n, int) else None)
            except ValueError as exc:
                raise ValueError(f"scenario.protocol.params.{exc}") from None

    def compile(self) -> List[SweepConfig]:
        """One ``scenario.run`` sweep config per seed (validated).

        The display-only ``name`` and the seed list are stripped from the
        compiled params so the artifact-cache content hash depends only on
        what the cell actually computes.
        """
        self.validate()
        spec = self.to_dict()
        del spec["seeds"]
        del spec["name"]
        return [SweepConfig(SCENARIO_TASK, {"spec": spec, "seed": seed}) for seed in self.seeds]
