"""String-keyed component registries underpinning the declarative scenario API.

Every paper claim has the shape "protocol P on graph family G under adversary
A with placement L".  Each of those four axes is a :class:`ComponentRegistry`:
a mapping from a stable string name to a constructor, populated by the
``@GRAPHS.register(...)``-style decorators in the sibling modules at import
time.  A :class:`~repro.scenarios.spec.Scenario` references components *by
name only*, which is what keeps scenario specs JSON-serializable, shippable to
worker processes, and open for extension (registering a new component makes it
available to the CLI, the sweep runner, and every driver at once -- no call
site edits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "ComponentRegistry",
    "RegistryEntry",
    "UnknownComponentError",
    "GRAPHS",
    "ADVERSARIES",
    "PLACEMENTS",
    "PROTOCOLS",
    "CHURN",
    "all_registries",
]


class UnknownComponentError(ValueError):
    """An unregistered component name (carries the list of valid names)."""

    def __init__(self, kind: str, name: str, options: List[str]) -> None:
        self.kind = kind
        self.name = name
        self.options = options
        super().__init__(
            f"unknown {kind} {name!r}; registered {kind} names: {options}"
        )


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component: its constructor plus display metadata."""

    name: str
    fn: Callable[..., Any]
    description: str = ""
    #: Free-form tags (e.g. which protocols an adversary behaviour targets).
    tags: Mapping[str, Any] = field(default_factory=dict)

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.fn(*args, **kwargs)


class ComponentRegistry:
    """A named family of exchangeable components, registered via decorator.

    Usage::

        GRAPHS = ComponentRegistry("graph family")

        @GRAPHS.register("hnd")
        def _hnd(*, n, degree=8, seed=0):
            '''H(n, d) permutation-model random regular graph.'''
            return hnd_random_regular_graph(n, degree, seed=seed)
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, RegistryEntry] = {}

    def register(
        self, name: str, **tags: Any
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator registering a constructor under ``name``."""

        def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
            existing = self._entries.get(name)
            if existing is not None and existing.fn is not fn:
                raise ValueError(f"{self.kind} {name!r} registered twice")
            description = (fn.__doc__ or "").strip().splitlines()
            self._entries[name] = RegistryEntry(
                name=name,
                fn=fn,
                description=description[0] if description else "",
                tags=dict(tags),
            )
            return fn

        return decorate

    def get(self, name: str) -> RegistryEntry:
        """The entry registered under ``name`` (raises with the valid names)."""
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownComponentError(self.kind, name, self.names()) from None

    def build(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Look up ``name`` and call its constructor."""
        return self.get(name).fn(*args, **kwargs)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def names(self) -> List[str]:
        """Sorted registered names."""
        return sorted(self._entries)

    def entries(self) -> List[RegistryEntry]:
        """Registered entries in name order."""
        return [self._entries[name] for name in self.names()]


#: The five axes of a scenario.  Populated by the sibling component modules
#: (imported from ``repro.scenarios.__init__``) at package import time.
GRAPHS = ComponentRegistry("graph family")
ADVERSARIES = ComponentRegistry("adversary behaviour")
PLACEMENTS = ComponentRegistry("placement")
PROTOCOLS = ComponentRegistry("protocol")
CHURN = ComponentRegistry("churn schedule")


def all_registries() -> Dict[str, ComponentRegistry]:
    """The five registries keyed by their scenario-spec field name."""
    return {
        "graph": GRAPHS,
        "adversary": ADVERSARIES,
        "placement": PLACEMENTS,
        "protocol": PROTOCOLS,
        "churn": CHURN,
    }
