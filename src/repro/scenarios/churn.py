"""Churn-schedule registrations for the scenario API (the fifth axis).

Each entry is a uniform builder ``fn(graph, *, seed, **params) ->
Optional[ChurnSchedule]``: it sees the *materialized* graph (so generators can
sample existing edges or cut a bisection) plus the cell seed, and returns the
:class:`~repro.simulator.churn.ChurnSchedule` the engine applies mid-run --
or ``None`` for the static default, which keeps the run on the exact
pre-churn code paths.  Schedules are derived deterministically from the seed
via :func:`~repro.simulator.rng.split_seed`, so a scenario spec plus a seed
fully reproduces the dynamic topology.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graphs.graph import Graph
from repro.scenarios.registry import CHURN
from repro.simulator.churn import ChurnSchedule
from repro.simulator.rng import split_seed

__all__ = ["build_churn"]


def build_churn(
    name: str, graph: Graph, *, seed: int, **params: object
) -> Optional[ChurnSchedule]:
    """Build the registered churn schedule ``name`` for ``graph``."""
    return CHURN.build(name, graph, seed=seed, **params)


def _merge(
    events: Dict[int, Dict[str, List]], round_number: int, key: str, items: Sequence
) -> None:
    events.setdefault(round_number, {}).setdefault(key, []).extend(items)


@CHURN.register("none")
def _none(graph: Graph, *, seed: int = 0) -> None:
    """Static topology (the default): no mid-run deltas, pre-churn code paths."""
    return None


@CHURN.register("edge-flip")
def _edge_flip(
    graph: Graph,
    *,
    seed: int = 0,
    flips: int = 2,
    start: int = 2,
    duration: int = 2,
    repeats: int = 1,
    period: Optional[int] = None,
) -> Optional[ChurnSchedule]:
    """Seeded edge flips: cut ``flips`` existing edges, restore them later.

    Each cycle ``r`` (``repeats`` of them, ``period`` rounds apart, default
    ``duration + 2``) samples ``flips`` distinct edges of the *original*
    graph, removes them before round ``start + r * period``, and re-adds the
    same edges ``duration`` rounds later.  Node count never changes, so this
    isolates the protocols' reaction to link volatility.
    """
    edges = [(u, v) for u in range(graph.n) for v in graph.adjacency[u] if u < v]
    if not edges or flips <= 0 or repeats <= 0:
        return None
    rng = random.Random(split_seed(seed, "churn", "edge-flip"))
    cycle_gap = (duration + 2) if period is None else int(period)
    events: Dict[int, Dict[str, List]] = {}
    for cycle in range(int(repeats)):
        chosen = rng.sample(edges, min(int(flips), len(edges)))
        cut_round = int(start) + cycle * cycle_gap
        _merge(events, cut_round, "remove_edges", chosen)
        _merge(events, cut_round + int(duration), "add_edges", chosen)
    return ChurnSchedule.from_events(events)


@CHURN.register("node-leave-join", node_id_params=("nodes",))
def _node_leave_join(
    graph: Graph,
    *,
    seed: int = 0,
    count: int = 1,
    start: int = 3,
    absence: int = 3,
    repeats: int = 1,
    period: Optional[int] = None,
    nodes: Optional[Sequence[int]] = None,
    rejoin: bool = True,
) -> Optional[ChurnSchedule]:
    """Seeded node departures with later re-joins restoring original edges.

    Each cycle picks ``count`` nodes (seeded sample, or the explicit
    ``nodes`` list), removes them before round ``start + r * period``
    (default period ``absence + 2``), and -- unless ``rejoin`` is false --
    re-admits them ``absence`` rounds later together with their original
    incident edges.  Re-joining honest nodes come back as *fresh* protocol
    instances, so re-convergence is measured from a cold start.
    """
    if count <= 0 and not nodes:
        return None
    rng = random.Random(split_seed(seed, "churn", "node-leave-join"))
    cycle_gap = (int(absence) + 2) if period is None else int(period)
    events: Dict[int, Dict[str, List]] = {}
    for cycle in range(max(1, int(repeats))):
        if nodes is not None:
            chosen = [int(u) for u in nodes]
        else:
            chosen = rng.sample(range(graph.n), min(int(count), graph.n))
        leave_round = int(start) + cycle * cycle_gap
        _merge(events, leave_round, "leave_nodes", chosen)
        if rejoin:
            rejoin_round = leave_round + int(absence)
            _merge(events, rejoin_round, "join_nodes", chosen)
            restored = {
                (u, v) if u < v else (v, u)
                for u in chosen
                for v in graph.adjacency[u]
            }
            _merge(events, rejoin_round, "add_edges", sorted(restored))
    return ChurnSchedule.from_events(events)


@CHURN.register("burst-partition", node_id_params=("left",))
def _burst_partition(
    graph: Graph,
    *,
    seed: int = 0,
    at: int = 2,
    heal_after: int = 3,
    left: Optional[Sequence[int]] = None,
) -> Optional[ChurnSchedule]:
    """Transient bisection: cut every crossing edge at once, heal later.

    Splits the nodes into two halves (a seeded random half, or the explicit
    ``left`` list), removes every edge crossing the cut before round ``at``,
    and restores all of them ``heal_after`` rounds later.  The burst is the
    worst single-round delta a schedule can express short of departures.
    """
    if left is not None:
        left_set = {int(u) for u in left}
    else:
        rng = random.Random(split_seed(seed, "churn", "burst-partition"))
        left_set = set(rng.sample(range(graph.n), graph.n // 2))
    crossing: List[Tuple[int, int]] = [
        (u, v)
        for u in range(graph.n)
        for v in graph.adjacency[u]
        if u < v and ((u in left_set) != (v in left_set))
    ]
    if not crossing:
        return None
    events: Dict[int, Dict[str, List]] = {
        int(at): {"remove_edges": crossing},
        int(at) + int(heal_after): {"add_edges": crossing},
    }
    return ChurnSchedule.from_events(events)
