"""Generic scenario execution: the ``scenario.run`` sweep task.

One cell = one (scenario, seed) pair.  Execution materializes the scenario
through the registries -- build the graph, place the Byzantine nodes,
construct the evaluation set, run the protocol (which also constructs the
adversary behaviour from the protocol's parameters) -- and then extracts a
*uniform metrics dict* from the outcome.  Drivers aggregate those metrics
into their tables; because every metric is computed with the same
``CountingOutcome`` calls the historical per-driver trial functions used,
the regenerated tables are byte-identical to the pre-scenario ones.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Set, Union

from repro.analysis.accuracy import corollary1_check, theorem1_check, theorem2_check
from repro.graphs.expansion import good_set
from repro.graphs.graph import Graph
from repro.graphs.neighborhoods import ball_of_set
from repro.runner.registry import sweep_task
from repro.scenarios.churn import build_churn
from repro.scenarios.graphs import build_graph
from repro.scenarios.placements import place_byzantine
from repro.scenarios.protocols import run_protocol
from repro.scenarios.spec import SCENARIO_TASK, Scenario

__all__ = ["MaterializedCell", "materialize", "execute_cell", "DEFAULT_BAND"]

#: Definition 2's constant-factor band used across the experiments.
DEFAULT_BAND = (0.35, 1.6)

_CHECKS = {
    "theorem1": theorem1_check,
    "theorem2": theorem2_check,
    "corollary1": corollary1_check,
}


@dataclass
class MaterializedCell:
    """Everything one scenario cell produced (for callers needing more than
    the metrics dict, e.g. the CLI ``run`` command printing histograms)."""

    scenario: Scenario
    seed: int
    graph: Graph
    byzantine: Set[int]
    evaluation_set: Optional[Set[int]]
    run: Any
    metrics: Dict[str, Any]


def _evaluation_set(
    spec: Optional[Mapping[str, Any]], graph: Graph, byzantine: Set[int]
) -> Optional[Set[int]]:
    """Build the evaluation set named by the scenario's ``evaluation`` param.

    - ``None`` / ``{"kind": "all"}``: all honest nodes.
    - ``{"kind": "far", "radius": r}``: honest nodes at distance > r from
      every Byzantine node (the small-scale GoodTL stand-in).
    - ``{"kind": "good", "gamma": g}``: the Lemma 1 ``Good`` set.
    """
    if spec is None:
        return None
    kind = spec.get("kind", "all")
    if kind == "all":
        return None
    if kind == "far":
        radius = int(spec.get("radius", 1))
        contaminated = ball_of_set(graph, byzantine, radius)
        return {
            u
            for u in range(graph.n)
            if u not in contaminated and u not in byzantine
        }
    if kind == "good":
        return good_set(graph, byzantine, float(spec["gamma"]))
    raise ValueError(
        f"unknown evaluation kind {kind!r}; options: ['all', 'far', 'good']"
    )


def _run_check(
    spec: Optional[Mapping[str, Any]],
    outcome: Any,
    *,
    num_byzantine: int,
    round_budget: Optional[int],
) -> Optional[float]:
    """Evaluate the named theorem check, returning a 1.0/0.0 pass flag."""
    if spec is None:
        return None
    kwargs = {k: v for k, v in spec.items() if k != "name"}
    name = spec.get("name")
    if name not in _CHECKS:
        raise ValueError(f"unknown check {name!r}; options: {sorted(_CHECKS)}")
    if name == "theorem2":
        kwargs.setdefault("num_byzantine", num_byzantine)
        kwargs.setdefault("round_budget", round_budget)
    report = _CHECKS[name](outcome, **kwargs)
    return 1.0 if report.passed else 0.0


def _collect_metrics(cell: MaterializedCell) -> Dict[str, Any]:
    """The uniform metrics dict of one cell (every value JSON-serializable)."""
    scenario = cell.scenario
    run = cell.run
    outcome = run.outcome
    low, high = scenario.params.get("band", DEFAULT_BAND)

    histogram = Counter(outcome.estimates())
    modal_value, modal_count = (
        histogram.most_common(1)[0] if histogram else (None, 0)
    )
    result_metrics = getattr(getattr(run, "result", None), "metrics", None)
    quiescent = (
        result_metrics.messages_per_round[-1] == 0
        if result_metrics is not None and result_metrics.messages_per_round
        else False
    )
    min_estimate, max_estimate = outcome.estimate_range()
    round_budget = scenario.protocol.params.get("max_rounds")

    metrics = {
        "n": outcome.n,
        "num_byzantine": len(cell.byzantine),
        "eval_nodes": len(outcome.evaluation_set),
        "decided_fraction": outcome.decided_fraction(),
        "decided_fraction_all": outcome.decided_fraction(over_evaluation_set=False),
        "fraction_in_band": outcome.fraction_within_band(low, high),
        "fraction_in_band_all": outcome.fraction_within_band(
            low, high, over_evaluation_set=False
        ),
        "median_estimate": outcome.median_estimate(),
        "median_estimate_all": outcome.median_estimate(over_evaluation_set=False),
        "min_estimate": min_estimate,
        "max_estimate": max_estimate,
        "modal_estimate": modal_value,
        "modal_fraction": modal_count / max(1, len(outcome.records)),
        "max_decision_round": outcome.max_decision_round(),
        "max_decision_round_all": outcome.max_decision_round(
            over_evaluation_set=False
        ),
        "rounds": outcome.max_decision_round() or outcome.rounds_executed,
        "rounds_executed": outcome.rounds_executed,
        "small_message_fraction": outcome.small_message_fraction,
        "messages": outcome.total_messages,
        "bits": outcome.total_bits,
        "quiescent": 1.0 if quiescent else 0.0,
        "check_passed": _run_check(
            scenario.params.get("check"),
            outcome,
            num_byzantine=len(cell.byzantine),
            round_budget=round_budget,
        ),
        **_churn_metrics(cell),
    }
    # Protocol-specific metrics (protocol-zoo run wrappers expose an
    # ``extra_metrics`` dict: agreement rates, decided-value distributions,
    # phases-to-decide, group sizes).  Merged *after* the uniform keys so zoo
    # columns flow through the suite reducers like any other metric; the
    # paper protocols have no such attribute and their metrics dicts -- and
    # hence every existing golden table -- are byte-identical.
    extra = getattr(run, "extra_metrics", None)
    if extra:
        metrics.update(extra)
    return metrics


def _churn_metrics(cell: MaterializedCell) -> Dict[str, Any]:
    """Dynamic-topology metrics (present for every cell; None-valued when the
    run had no churn, so static tables and reducers are unaffected)."""
    result = getattr(cell.run, "result", None)
    metrics = getattr(result, "metrics", None)
    last_churn = getattr(metrics, "last_churn_round", None)
    outcome = cell.run.outcome
    if last_churn is None:
        return {
            "churn_events": getattr(metrics, "churn_events", 0),
            "rounds_to_reconverge": None,
            "stale_estimate_error": None,
        }

    departed = getattr(result, "departed", frozenset())
    # Rounds the network needed after the last delta before going quiet: the
    # final executed round only re-confirms quiescence, hence the -1.
    reconverge = max(0, (outcome.rounds_executed - 1) - last_churn)
    # Surviving nodes that decided *before* the last delta hold estimates of
    # a topology that no longer exists; score them against the live size.
    n_live = max(outcome.n - len(departed), 2)
    log_live = math.log(n_live)
    stale_errors = [
        abs(record.estimate - log_live) / log_live
        for record in outcome.records.values()
        if record.decided
        and record.estimate is not None
        and record.decision_round is not None
        and record.decision_round < last_churn
        and record.node not in departed
    ]
    stale_error = (
        sum(stale_errors) / len(stale_errors) if stale_errors else 0.0
    )
    return {
        "churn_events": metrics.churn_events,
        "rounds_to_reconverge": reconverge,
        "stale_estimate_error": stale_error,
    }


def materialize(
    scenario: Union[Scenario, Mapping[str, Any]], seed: int
) -> MaterializedCell:
    """Execute one (scenario, seed) cell and return all produced objects."""
    if not isinstance(scenario, Scenario):
        scenario = Scenario.from_dict(scenario)
    scenario.validate()

    graph = build_graph(
        scenario.graph.name,
        seed=seed + scenario.graph.seed_offset,
        **scenario.graph.params,
    )
    placement_params = dict(scenario.placement.params)
    count = int(placement_params.pop("count", 0))
    byzantine = place_byzantine(
        scenario.placement.name,
        graph,
        count,
        seed=seed + scenario.placement.seed_offset,
        **placement_params,
    )
    evaluation = _evaluation_set(scenario.params.get("evaluation"), graph, byzantine)
    churn = build_churn(
        scenario.churn.name,
        graph,
        seed=seed + scenario.churn.seed_offset,
        **scenario.churn.params,
    )
    run = run_protocol(
        scenario.protocol.name,
        graph,
        byzantine=byzantine,
        behaviour=scenario.adversary.name,
        behaviour_params=scenario.adversary.params,
        seed=seed,
        evaluation_set=evaluation,
        churn=churn,
        **scenario.protocol.params,
    )
    cell = MaterializedCell(
        scenario=scenario,
        seed=seed,
        graph=graph,
        byzantine=byzantine,
        evaluation_set=evaluation,
        run=run,
        metrics={},
    )
    cell.metrics = _collect_metrics(cell)
    return cell


@sweep_task(SCENARIO_TASK)
def execute_cell(*, spec: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """The generic sweep task every compiled scenario config references."""
    return materialize(spec, seed).metrics
