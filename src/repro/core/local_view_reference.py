"""Retained set-based reference implementation of :class:`LocalView`.

:class:`SetBasedLocalView` is the pre-columnar, ``Dict[int, Set[int]]``-backed
implementation of the Algorithm 1 view structure.  It is **not** used on any
hot path; it exists so that the bitset/columnar rewrite in
:mod:`repro.core.local_counting` can be property-tested against an independent
implementation of the same semantics (see
``tests/test_local_view_incremental.py``): both views are driven with
identical ``integrate`` sequences -- including Byzantine-malformed payloads --
and every observable (vertices, edge sets, adjacency, BFS-layer prefixes,
interior set, expansion-check candidates, and ``integrate``'s return values)
must agree after every step.

The validation order inside :meth:`integrate` matches the columnar
implementation: the ``node_id`` type check runs before the claimed edge set is
touched, so a claim pairing a non-int id with an unhashable edge container is
flagged as inconsistent and skipped instead of aborting the whole delta with a
``TypeError``.  (For an *int* node id, a malformed edge container still raises
exactly as before -- the protocol catches it and treats the whole message as
inconsistent.)
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["SetBasedLocalView"]


class SetBasedLocalView:
    """A node's evolving approximation ``B̂(u, i)`` of the network (set-based).

    Semantically identical to :class:`repro.core.local_counting.LocalView`;
    kept as the independent reference for equivalence testing.
    """

    def __init__(self, own_id: int, neighbor_ids: Iterable[int]) -> None:
        self.own_id = own_id
        self.vertices: Set[int] = {own_id} | set(neighbor_ids)
        self.edge_sets: Dict[int, FrozenSet[int]] = {own_id: frozenset(neighbor_ids)}
        # Symmetric adjacency over all known vertices.
        self._adj: Dict[int, Set[int]] = {v: set() for v in self.vertices}
        own_adj = self._adj[own_id]
        for v in self.edge_sets[own_id]:
            own_adj.add(v)
            self._adj[v].add(own_id)
        # BFS distances from the owner over the view graph; ``_layers[d]`` is
        # the set of vertices at distance exactly d.
        self._dist: Dict[int, int] = {own_id: 0}
        self._layers: List[Set[int]] = [{own_id}]
        if own_adj:
            self._layers.append(set(own_adj))
            for v in own_adj:
                self._dist[v] = 1
        # Interior tracking: ``_missing[v]`` counts the claimed neighbors of
        # the settled vertex v that are not settled yet; ``_waiting[w]`` lists
        # the settled vertices whose interior membership is blocked on w.
        self._missing: Dict[int, int] = {}
        self._waiting: Dict[int, List[int]] = {}
        self._interior: Set[int] = set()
        self._interior_out: Set[int] = set()
        # Claims already integrated, as (node_id, canonical-tuple) values:
        # the value-level analogue of the columnar view's identity-keyed
        # seen-set.  Maintained by both integrate modes, consulted only by
        # the dynamic one (static behavior is untouched).
        self._integrated: Set[Tuple[int, Tuple[int, ...]]] = set()
        self._settle(own_id, self.edge_sets[own_id])

    # -- incremental maintenance ---------------------------------------- #
    def _settle(self, node_id: int, edge_set: FrozenSet[int]) -> None:
        settled = self.edge_sets
        waiting = self._waiting
        missing = 0
        for w in edge_set:
            if w not in settled:
                missing += 1
                waiting.setdefault(w, []).append(node_id)
        if missing:
            self._missing[node_id] = missing
        else:
            self._add_interior(node_id)
        blocked = waiting.pop(node_id, None)
        if blocked:
            missing_of = self._missing
            for v in blocked:
                left = missing_of[v] - 1
                if left:
                    missing_of[v] = left
                else:
                    del missing_of[v]
                    self._add_interior(v)

    def _add_interior(self, v: int) -> None:
        interior = self._interior
        interior.add(v)
        out = self._interior_out
        out.discard(v)
        for w in self._adj[v]:
            if w not in interior:
                out.add(w)

    def _relax_distances(self, queue: "deque[int]") -> None:
        dist = self._dist
        adj = self._adj
        while queue:
            u = queue.popleft()
            du1 = dist[u] + 1
            for w in adj[u]:
                dw = dist.get(w)
                if dw is None or dw > du1:
                    self._set_dist(w, du1)
                    queue.append(w)

    def _set_dist(self, v: int, d: int) -> None:
        old = self._dist.get(v)
        layers = self._layers
        if old is not None:
            layers[old].discard(v)
        self._dist[v] = d
        while len(layers) <= d:
            layers.append(set())
        layers[d].add(v)

    # -- mutation ------------------------------------------------------- #
    def integrate(
        self,
        reported_edges: Sequence[Tuple[int, Tuple[int, ...]]],
        reported_vertices: Sequence[int],
        *,
        max_degree: int,
        allow_updates: bool = False,
    ) -> Tuple[bool, List[Tuple[int, Tuple[int, ...]]], List[int]]:
        """Merge received topology information (reference semantics)."""
        if allow_updates:
            return self._integrate_dynamic(
                reported_edges, reported_vertices, max_degree=max_degree
            )
        inconsistent = False
        new_edge_sets: List[Tuple[int, Tuple[int, ...]]] = []
        new_vertices: List[int] = []
        adj = self._adj
        vertices = self.vertices
        interior = self._interior
        interior_out = self._interior_out
        relax: "deque[int]" = deque()
        dist = self._dist
        for node_id, edge_ids in reported_edges:
            if not isinstance(node_id, int):
                inconsistent = True
                continue
            edge_set = frozenset(edge_ids)
            existing = self.edge_sets.get(node_id)
            if existing is not None:
                if existing != edge_set or not all(
                    map(int.__instancecheck__, edge_set)
                ):
                    inconsistent = True
                else:
                    self._integrated.add((node_id, tuple(sorted(edge_set))))
                continue
            if len(edge_set) > max_degree or node_id in edge_set:
                inconsistent = True
                continue
            if not all(map(int.__instancecheck__, edge_set)):
                inconsistent = True
                continue
            self.edge_sets[node_id] = edge_set
            canonical = tuple(sorted(edge_set))
            self._integrated.add((node_id, canonical))
            new_edge_sets.append((node_id, canonical))
            if node_id not in vertices:
                vertices.add(node_id)
                new_vertices.append(node_id)
            node_adj = adj.setdefault(node_id, set())
            dn = dist.get(node_id)
            for v in edge_set:
                if v not in vertices:
                    vertices.add(v)
                    new_vertices.append(v)
                if v in node_adj:
                    continue
                node_adj.add(v)
                adj.setdefault(v, set()).add(node_id)
                if v in interior:
                    interior_out.add(node_id)
                dv = dist.get(v)
                if dn is not None and (dv is None or dv > dn + 1):
                    self._set_dist(v, dn + 1)
                    relax.append(v)
                elif dv is not None and (dn is None or dn > dv + 1):
                    dn = dv + 1
                    self._set_dist(node_id, dn)
                    relax.append(node_id)
            self._settle(node_id, edge_set)
        for node_id in reported_vertices:
            if not isinstance(node_id, int):
                inconsistent = True
                continue
            if node_id not in vertices:
                vertices.add(node_id)
                new_vertices.append(node_id)
                adj.setdefault(node_id, set())
        if relax:
            self._relax_distances(relax)
        return inconsistent, new_edge_sets, new_vertices

    # -- dynamic topology (churn) ---------------------------------------- #
    def _integrate_dynamic(
        self,
        reported_edges: Sequence[Tuple[int, Tuple[int, ...]]],
        reported_vertices: Sequence[int],
        *,
        max_degree: int,
    ) -> Tuple[bool, List[Tuple[int, Tuple[int, ...]]], List[int]]:
        """Churn-mode integrate (mirrors ``LocalView._integrate_dynamic``).

        Conflicting claims for settled nodes are accepted as updates, claim
        integration is monotone per value (a superseded value stays in the
        integrated set and is silently ignored on replay), and every derived
        structure is rebuilt from the settled claims when anything changed.
        """
        inconsistent = False
        new_edge_sets: List[Tuple[int, Tuple[int, ...]]] = []
        new_vertices: List[int] = []
        integrated = self._integrated
        vertices = self.vertices
        changed = False
        for entry in reported_edges:
            node_id, edge_ids = entry
            edge_set = frozenset(edge_ids)
            valid = (
                isinstance(node_id, int)
                and node_id not in edge_set
                and all(map(int.__instancecheck__, edge_set))
            )
            canonical = tuple(sorted(edge_set)) if valid else None
            if valid and (node_id, canonical) in integrated:
                continue
            if not valid or len(edge_set) > max_degree:
                inconsistent = True
                continue
            existing = self.edge_sets.get(node_id)
            if existing is not None:
                integrated.add((node_id, canonical))
                if existing == edge_set:
                    continue
            else:
                integrated.add((node_id, canonical))
                if node_id not in vertices:
                    vertices.add(node_id)
                    new_vertices.append(node_id)
            self.edge_sets[node_id] = edge_set
            new_edge_sets.append((node_id, canonical))
            for v in edge_set:
                if v not in vertices:
                    vertices.add(v)
                    new_vertices.append(v)
            changed = True
        for node_id in reported_vertices:
            if not isinstance(node_id, int):
                inconsistent = True
                continue
            if node_id not in vertices:
                vertices.add(node_id)
                new_vertices.append(node_id)
                changed = True
        if changed:
            self._rebuild_all()
        return inconsistent, new_edge_sets, new_vertices

    def _rebuild_all(self) -> None:
        """Recompute adjacency, BFS layers, and interior from settled claims."""
        adj: Dict[int, Set[int]] = {v: set() for v in self.vertices}
        for node_id, edge_set in self.edge_sets.items():
            node_adj = adj[node_id]
            for v in edge_set:
                node_adj.add(v)
                adj[v].add(node_id)
        self._adj = adj
        dist: Dict[int, int] = {self.own_id: 0}
        layers: List[Set[int]] = [{self.own_id}]
        current: Set[int] = {self.own_id}
        while True:
            nxt: Set[int] = set()
            for u in current:
                for w in adj[u]:
                    if w not in dist and w not in nxt:
                        nxt.add(w)
            if not nxt:
                break
            d = len(layers)
            for w in nxt:
                dist[w] = d
            layers.append(nxt)
            current = nxt
        self._dist = dist
        self._layers = layers
        missing: Dict[int, int] = {}
        waiting: Dict[int, List[int]] = {}
        interior: Set[int] = set()
        settled = self.edge_sets
        for node_id, edge_set in settled.items():
            miss = 0
            for w in edge_set:
                if w not in settled:
                    miss += 1
                    waiting.setdefault(w, []).append(node_id)
            if miss:
                missing[node_id] = miss
            else:
                interior.add(node_id)
        self._missing = missing
        self._waiting = waiting
        self._interior = interior
        out: Set[int] = set()
        for v in interior:
            for w in adj[v]:
                if w not in interior:
                    out.add(w)
        self._interior_out = out

    def delete_edge(self, a: int, b: int) -> bool:
        """Remove edge ``{a, b}`` from both endpoints' settled claims."""
        changed = False
        for x, y in ((a, b), (b, a)):
            edge_set = self.edge_sets.get(x)
            if edge_set is None or y not in edge_set:
                continue
            new_set = edge_set - {y}
            self.edge_sets[x] = new_set
            self._integrated.add((x, tuple(sorted(new_set))))
            changed = True
        if changed:
            self._rebuild_all()
        return changed

    def retract_claim(self, node_id: int) -> bool:
        """Unsettle ``node_id`` entirely (drop its claim and *unsee* it)."""
        edge_set = self.edge_sets.pop(node_id, None)
        if edge_set is None:
            return False
        self._integrated.discard((node_id, tuple(sorted(edge_set))))
        self._rebuild_all()
        return True

    def update_claim(self, node_id: int, edge_ids: Iterable[int]) -> bool:
        """Force-settle ``node_id``'s claim to ``edge_ids`` (bypasses dedup)."""
        canonical = tuple(sorted(edge_ids))
        edge_set = frozenset(canonical)
        self._integrated.add((node_id, canonical))
        if self.edge_sets.get(node_id) == edge_set:
            return False
        if node_id not in self.vertices:
            self.vertices.add(node_id)
        for v in edge_set:
            if v not in self.vertices:
                self.vertices.add(v)
        self.edge_sets[node_id] = edge_set
        self._rebuild_all()
        return True

    def settled_entries(self) -> List[Tuple[int, Tuple[int, ...]]]:
        """Canonical payload entries of every settled claim."""
        return [
            (node_id, tuple(sorted(edge_set)))
            for node_id, edge_set in self.edge_sets.items()
        ]

    # -- structure queries ---------------------------------------------- #
    def adjacency(self) -> Dict[int, Set[int]]:
        return self._adj

    def layer_prefixes(self, adj: Optional[Dict[int, Set[int]]] = None) -> List[FrozenSet[int]]:
        prefixes: List[FrozenSet[int]] = []
        running: Set[int] = set()
        for layer in self._layers:
            if not layer:
                break
            running |= layer
            prefixes.append(frozenset(running))
        return prefixes

    def layer_sizes(self) -> List[int]:
        sizes: List[int] = []
        for layer in self._layers:
            if not layer:
                break
            sizes.append(len(layer))
        return sizes

    def interior_set(self) -> Set[int]:
        return set(self._interior)

    def expansion_check_candidates(self) -> List[Tuple[int, int]]:
        candidates: List[Tuple[int, int]] = []
        sizes = self.layer_sizes()
        prefix = 0
        last = len(sizes) - 1
        for j, layer_size in enumerate(sizes):
            prefix += layer_size
            candidates.append((prefix, sizes[j + 1] if j < last else 0))
        if self._interior:
            candidates.append((len(self._interior), len(self._interior_out)))
        return candidates

    @staticmethod
    def expansion_of(adj: Dict[int, Set[int]], subset: Set[int]) -> float:
        if not subset:
            return math.inf
        out: Set[int] = set()
        for u in subset:
            for v in adj.get(u, ()):
                if v not in subset:
                    out.add(v)
        return len(out) / len(subset)

    def size(self) -> int:
        return len(self.vertices)
