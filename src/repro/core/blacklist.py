"""Per-phase blacklist bookkeeping of Algorithm 2 (Section 5).

At the end of every iteration, a node takes the path of the beacon it accepted
(``shortestPath``), removes the trusted suffix of the last ``⌊(1-ε)i⌋``
entries, and adds the remaining (far-away) node ids to its phase-``i``
blacklist ``BL``.  A beacon received in a later iteration of the same phase is
ignored (for the purpose of setting ``shortestPath``) if the far-away portion
of its path intersects ``BL``.

The blacklist is reset at the start of every phase (Line 2).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set, Tuple

__all__ = ["PhaseBlacklist", "split_trusted_suffix"]


def split_trusted_suffix(
    path: Sequence[int], suffix_length: int
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Split a path field into ``(far_prefix, trusted_suffix)``.

    The trusted suffix consists of the last ``suffix_length`` entries -- the
    nodes closest to the receiver, whose ids were appended by honest
    forwarders whenever the receiver is far enough from every Byzantine node
    (Lemma 11's argument).  The far prefix is everything else and is the part
    subject to blacklisting.
    """
    if suffix_length <= 0:
        return tuple(path), ()
    if suffix_length >= len(path):
        return (), tuple(path)
    return tuple(path[:-suffix_length]), tuple(path[-suffix_length:])


class PhaseBlacklist:
    """The blacklist ``BL`` of one node for one phase."""

    def __init__(self) -> None:
        self._blocked: Set[int] = set()

    def __len__(self) -> int:
        return len(self._blocked)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._blocked

    @property
    def blocked(self) -> frozenset:
        """Read-only view of the blacklisted ids."""
        return frozenset(self._blocked)

    def reset(self) -> None:
        """Clear the blacklist (start of a new phase, Line 2)."""
        self._blocked.clear()

    def add_path(self, path: Sequence[int], suffix_length: int) -> int:
        """Blacklist the far prefix of ``path`` (Lines 31-32).

        Returns the number of newly blacklisted ids.
        """
        far_prefix, _ = split_trusted_suffix(path, suffix_length)
        before = len(self._blocked)
        self._blocked.update(far_prefix)
        return len(self._blocked) - before

    def blocks_path(self, path: Sequence[int], suffix_length: int) -> bool:
        """Whether the far prefix of ``path`` intersects the blacklist (Line 21)."""
        blocked = self._blocked
        if not blocked:
            return False
        if suffix_length > 0:
            end = len(path) - suffix_length
            if end <= 0:
                return False
            return not blocked.isdisjoint(path[:end])
        return not blocked.isdisjoint(path)
