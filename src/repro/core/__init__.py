"""The paper's primary contribution: the two Byzantine counting algorithms.

* :mod:`repro.core.local_counting` -- Algorithm 1, the deterministic
  time-optimal LOCAL-model algorithm of Theorem 1.
* :mod:`repro.core.congest_counting` -- Algorithm 2, the randomized
  small-message algorithm of Theorem 2 (beacons, path fields, blacklisting,
  continue messages).
* :mod:`repro.core.parameters` -- the parameter sets (γ, ξ, δ, η, ε, c, c₁, α′)
  and the derived quantities of Equations (2)-(4).
* :mod:`repro.core.estimate` -- decision records and outcome statistics used
  to state the theorems' guarantees quantitatively.
"""

from repro.core.parameters import LocalParameters, CongestParameters, byzantine_budget
from repro.core.estimate import DecisionRecord, CountingOutcome, approximation_band
from repro.core.local_counting import (
    LocalCountingProtocol,
    LocalCountingRun,
    run_local_counting,
)
from repro.core.congest_counting import (
    CongestCountingProtocol,
    CongestCountingRun,
    PhaseSchedule,
    run_congest_counting,
)
from repro.core.beacon import BeaconPayload, make_beacon_message, make_continue_message

__all__ = [
    "LocalParameters",
    "CongestParameters",
    "byzantine_budget",
    "DecisionRecord",
    "CountingOutcome",
    "approximation_band",
    "LocalCountingProtocol",
    "LocalCountingRun",
    "run_local_counting",
    "CongestCountingProtocol",
    "CongestCountingRun",
    "PhaseSchedule",
    "run_congest_counting",
    "BeaconPayload",
    "make_beacon_message",
    "make_continue_message",
]
