"""Algorithm parameters and the derived quantities of Equations (2)-(4).

The paper leaves several constants symbolic ("for a sufficiently large
constant c₁", "any fixed constant α′ < α"); this module makes every one of
them an explicit, documented field with defaults chosen so the analysis'
inequalities are meaningful at simulable scales (n up to a few thousand).
Experiments report sensitivity to these choices (benchmark E8/E9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["LocalParameters", "CongestParameters", "byzantine_budget"]


def byzantine_budget(n: int, exponent: float) -> int:
    """Number of Byzantine nodes ``floor(n ** exponent)`` (e.g. ``n^(1-γ)`` or ``n^(1/2-ξ)``)."""
    if n <= 0:
        return 0
    if exponent <= 0:
        return 0
    return int(math.floor(n ** exponent))


@dataclass(frozen=True)
class LocalParameters:
    """Parameters of the deterministic LOCAL algorithm (Algorithm 1 / Theorem 1).

    Attributes
    ----------
    gamma:
        Byzantine-tolerance exponent: up to ``n^(1-gamma)`` Byzantine nodes.
        Any arbitrarily small positive constant; Theorem 1's approximation
        factor is ``(gamma/2) * log Δ``.
    max_degree:
        The known degree bound Δ.  Nodes reject any received topology claim
        with a larger degree (Line 17 of Algorithm 1).
    alpha_prime:
        The expansion threshold α′ of the per-round expansion check (Line 11).
        Must be strictly below the true vertex expansion α of the network for
        the guarantees to hold; the default 0.25 is below the expansion of
        every expander family shipped in :mod:`repro.graphs`.
    exhaustive_subset_check:
        If true, Line 9's check enumerates *every* subset of the local view
        (exponential; only usable on tiny graphs, provided for test
        cross-validation).  The default checks the family of sets the proofs
        actually use: every BFS-layer prefix of the view and the full view.
    """

    gamma: float = 0.5
    max_degree: int = 8
    alpha_prime: float = 0.25
    exhaustive_subset_check: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.gamma <= 1.0:
            raise ValueError("gamma must lie in (0, 1]")
        if self.max_degree < 2:
            raise ValueError("max_degree must be at least 2")
        if self.alpha_prime <= 0.0:
            raise ValueError("alpha_prime must be positive")

    def byzantine_bound(self, n: int) -> int:
        """Maximum tolerated Byzantine nodes, ``n^(1-gamma)``."""
        return byzantine_budget(n, 1.0 - self.gamma)

    def lower_decision_bound(self, n: int) -> int:
        """Lemma 3's lower bound ``floor((gamma/2) log_Δ n)`` on Good nodes' decisions."""
        if n < 2:
            return 0
        return int(math.floor((self.gamma / 2.0) * math.log(n, self.max_degree)))


@dataclass(frozen=True)
class CongestParameters:
    """Parameters of the randomized small-message algorithm (Algorithm 2 / Theorem 2).

    The analysis (Section 5.1) is parameterized by γ, δ, η with the constraint
    of Equation (2), ``γ >= 1/2 - δ + η``; the maximum Byzantine tolerance is
    reached with δ, η close to 0 and γ close to 1/2, giving ``B(n) = n^(1/2-ξ)``.

    Attributes
    ----------
    gamma:
        Byzantine-tolerance exponent (number of Byzantine nodes ``n^(1-gamma)``).
        The only global constant nodes are assumed to know (Algorithm 2's
        caption).
    delta, eta:
        The analysis constants of Equation (2); used to derive ε and ρ.
    d:
        The nominal degree of the ``H(n, d)`` network, used in the activation
        probability ``c₁·i / dⁱ`` and in ε.  (Each node could equally use its
        own degree; the graphs are d-regular up to a vanishing fraction.)
    c1:
        The activation constant of Line 5 ("sufficiently large constant c₁").
    first_phase:
        The starting phase ``c`` of Line 1 (``c >= 2 log 2 / ((2-δ)η)``).
    blacklist_enabled:
        Ablation switch for experiment E8; the paper's algorithm always has it
        on.
    min_suffix:
        Floor applied to the trusted-suffix length ``⌊(1-ε)i⌋``.  The paper's
        asymptotic analysis has ``(1-ε)i >= 1`` because i = Ω(log n); at
        simulable scales the floor keeps the mechanism non-degenerate.  Set to
        0 to disable.
    """

    gamma: float = 0.5
    delta: float = 0.1
    eta: float = 0.05
    d: int = 8
    c1: float = 4.0
    first_phase: int = 2
    blacklist_enabled: bool = True
    min_suffix: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.gamma <= 1.0:
            raise ValueError("gamma must lie in (0, 1]")
        if not 0.0 < self.delta <= 0.5:
            raise ValueError("delta must lie in (0, 1/2]")
        if self.eta <= 0.0:
            raise ValueError("eta must be positive")
        if self.gamma < 0.5 - self.delta + self.eta - 1e-12:
            raise ValueError(
                "Equation (2) violated: gamma must be >= 1/2 - delta + eta "
                f"(got gamma={self.gamma}, delta={self.delta}, eta={self.eta})"
            )
        if self.d < 3:
            raise ValueError("d must be at least 3")
        if self.c1 <= 0:
            raise ValueError("c1 must be positive")
        if self.first_phase < 1:
            raise ValueError("first_phase must be at least 1")
        if self.min_suffix < 0:
            raise ValueError("min_suffix must be non-negative")

    # ------------------------------------------------------------------ #
    # Derived quantities (Equations (3) and (4))
    # ------------------------------------------------------------------ #
    @property
    def epsilon(self) -> float:
        """Equation (3): ε = 1 - (1-δ)·γ / ln d.

        Derived so that ``d^((1-ε)i) = e^((1-δ)γ i)`` as used in Lemma 8.
        """
        return 1.0 - (1.0 - self.delta) * self.gamma / math.log(self.d)

    def trusted_suffix_length(self, phase: int) -> int:
        """``⌊(1-ε)·i⌋`` -- the path suffix a node blindly trusts in phase ``i``."""
        raw = int(math.floor((1.0 - self.epsilon) * phase))
        return max(self.min_suffix, raw)

    def rho(self, n: int) -> int:
        """Equation (4): ρ = ⌊min((1-δ)γ log_d n, log_d(n)/10)⌋ - 2.

        The phase up to which the early-phase analysis (Lemmas 6-10) applies.
        May be negative at small n; callers should clamp as appropriate.
        """
        if n < 2:
            return -2
        log_d_n = math.log(n, self.d)
        return int(math.floor(min((1.0 - self.delta) * self.gamma * log_d_n, log_d_n / 10.0))) - 2

    def byzantine_bound(self, n: int) -> int:
        """Maximum tolerated Byzantine nodes, ``n^(1-gamma)``."""
        return byzantine_budget(n, 1.0 - self.gamma)

    # ------------------------------------------------------------------ #
    # Schedule quantities (Algorithm 2, Lines 1-3)
    # ------------------------------------------------------------------ #
    def iterations_in_phase(self, phase: int) -> int:
        """``⌊e^((1-γ)i)⌋ + 1`` iterations in phase ``i`` (Line 3)."""
        return int(math.floor(math.exp((1.0 - self.gamma) * phase))) + 1

    def rounds_per_iteration(self, phase: int) -> int:
        """``2i + 5`` rounds per iteration of phase ``i`` (Line 3)."""
        return 2 * phase + 5

    def beacon_window(self, phase: int) -> int:
        """Length of the beacon-dissemination window: ``i + 2`` rounds."""
        return phase + 2

    def continue_window(self, phase: int) -> int:
        """Length of the continue-message window: ``i + 3`` rounds."""
        return phase + 3

    def activation_probability(self, phase: int, degree: Optional[int] = None) -> float:
        """Line 5: a node becomes active with probability ``c₁·i / dⁱ`` (capped at 1)."""
        d = degree if degree is not None else self.d
        return min(1.0, self.c1 * phase / float(d) ** phase)

    def phase_length(self, phase: int) -> int:
        """Total rounds of phase ``i``."""
        return self.iterations_in_phase(phase) * self.rounds_per_iteration(phase)

    def rounds_through_phase(self, last_phase: int) -> int:
        """Total rounds from the start of phase ``c`` through the end of ``last_phase``."""
        return sum(
            self.phase_length(i) for i in range(self.first_phase, last_phase + 1)
        )

    def expected_decision_phase(self, n: int) -> int:
        """Back-of-envelope phase by which global beacon generation dies out.

        The expected number of active good nodes in phase ``i`` is
        ``n · c₁·i / dⁱ``; the first phase where this drops below 1 is the
        natural decision phase in the benign case.  Used only to size
        simulation budgets, never by the protocol itself.
        """
        phase = self.first_phase
        while phase < 80:
            expected_active = n * self.activation_probability(phase)
            if expected_active < 0.5:
                return phase
            phase += 1
        return phase

    def round_budget(self, n: int, *, slack_phases: int = 3) -> int:
        """A safe max-round budget for a run on an ``n``-node network.

        Covers every phase through ``max(⌈ln n⌉, expected decision phase) +
        slack_phases`` -- the analysis (Lemma 11) guarantees decisions by
        phase ``⌈ln n⌉`` whp, and the slack absorbs Byzantine stretching up to
        the blacklist exhaustion point.
        """
        last = max(int(math.ceil(math.log(max(n, 2)))), self.expected_decision_phase(n))
        return self.rounds_through_phase(last + slack_phases) + 10
