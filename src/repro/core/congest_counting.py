"""Algorithm 2: Byzantine counting with small messages (Section 5).

The algorithm proceeds in *phases* ``i = c, c+1, ...`` where ``i`` is the
current candidate estimate of ``log n``.  Each phase consists of
``⌊e^((1-γ)i)⌋ + 1`` *iterations* and each iteration of phase ``i`` takes
``2i + 5`` rounds:

* **Beacon window (rounds 1 .. i+2 of the iteration).**  At the first round,
  every participating node becomes *active* with probability ``c₁·i / dⁱ``
  (``d`` = its degree) and, if active, emits a beacon message.  Beacons are
  flooded for the remainder of the window; every forwarder appends the id of
  the neighbor it received the beacon from to the path field.  Each node
  records in ``shortestPath`` the first beacon whose far-away path prefix does
  not intersect its phase blacklist.
* **Decision point (round i+3).**  A node that is still undecided and whose
  ``shortestPath`` is empty decides on ``i``.  Every node then blacklists the
  far prefix of the path it accepted.
* **Continue window (rounds i+3 .. 2i+5).**  Undecided nodes broadcast a
  continue message which is flooded for ``i+3`` rounds; decided nodes that do
  not hear a continue message stop participating (they may re-enter later if
  a continue message reaches them, Lines 43-44).

Theorem 2: on ``H(n, d)`` random regular graphs with up to ``B(n) = n^(1/2-ξ)``
adversarially placed Byzantine nodes, at least ``(1-β)n`` nodes decide a
constant-factor estimate of ``log n`` within ``O(B(n)·log² n)`` rounds, and
most good nodes only ever send messages of ``O(log n)`` bits plus a constant
number of ids.

Implementation notes
--------------------
* All nodes share a synchronized clock (Section 2), so the phase/iteration/
  round-within-iteration position is a deterministic function of the global
  round number, provided by :class:`PhaseSchedule`.
* Nodes that stopped participating still *passively forward* beacon and
  continue messages (they generate neither); this matches the pseudocode's
  "forwarded by correct nodes" and guarantees quiescence in the benign case
  (Corollary 1) because eventually nothing new is generated.
* The trusted-suffix length ``⌊(1-ε)i⌋`` can round to zero at simulable
  scales; :class:`~repro.core.parameters.CongestParameters.min_suffix` keeps
  it at least 1 by default (see the parameter documentation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.simulator.byzantine import Adversary
from repro.core.beacon import (
    BEACON_KIND,
    CONTINUE_KIND,
    BeaconPayload,
    forward_beacon_message,
    make_beacon_message,
    make_continue_message,
    parse_beacon,
)
from repro.core.blacklist import PhaseBlacklist, split_trusted_suffix
from repro.core.estimate import CountingOutcome, DecisionRecord
from repro.core.parameters import CongestParameters
from repro.graphs.graph import Graph
from repro.simulator.churn import ChurnSchedule
from repro.simulator.engine import RunResult, SynchronousEngine
from repro.simulator.messages import Message
from repro.simulator.network import Network
from repro.simulator.node import Broadcast, NodeContext, Outbox, Protocol

__all__ = [
    "PhaseSchedule",
    "SchedulePosition",
    "CongestCountingProtocol",
    "CongestCountingRun",
    "run_congest_counting",
]


@dataclass(frozen=True)
class SchedulePosition:
    """Where a global round falls in the phase/iteration/step structure."""

    phase: int
    iteration: int  # 1-based within the phase
    step: int  # 1-based within the iteration (1 .. 2*phase + 5)

    @property
    def is_iteration_start(self) -> bool:
        """First round of an iteration (beacon generation happens here)."""
        return self.step == 1


class PhaseSchedule:
    """Deterministic mapping from global round numbers to schedule positions.

    Rounds are numbered from 1 (round 0 is the engine's start round in which
    Algorithm 2 sends nothing).  Phase ``c`` starts at round 1.
    """

    def __init__(self, params: CongestParameters) -> None:
        self.params = params
        self._phase_starts: List[Tuple[int, int]] = []  # (phase, first_round)
        self._next_round = 1
        self._next_phase = params.first_phase
        # (phase, start, end, rounds_per_iteration) of the most recent lookup:
        # consecutive rounds almost always fall in the same phase, so this
        # makes `locate` O(1) on the per-round hot path.
        self._current_span: Optional[Tuple[int, int, int, int]] = None
        # All protocol instances of a run share one schedule and ask about the
        # same round in sequence, so the last (round, position) pair is a
        # near-perfect cache.
        self._last_position: Optional[Tuple[int, SchedulePosition]] = None

    def _append_next_phase(self) -> None:
        """Append one phase to the table (the only place the table grows)."""
        self._phase_starts.append((self._next_phase, self._next_round))
        self._next_round += self.params.phase_length(self._next_phase)
        self._next_phase += 1

    def _extend_through(self, round_number: int) -> None:
        """Ensure the phase table covers ``round_number``.

        Extends *geometrically*: every extension at least doubles the covered
        round horizon, so a sequence of monotonically growing lookups costs
        amortized O(1) per phase instead of re-entering the loop once per
        phase (deep phases previously paid quadratic schedule growth).
        """
        if self._phase_starts:
            covered = self._phase_end(self._phase_starts[-1])
            if covered >= round_number:
                return
            target = max(round_number, 2 * covered)
        else:
            target = round_number
        while not self._phase_starts or self._phase_end(self._phase_starts[-1]) < target:
            self._append_next_phase()

    def _phase_end(self, entry: Tuple[int, int]) -> int:
        phase, start = entry
        return start + self.params.phase_length(phase) - 1

    def locate(self, round_number: int) -> SchedulePosition:
        """Return the position of ``round_number`` (which must be >= 1)."""
        last = self._last_position
        if last is not None and last[0] == round_number:
            return last[1]
        if round_number < 1:
            raise ValueError("Algorithm 2 rounds are numbered from 1")
        span = self._current_span
        if span is None or not (span[1] <= round_number <= span[2]):
            span = self._locate_span(round_number)
        phase, start, _end, rpi = span
        offset = round_number - start
        iteration = offset // rpi + 1
        step = offset % rpi + 1
        position = SchedulePosition(phase=phase, iteration=iteration, step=step)
        self._last_position = (round_number, position)
        return position

    def _locate_span(self, round_number: int) -> Tuple[int, int, int, int]:
        self._extend_through(round_number)
        # The phases list is short (tens of entries); linear scan is fine.
        for phase, start in reversed(self._phase_starts):
            if round_number >= start:
                span = (
                    phase,
                    start,
                    self._phase_end((phase, start)),
                    self.params.rounds_per_iteration(phase),
                )
                self._current_span = span
                return span
        raise AssertionError("unreachable: schedule did not cover the round")

    def phase_start_round(self, phase: int) -> int:
        """First global round of ``phase`` (O(1) from the phase table)."""
        first = self.params.first_phase
        if phase < first:
            raise ValueError("phase precedes the first phase")
        while self._next_phase <= phase:
            self._append_next_phase()
        return self._phase_starts[phase - first][1]

    def end_of_phase_round(self, phase: int) -> int:
        """Last global round of ``phase``."""
        return self.phase_start_round(phase) + self.params.phase_length(phase) - 1


class CongestCountingProtocol(Protocol):
    """Per-node implementation of Algorithm 2."""

    def __init__(self, ctx: NodeContext, params: CongestParameters, schedule: PhaseSchedule) -> None:
        self.params = params
        self.schedule = schedule
        self._decided = False
        self._estimate: Optional[float] = None
        self._decision_round: Optional[int] = None
        self._participating = True
        self._blacklist = PhaseBlacklist()
        self._current_phase: Optional[int] = None
        # Per-iteration state, reset at every iteration start instead of
        # reallocated: the continue message is identical every time it is
        # sent (the engine never mutates outbox messages), and the per-phase
        # schedule constants below are derived once per phase in
        # ``_start_phase`` rather than once per round.
        self._shortest_path: Optional[Tuple[int, ...]] = None
        self._continue_seen = False
        self._continue_message = make_continue_message()
        self._rounds_per_iteration = 0
        self._beacon_window_end = 0
        self._forward_step_limit = 0
        self._continue_forward_limit = 0
        self._trusted_suffix = 0

    # -- Protocol interface --------------------------------------------- #
    @property
    def decided(self) -> bool:
        return self._decided

    @property
    def estimate(self) -> Optional[float]:
        return self._estimate

    @property
    def decision_round(self) -> Optional[int]:
        return self._decision_round

    @property
    def halted(self) -> bool:
        # Never report "halted" to the engine: even a node that decided and
        # exited the for-loop keeps forwarding passively and may re-enter upon
        # receiving a continue message (Lines 43-44), so it must keep being
        # scheduled.  Termination is detected by the runner's stop condition
        # (all decided, or full quiescence for the Corollary 1 benign case).
        return False

    @property
    def participating(self) -> bool:
        """Whether the node is currently inside the for-loop."""
        return self._participating

    @property
    def blacklist_size(self) -> int:
        """Number of ids currently blacklisted (diagnostics for experiment E8)."""
        return len(self._blacklist)

    # -- internals -------------------------------------------------------- #
    def _decide(self, phase: int, round_number: int) -> None:
        if not self._decided:
            self._decided = True
            self._estimate = float(phase)
            self._decision_round = round_number

    def _start_phase(self, phase: int) -> None:
        self._current_phase = phase
        self._blacklist.reset()
        params = self.params
        self._rounds_per_iteration = params.rounds_per_iteration(phase)
        self._beacon_window_end = phase + 2
        self._forward_step_limit = phase + 1
        self._continue_forward_limit = 2 * phase + 4
        self._trusted_suffix = params.trusted_suffix_length(phase)

    def _start_iteration(self, ctx: NodeContext, phase: int) -> Outbox:
        """Line 4-11: reset iteration state and possibly emit a beacon."""
        self._shortest_path = None
        self._continue_seen = False
        if not self._participating:
            return {}
        probability = self.params.activation_probability(phase, degree=max(ctx.degree, 2))
        if ctx.rng.random() < probability:
            # Line 7: the active node's own shortest path is just itself.
            # The beacon is trusted by construction (engine-provided int id),
            # so receivers reuse the pre-cached parse verdict.
            self._shortest_path = (ctx.node_id,)
            beacon = make_beacon_message(origin=ctx.node_id, path=(), trusted=True)
            return Broadcast(beacon, ctx.neighbors)
        return {}

    def _handle_beacons(
        self, ctx: NodeContext, inbox: List[Message], position: SchedulePosition
    ) -> Outbox:
        """Lines 13-26: process received beacons during the beacon window."""
        beacons: List[Message] = []
        for message in inbox:
            # Inlined fast path of ``parse_beacon``: shared delivery
            # envelopes and honest-forwarding verdict propagation mean almost
            # every payload already carries a cached verdict.  A valid parse
            # returns the payload object itself, so collecting the messages
            # alone suffices.
            if message.kind != BEACON_KIND:
                continue
            payload = message.payload
            if type(payload) is BeaconPayload:
                ok = payload._beacon_ok
                if ok:
                    beacons.append(message)
                    continue
                if ok is not None:
                    continue
            if parse_beacon(message) is not None:
                beacons.append(message)
        if not beacons:
            return {}
        # Line 14: discard all but one arbitrarily chosen message.
        message = beacons[ctx.rng.randrange(len(beacons))] if len(beacons) > 1 else beacons[0]
        payload = message.payload
        # Line 16: append the *actual* sender's id (unforgeable edge identity).
        extended = payload.extended(message.sender_id)

        outbox: Outbox = {}
        # Line 17-19: forward while still within the first i rounds.
        if position.step <= self._forward_step_limit:
            outbox = Broadcast(forward_beacon_message(extended), ctx.neighbors)

        # Lines 20-25: accept into shortestPath if the far prefix is clean.
        if self.params.blacklist_enabled:
            blocked = self._blacklist.blocks_path(extended.path, self._trusted_suffix)
        else:
            blocked = False
        if not blocked and self._shortest_path is None:
            self._shortest_path = extended.path
        return outbox

    def _decision_point(self, ctx: NodeContext, position: SchedulePosition) -> Outbox:
        """Lines 28-35: decide if no beacon was accepted; blacklist; send continue."""
        phase = position.phase
        if self._participating and self._shortest_path is None and not self._decided:
            self._decide(phase, ctx.round)
        if self.params.blacklist_enabled and self._shortest_path is not None:
            self._blacklist.add_path(self._shortest_path, self._trusted_suffix)
        if self._participating and not self._decided:
            return Broadcast(self._continue_message, ctx.neighbors)
        return {}

    def _handle_continues(
        self, ctx: NodeContext, inbox: List[Message], position: SchedulePosition
    ) -> Outbox:
        """Lines 36-40: forward continue messages and remember having seen one."""
        for message in inbox:
            if message.kind == CONTINUE_KIND:
                break
        else:
            return {}
        self._continue_seen = True
        # Forward (one copy, Line 37) while the window still has room for the
        # message to be useful.
        if position.step <= self._continue_forward_limit:
            return Broadcast(self._continue_message, ctx.neighbors)
        return {}

    def _end_of_iteration(self) -> None:
        """Lines 38-44: exit or re-enter the for-loop based on continue messages."""
        if self._decided and self._participating and not self._continue_seen:
            self._participating = False
        elif not self._participating and self._continue_seen:
            # Line 43-44: re-enter with the current phase value (the phase is
            # taken from the synchronized schedule, so no extra state needed).
            self._participating = True

    # -- engine callbacks ------------------------------------------------ #
    def on_start(self, ctx: NodeContext) -> Outbox:
        # Round 0 carries no algorithm actions; phase c starts at round 1.
        return {}

    def on_round(self, ctx: NodeContext, inbox: List[Message]) -> Outbox:
        # Inlined ``locate`` cache hit: all protocol instances of a run share
        # one schedule and ask about the same round in sequence.
        schedule = self.schedule
        round_number = ctx.round
        last = schedule._last_position
        if last is not None and last[0] == round_number:
            position = last[1]
        else:
            position = schedule.locate(round_number)
        phase = position.phase
        if self._current_phase != phase:
            self._start_phase(phase)

        outbox: Outbox = {}
        step = position.step
        if step == 1:
            outbox = self._start_iteration(ctx, phase)
            # Beacons cannot have been received yet this iteration, but stray
            # continue messages from the previous iteration's last round are
            # impossible because forwarding stops one round earlier.
        elif step <= self._beacon_window_end:
            if inbox:
                outbox = self._handle_beacons(ctx, inbox, position)
        elif step == self._beacon_window_end + 1:
            outbox = self._decision_point(ctx, position)
        elif inbox:
            outbox = self._handle_continues(ctx, inbox, position)

        if step == self._rounds_per_iteration:
            self._end_of_iteration()
        return outbox


@dataclass
class CongestCountingRun:
    """Result wrapper of one Algorithm 2 execution."""

    result: RunResult
    params: CongestParameters
    outcome: CountingOutcome
    schedule: PhaseSchedule


def run_congest_counting(
    graph: Graph,
    *,
    byzantine: Iterable[int] = (),
    adversary: Optional[Adversary] = None,
    params: Optional[CongestParameters] = None,
    seed: int = 0,
    max_rounds: Optional[int] = None,
    stop_when_all_decided: bool = True,
    evaluation_set: Optional[Set[int]] = None,
    churn: Optional[ChurnSchedule] = None,
) -> CongestCountingRun:
    """Execute Algorithm 2 on ``graph`` and summarize the outcome.

    Parameters
    ----------
    graph:
        The network topology (typically an ``H(n, d)`` random regular graph).
    byzantine:
        Indices of Byzantine nodes.
    adversary:
        Byzantine behaviour; defaults to silence.
    params:
        Algorithm parameters; defaults to :class:`CongestParameters` with
        ``d`` set to the graph's maximum degree.
    seed:
        Master seed for all node and adversary randomness.
    max_rounds:
        Safety cap; defaults to ``params.round_budget(n)``.
    stop_when_all_decided:
        If true (default) the run stops as soon as every honest node has
        decided -- the decisions are irrevocable so nothing further can
        change.  Set to false to observe the quiescence of Corollary 1.
    evaluation_set:
        Nodes over which outcome statistics are computed (defaults to all
        honest nodes; experiments may pass ``GoodTL``).
    churn:
        Optional mid-run topology schedule, applied at the *engine* level
        (edge cuts, departures, fresh protocol slots for joiners).  The
        protocol itself does not adapt -- Algorithm 2's phase structure
        assumes a static graph, so churn measures its degradation: runs with
        departures or cut phases may exhaust ``max_rounds`` undecided.
    """
    if params is None:
        params = CongestParameters(d=max(3, graph.max_degree()))
    network = Network(graph=graph, byzantine=frozenset(byzantine))
    if max_rounds is None:
        max_rounds = params.round_budget(graph.n)
    schedule = PhaseSchedule(params)

    def factory(ctx: NodeContext) -> Protocol:
        return CongestCountingProtocol(ctx, params, schedule)

    engine = SynchronousEngine(
        network,
        factory,
        adversary=adversary,
        seed=seed,
        max_rounds=max_rounds,
        churn=churn,
    )

    # Both stop conditions read the engine's incrementally maintained
    # decision counter instead of scanning every protocol's ``decided`` flag
    # each round (decisions are irrevocable, so the counter is exact).
    num_honest = len(engine.protocols)
    if stop_when_all_decided:
        def stop_condition(protocols: Dict[int, Protocol], _round: int) -> bool:
            return engine.decided_count == num_honest
    else:
        # Corollary 1 mode: stop only when everyone has decided, exited the
        # for-loop, and the network has gone quiescent (no messages at all in
        # the previous round).  The participation scan only runs once all
        # decisions are in.
        def stop_condition(protocols: Dict[int, Protocol], _round: int) -> bool:
            if engine.decided_count < num_honest:
                return False
            all_done = all(not p.participating for p in protocols.values())
            last_round_messages = (
                engine.metrics.messages_per_round[-1]
                if engine.metrics.messages_per_round
                else 1
            )
            return all_done and last_round_messages == 0

    engine.stop_condition = stop_condition
    result = engine.run()

    records: Dict[int, DecisionRecord] = {}
    for u, protocol in result.protocols.items():
        records[u] = DecisionRecord(
            node=u,
            decided=protocol.decided,
            estimate=protocol.estimate,
            decision_round=protocol.decision_round,
        )
    outcome = CountingOutcome(
        n=graph.n,
        records=records,
        evaluation_set=set(evaluation_set) if evaluation_set is not None else set(),
        rounds_executed=result.rounds_executed,
        total_messages=result.metrics.total_messages,
        total_bits=result.metrics.total_bits,
        small_message_fraction=result.metrics.small_message_fraction(
            graph.n, list(result.protocols.keys())
        ),
    )
    return CongestCountingRun(result=result, params=params, outcome=outcome, schedule=schedule)
