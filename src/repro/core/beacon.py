"""Beacon and continue messages of Algorithm 2 (Section 5).

A *beacon* message ``⟨beacon, u, P⟩`` carries the id of its origin ``u`` and a
path field ``P`` listing the nodes the message has visited so far; whenever a
node forwards the message it appends the id of the neighbor it received it
from (which it knows truthfully thanks to the unforgeable edge identity of the
model).  Byzantine nodes may fabricate arbitrary origin ids and path prefixes,
but the suffix of the path written by honest forwarders is always correct --
this is what the blacklisting mechanism exploits.

A *continue* message signals that its (undecided) originator wants everyone in
its ``(i+3)``-neighborhood to keep participating in phase ``i``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.simulator.messages import Message

__all__ = [
    "BeaconPayload",
    "make_beacon_message",
    "forward_beacon_message",
    "parse_beacon",
    "make_continue_message",
    "is_continue",
]

BEACON_KIND = "beacon"
CONTINUE_KIND = "continue"


class BeaconPayload:
    """Structured content of a beacon message.

    A plain ``__slots__`` value class (beacons are created once per hop on
    the Algorithm 2 hot path, so construction cost matters); treat instances
    as immutable.  ``_beacon_ok`` caches the :func:`parse_beacon` verdict.

    Attributes
    ----------
    origin:
        Claimed id of the node that generated the beacon (Byzantine senders
        may lie here).
    path:
        The path field ``P``: ids of the nodes the message has visited, oldest
        first.  The final entries were appended by honest forwarders and are
        therefore trustworthy; the prefix may have been fabricated.
    """

    __slots__ = ("origin", "path", "_beacon_ok")

    def __init__(self, origin: int, path: Tuple[int, ...]) -> None:
        self.origin = origin
        self.path = path
        self._beacon_ok: Optional[bool] = None

    def extended(self, via: int) -> "BeaconPayload":
        """The payload after being forwarded via the node with id ``via``.

        A validated payload extended with an engine-stamped (hence int)
        sender id is valid by construction, so the cached verdict propagates
        to the child and receivers skip re-validating the whole path.
        """
        child = BeaconPayload(self.origin, self.path + (via,))
        if type(via) is int and self._beacon_ok is True:
            child._beacon_ok = True
        return child

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BeaconPayload):
            return self.origin == other.origin and self.path == other.path
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.origin, self.path))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BeaconPayload(origin={self.origin!r}, path={self.path!r})"


def make_beacon_message(
    origin: int, path: Tuple[int, ...] = (), *, trusted: bool = False
) -> Message:
    """Build a beacon message with correct small-message size accounting.

    ``trusted=True`` pre-caches a positive :func:`parse_beacon` verdict on
    the payload; it may only be passed by honest protocol code whose
    ``origin``/``path`` are well-typed by construction (engine-provided ids).
    Adversary-built beacons must leave it False so receivers validate them.
    """
    payload = BeaconPayload(origin, tuple(path))
    if trusted:
        payload._beacon_ok = True
    return Message(
        kind=BEACON_KIND,
        payload=payload,
        # A beacon carries a constant number of framing bits; its ids are
        # accounted in num_ids (origin + every path entry).
        size_bits=16,
        num_ids=1 + len(payload.path),
    )


def forward_beacon_message(payload: BeaconPayload) -> Message:
    """Wrap an already-validated payload in a fresh beacon message.

    The forwarding hot path of Algorithm 2 extends a parsed payload and sends
    it on; reusing the payload object (instead of re-building it through
    :func:`make_beacon_message`) keeps the per-hop allocation down to the
    message itself.
    """
    return Message(
        kind=BEACON_KIND,
        payload=payload,
        size_bits=16,
        num_ids=1 + len(payload.path),
    )


def parse_beacon(message: Message) -> Optional[BeaconPayload]:
    """Return the beacon payload, or ``None`` if the message is malformed.

    Byzantine nodes may send arbitrary payloads; honest nodes simply discard
    anything that does not look like a beacon.

    The verdict is cached on the *payload* object: the engine delivers one
    shared envelope per broadcast and every forwarding hop reuses the parsed
    payload, so a beacon is validated once per payload instance instead of
    once per receiving neighbor.  The cache is sound because the verdict only
    depends on attributes honest code never mutates after construction (a
    valid path is an immutable tuple of ints; an invalid path can never
    become a tuple), and honest forwarding propagates it soundly (see
    :meth:`BeaconPayload.extended`).
    """
    if message.kind != BEACON_KIND:
        return None
    payload = message.payload
    if not isinstance(payload, BeaconPayload):
        return None
    ok = getattr(payload, "_beacon_ok", None)
    if ok is None:
        ok = (
            isinstance(payload.path, tuple)
            and all(isinstance(x, int) for x in payload.path)
            and isinstance(payload.origin, int)
        )
        try:
            object.__setattr__(payload, "_beacon_ok", ok)
        except AttributeError:  # pragma: no cover - exotic payload subclasses
            pass
    return payload if ok else None


def make_continue_message() -> Message:
    """Build a continue message (constant size, no embedded ids)."""
    return Message(kind=CONTINUE_KIND, payload=None, size_bits=8, num_ids=0)


def is_continue(message: Message) -> bool:
    """Whether ``message`` is a continue message."""
    return message.kind == CONTINUE_KIND
