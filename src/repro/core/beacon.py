"""Beacon and continue messages of Algorithm 2 (Section 5).

A *beacon* message ``⟨beacon, u, P⟩`` carries the id of its origin ``u`` and a
path field ``P`` listing the nodes the message has visited so far; whenever a
node forwards the message it appends the id of the neighbor it received it
from (which it knows truthfully thanks to the unforgeable edge identity of the
model).  Byzantine nodes may fabricate arbitrary origin ids and path prefixes,
but the suffix of the path written by honest forwarders is always correct --
this is what the blacklisting mechanism exploits.

A *continue* message signals that its (undecided) originator wants everyone in
its ``(i+3)``-neighborhood to keep participating in phase ``i``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.simulator.messages import Message

__all__ = [
    "BeaconPayload",
    "make_beacon_message",
    "forward_beacon_message",
    "parse_beacon",
    "make_continue_message",
    "is_continue",
]

BEACON_KIND = "beacon"
CONTINUE_KIND = "continue"


@dataclass(frozen=True)
class BeaconPayload:
    """Structured content of a beacon message.

    Attributes
    ----------
    origin:
        Claimed id of the node that generated the beacon (Byzantine senders
        may lie here).
    path:
        The path field ``P``: ids of the nodes the message has visited, oldest
        first.  The final entries were appended by honest forwarders and are
        therefore trustworthy; the prefix may have been fabricated.
    """

    origin: int
    path: Tuple[int, ...]

    def extended(self, via: int) -> "BeaconPayload":
        """The payload after being forwarded via the node with id ``via``."""
        return BeaconPayload(origin=self.origin, path=self.path + (via,))


def make_beacon_message(origin: int, path: Tuple[int, ...] = ()) -> Message:
    """Build a beacon message with correct small-message size accounting."""
    payload = BeaconPayload(origin=origin, path=tuple(path))
    return Message(
        kind=BEACON_KIND,
        payload=payload,
        # A beacon carries a constant number of framing bits; its ids are
        # accounted in num_ids (origin + every path entry).
        size_bits=16,
        num_ids=1 + len(payload.path),
    )


def forward_beacon_message(payload: BeaconPayload) -> Message:
    """Wrap an already-validated payload in a fresh beacon message.

    The forwarding hot path of Algorithm 2 extends a parsed payload and sends
    it on; reusing the payload object (instead of re-building it through
    :func:`make_beacon_message`) keeps the per-hop allocation down to the
    message itself.
    """
    return Message(
        kind=BEACON_KIND,
        payload=payload,
        size_bits=16,
        num_ids=1 + len(payload.path),
    )


def parse_beacon(message: Message) -> Optional[BeaconPayload]:
    """Return the beacon payload, or ``None`` if the message is malformed.

    Byzantine nodes may send arbitrary payloads; honest nodes simply discard
    anything that does not look like a beacon.

    The verdict is cached on the *payload* object: the engine delivers one
    shared envelope per broadcast and every forwarding hop reuses the parsed
    payload, so a beacon is validated once per payload instance instead of
    once per receiving neighbor.  The cache is sound because the verdict only
    depends on attributes a ``BeaconPayload`` cannot change after
    construction (the dataclass is frozen and a valid path is a tuple of
    ints, which is immutable; an invalid path can never become a tuple).
    """
    if message.kind != BEACON_KIND:
        return None
    payload = message.payload
    if not isinstance(payload, BeaconPayload):
        return None
    ok = getattr(payload, "_beacon_ok", None)
    if ok is None:
        ok = (
            isinstance(payload.path, tuple)
            and all(isinstance(x, int) for x in payload.path)
            and isinstance(payload.origin, int)
        )
        try:
            object.__setattr__(payload, "_beacon_ok", ok)
        except AttributeError:  # pragma: no cover - exotic payload subclasses
            pass
    return payload if ok else None


def make_continue_message() -> Message:
    """Build a continue message (constant size, no embedded ids)."""
    return Message(kind=CONTINUE_KIND, payload=None, size_bits=8, num_ids=0)


def is_continue(message: Message) -> bool:
    """Whether ``message`` is a continue message."""
    return message.kind == CONTINUE_KIND
