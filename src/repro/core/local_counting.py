"""Algorithm 1: the deterministic, time-optimal LOCAL-model algorithm (Section 4).

Every node ``u`` gossips its current approximation ``B̂(u, i)`` of its ``i``-hop
neighborhood.  It decides on the current round number ``i`` as its estimate of
``log n`` as soon as it either

* notices *structural inconsistencies* in the received topology information
  (a node with degree above the known bound Δ, conflicting incident-edge sets
  for the same node, or a mute neighbor -- Lines 5-7 and the
  ``inconsistent`` predicate), or
* finds a vertex subset of its view whose vertex expansion drops below the
  threshold α′ (Lines 9-13).

Theorem 1: on a bounded-degree graph with constant vertex expansion and up to
``n^(1-γ)`` adversarially placed Byzantine nodes, all ``n - o(n)`` nodes of the
``Good`` set (Lemma 1) decide a value between ``⌊(γ/2)·log_Δ n⌋`` and
``diam(G) + 1``, i.e. a constant-factor approximation of ``log n``, within
``O(log n)`` rounds.

Implementation notes (also summarized in DESIGN.md §2.3)
---------------------------------------------------------
* **Expansion check family.**  Line 9 of the pseudocode checks *every* subset
  of the local view -- exponential local computation, which the LOCAL model
  permits but a simulator cannot afford for views of thousands of vertices.
  The correctness argument only ever relies on two kinds of sets:

  1. the per-radius balls ``B̂(u, j)`` (Lemma 3's induction), and
  2. the honest part ``R`` of the view, whose out-boundary consists solely of
     the (few) Byzantine vertices because fake vertices can never be claimed
     adjacent to an honest vertex without contradicting that honest vertex's
     own edge report (Lemma 4/5).

  We therefore check (1) every BFS-layer prefix of the view, (2) the
  *interior set* of the view -- the settled vertices all of whose claimed
  neighbors are settled, which contains the honest region once the network
  has been fully explored and whose out-boundary is then exactly the set of
  vertices the adversary is still "growing" -- and (3) whether the view grew
  at all this round (the ``Out(B̂(u,i)) = ∅`` case that forces the Lemma 5
  decision at ``diam(G)+1``).  An exhaustive all-subsets check
  (``LocalParameters.exhaustive_subset_check``) is available for small views
  and is used by the unit tests to confirm the practical family triggers the
  same decisions there.  An unbounded adversary willing to fabricate a fake
  region whose *frontier* grows as Ω(α′·n) fresh vertices per round can evade
  the polynomial family (but not the exhaustive one); the experiment suite
  measures the shipped adversaries, which are caught (see EXPERIMENTS.md).
* **Delta gossip.**  Honest nodes broadcast only the part of their view that
  is new since the previous round; re-broadcasting the full view every round
  carries no additional information in a synchronous network and would make
  large simulations needlessly slow.  Message sizes still grow with the
  frontier (Θ(Δ^i) identifiers), preserving the paper's point that
  Algorithm 1 is *not* a small-message algorithm (experiment E10).
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.estimate import CountingOutcome, DecisionRecord
from repro.core.parameters import LocalParameters
from repro.simulator.byzantine import Adversary
from repro.graphs.graph import Graph
from repro.simulator.engine import RunResult, SynchronousEngine
from repro.simulator.messages import Message
from repro.simulator.network import Network
from repro.simulator.node import Broadcast, NodeContext, Outbox, Protocol

__all__ = ["LocalView", "LocalCountingProtocol", "LocalCountingRun", "run_local_counting"]

#: Payload of a topology message: newly learned ``(node_id, incident_edge_ids)``
#: pairs plus newly learned frontier vertex ids.
TopologyDelta = Tuple[Tuple[Tuple[int, Tuple[int, ...]], ...], Tuple[int, ...]]


class LocalView:
    """A node's evolving approximation ``B̂(u, i)`` of the network.

    Tracks the vertices seen so far and, for the *settled* subset of them,
    their complete incident-edge sets (as first announced).

    Every derived structure the per-round expansion check needs -- BFS
    distances/layers from the owner, the interior set, and the interior's
    out-boundary -- is maintained *incrementally* by :meth:`integrate` and
    tagged with an epoch counter that only advances when adjacency or
    settlement actually changed.  Candidate generation therefore reuses
    cached frozensets across rounds instead of re-running a BFS and an
    interior scan per round, which dominated large-n runs.
    """

    def __init__(self, own_id: int, neighbor_ids: Iterable[int]) -> None:
        self.own_id = own_id
        self.vertices: Set[int] = {own_id} | set(neighbor_ids)
        self.edge_sets: Dict[int, FrozenSet[int]] = {own_id: frozenset(neighbor_ids)}
        # Symmetric adjacency over all known vertices.
        self._adj: Dict[int, Set[int]] = {v: set() for v in self.vertices}
        own_adj = self._adj[own_id]
        for v in self.edge_sets[own_id]:
            own_adj.add(v)
            self._adj[v].add(own_id)
        # BFS distances from the owner over the view graph; ``_layers[d]`` is
        # the set of vertices at distance exactly d.  Vertices the owner
        # cannot reach (possible under fabricated claims) have no entry.
        self._dist: Dict[int, int] = {own_id: 0}
        self._layers: List[Set[int]] = [{own_id}]
        if own_adj:
            self._layers.append(set(own_adj))
            for v in own_adj:
                self._dist[v] = 1
        # Interior tracking: ``_missing[v]`` counts the claimed neighbors of
        # the settled vertex v that are not settled yet; ``_waiting[w]`` lists
        # the settled vertices whose interior membership is blocked on w.
        # ``_interior_out`` is Out(interior) in the view graph, kept in sync
        # with both interior growth and adjacency growth.
        self._missing: Dict[int, int] = {}
        self._waiting: Dict[int, List[int]] = {}
        self._interior: Set[int] = set()
        self._interior_out: Set[int] = set()
        self._settle(own_id, self.edge_sets[own_id])
        # Epoch counter: bumped whenever any derived structure changed; the
        # cached candidate frozensets below are rebuilt only when stale.
        self._epoch = 1
        self._prefix_cache_epoch = 0
        self._prefix_cache: List[FrozenSet[int]] = []

    # -- incremental maintenance ---------------------------------------- #
    def _settle(self, node_id: int, edge_set: FrozenSet[int]) -> None:
        """Register a newly settled vertex with the interior tracker."""
        settled = self.edge_sets
        waiting = self._waiting
        missing = 0
        for w in edge_set:
            if w not in settled:
                missing += 1
                waiting.setdefault(w, []).append(node_id)
        if missing:
            self._missing[node_id] = missing
        else:
            self._add_interior(node_id)
        blocked = waiting.pop(node_id, None)
        if blocked:
            missing_of = self._missing
            for v in blocked:
                left = missing_of[v] - 1
                if left:
                    missing_of[v] = left
                else:
                    del missing_of[v]
                    self._add_interior(v)

    def _add_interior(self, v: int) -> None:
        interior = self._interior
        interior.add(v)
        out = self._interior_out
        out.discard(v)
        for w in self._adj[v]:
            if w not in interior:
                out.add(w)

    def _relax_distances(self, queue: "deque[int]") -> None:
        """Propagate BFS-distance decreases caused by new edges."""
        dist = self._dist
        adj = self._adj
        while queue:
            u = queue.popleft()
            du1 = dist[u] + 1
            for w in adj[u]:
                dw = dist.get(w)
                if dw is None or dw > du1:
                    self._set_dist(w, du1)
                    queue.append(w)

    def _set_dist(self, v: int, d: int) -> None:
        old = self._dist.get(v)
        layers = self._layers
        if old is not None:
            layers[old].discard(v)
        self._dist[v] = d
        while len(layers) <= d:
            layers.append(set())
        layers[d].add(v)

    # -- mutation ------------------------------------------------------- #
    def integrate(
        self,
        reported_edges: Sequence[Tuple[int, Tuple[int, ...]]],
        reported_vertices: Sequence[int],
        *,
        max_degree: int,
    ) -> Tuple[bool, List[Tuple[int, Tuple[int, ...]]], List[int]]:
        """Merge received topology information.

        Returns ``(inconsistent, new_edge_sets, new_vertices)``; the new items
        form next round's delta broadcast.
        """
        inconsistent = False
        new_edge_sets: List[Tuple[int, Tuple[int, ...]]] = []
        new_vertices: List[int] = []
        adj = self._adj
        vertices = self.vertices
        interior = self._interior
        interior_out = self._interior_out
        relax: "deque[int]" = deque()
        dist = self._dist
        for node_id, edge_ids in reported_edges:
            edge_set = frozenset(edge_ids)
            # Identifiers are integers in the model; anything else is
            # malformed Byzantine data and counts as an inconsistency
            # rather than contaminating the view.
            if not isinstance(node_id, int):
                inconsistent = True
                continue
            existing = self.edge_sets.get(node_id)
            if existing is not None:
                # Re-announcements of an already-settled edge set are the
                # common case (every delta arrives once per neighbor); they
                # are deduplicated here, skipping the degree/self-loop checks
                # the stored set already passed.  The element type check must
                # still run: a numeric non-int claim (e.g. float ids) compares
                # equal to the settled ints but is malformed Byzantine data.
                if existing != edge_set or not all(
                    map(int.__instancecheck__, edge_set)
                ):
                    # Conflicting incident-edge claims for a node we already
                    # know about (Line 18 of Algorithm 1).
                    inconsistent = True
                continue
            if len(edge_set) > max_degree or node_id in edge_set:
                inconsistent = True
                continue
            if not all(map(int.__instancecheck__, edge_set)):
                inconsistent = True
                continue
            self.edge_sets[node_id] = edge_set
            new_edge_sets.append((node_id, tuple(sorted(edge_set))))
            if node_id not in vertices:
                vertices.add(node_id)
                new_vertices.append(node_id)
            node_adj = adj.setdefault(node_id, set())
            dn = dist.get(node_id)
            for v in edge_set:
                if v not in vertices:
                    vertices.add(v)
                    new_vertices.append(v)
                if v in node_adj:
                    continue
                node_adj.add(v)
                adj.setdefault(v, set()).add(node_id)
                # A fresh edge can attach a non-interior vertex to the
                # interior (claims about interior vertices arrive late).
                if v in interior:
                    interior_out.add(node_id)
                # BFS distances: relax whichever endpoint the new edge
                # brought closer to the owner.
                dv = dist.get(v)
                if dn is not None and (dv is None or dv > dn + 1):
                    self._set_dist(v, dn + 1)
                    relax.append(v)
                elif dv is not None and (dn is None or dn > dv + 1):
                    dn = dv + 1
                    self._set_dist(node_id, dn)
                    relax.append(node_id)
            self._settle(node_id, edge_set)
        for node_id in reported_vertices:
            if not isinstance(node_id, int):
                inconsistent = True
                continue
            if node_id not in vertices:
                vertices.add(node_id)
                new_vertices.append(node_id)
                adj.setdefault(node_id, set())
        if relax:
            self._relax_distances(relax)
        if new_edge_sets or new_vertices:
            self._epoch += 1
        return inconsistent, new_edge_sets, new_vertices

    # -- structure queries ---------------------------------------------- #
    def adjacency(self) -> Dict[int, Set[int]]:
        """Symmetric adjacency over all known vertices (from known edge sets).

        Maintained incrementally by :meth:`integrate`; callers get the live
        structure and must treat it as read-only.
        """
        return self._adj

    def layer_prefixes(self, adj: Optional[Dict[int, Set[int]]] = None) -> List[FrozenSet[int]]:
        """BFS-layer prefixes ``B̂(u, 0) ⊆ B̂(u, 1) ⊆ ...`` from the owner.

        The prefixes are served from an epoch-tagged cache that is rebuilt
        only when :meth:`integrate` actually changed the view; the ``adj``
        argument is retained for backwards compatibility and ignored (the
        prefixes always describe this view's own adjacency).
        """
        if self._prefix_cache_epoch != self._epoch:
            prefixes: List[FrozenSet[int]] = []
            running: Set[int] = set()
            for layer in self._layers:
                if not layer:
                    break
                running |= layer
                prefixes.append(frozenset(running))
            self._prefix_cache = prefixes
            self._prefix_cache_epoch = self._epoch
        return self._prefix_cache

    def layer_sizes(self) -> List[int]:
        """Sizes of the (contiguous, nonempty) BFS layers from the owner."""
        sizes: List[int] = []
        for layer in self._layers:
            if not layer:
                break
            sizes.append(len(layer))
        return sizes

    def interior_set(self) -> Set[int]:
        """Settled vertices all of whose claimed neighbors are settled.

        Once the honest part of the network has been fully explored, every
        honest vertex is interior, so the interior set contains the honest
        region ``R`` of Lemma 5; its out-boundary is then exactly the layer of
        vertices the adversary is still expanding.  Maintained incrementally
        by :meth:`integrate`; a copy is returned.
        """
        return set(self._interior)

    def expansion_check_candidates(self) -> List[Tuple[int, int]]:
        """``(|S|, |Out(S)|)`` for every subset the practical check inspects.

        Lists every BFS-layer prefix (whose out-boundary in the view graph is
        exactly the next BFS layer) followed by the interior set (whose
        out-boundary is maintained incrementally).  All counts refer to live
        incremental state, so producing them is O(view depth) per round.
        """
        candidates: List[Tuple[int, int]] = []
        sizes = self.layer_sizes()
        prefix = 0
        last = len(sizes) - 1
        for j, layer_size in enumerate(sizes):
            prefix += layer_size
            candidates.append((prefix, sizes[j + 1] if j < last else 0))
        if self._interior:
            candidates.append((len(self._interior), len(self._interior_out)))
        return candidates

    @staticmethod
    def expansion_of(adj: Dict[int, Set[int]], subset: Set[int]) -> float:
        """``|Out(S)| / |S|`` inside the view graph."""
        if not subset:
            return math.inf
        out: Set[int] = set()
        for u in subset:
            for v in adj.get(u, ()):
                if v not in subset:
                    out.add(v)
        return len(out) / len(subset)

    def size(self) -> int:
        """Number of known vertices."""
        return len(self.vertices)


class LocalCountingProtocol(Protocol):
    """Per-node implementation of Algorithm 1."""

    def __init__(self, ctx: NodeContext, params: LocalParameters) -> None:
        self.params = params
        self.view = LocalView(ctx.node_id, ctx.neighbor_ids.values())
        self._decided = False
        self._estimate: Optional[float] = None
        self._decision_round: Optional[int] = None
        # The delta broadcast is accumulated together with its exact
        # ``estimate_payload_bits`` size and id count, so building the message
        # never re-walks the payload (the per-round walk showed up in
        # profiles; deltas carry Θ(Δ^i) identifiers).
        self._pending_edges: List[Tuple[int, Tuple[int, ...]]] = []
        self._pending_vertices: List[int] = []
        self._pending_edge_bits = 0
        self._pending_edge_ids = 0
        self._pending_vertex_bits = 0
        # The initial delta is exactly B̂(u, 1): the node's own edge set and
        # its neighbor vertices (Line 1 of Algorithm 1).
        self._queue_delta(
            [(ctx.node_id, tuple(sorted(ctx.neighbor_ids.values())))],
            sorted(ctx.neighbor_ids.values()),
        )

    # -- Protocol interface --------------------------------------------- #
    @property
    def decided(self) -> bool:
        return self._decided

    @property
    def estimate(self) -> Optional[float]:
        return self._estimate

    @property
    def decision_round(self) -> Optional[int]:
        return self._decision_round

    @property
    def halted(self) -> bool:
        # A decided node terminates and stops broadcasting; its neighbors
        # interpret the silence as muteness and decide themselves (Line 5).
        return self._decided

    # -- helpers ---------------------------------------------------------- #
    def _queue_delta(
        self,
        new_edges: Sequence[Tuple[int, Tuple[int, ...]]],
        new_vertices: Sequence[int],
    ) -> None:
        """Append to the pending delta, accumulating its exact size accounting.

        The running sums reproduce ``estimate_payload_bits`` over the final
        ``TopologyDelta`` payload term by term (each integer costs
        ``max(1, bit_length)`` bits, containers add 2 framing bits per
        element); ``tests/test_perf_equivalence.py`` locks the equivalence
        down.
        """
        edge_bits = 0
        edge_ids = 0
        for node_id, edges in new_edges:
            inner = 0
            for v in edges:
                b = v.bit_length()
                inner += (b if b else 1) + 2
            if not inner:
                inner = 1
            b = node_id.bit_length()
            edge_bits += (b if b else 1) + 2 + inner + 2 + 2
            edge_ids += 1 + len(edges)
        vertex_bits = 0
        for v in new_vertices:
            b = v.bit_length()
            vertex_bits += (b if b else 1) + 2
        self._pending_edges.extend(new_edges)
        self._pending_vertices.extend(new_vertices)
        self._pending_edge_bits += edge_bits
        self._pending_edge_ids += edge_ids
        self._pending_vertex_bits += vertex_bits

    def _delta_message(self) -> Message:
        payload: TopologyDelta = (
            tuple(self._pending_edges),
            tuple(self._pending_vertices),
        )
        num_ids = self._pending_edge_ids + len(self._pending_vertices)
        # ``size_bits`` follows the documented accounting
        # (``estimate_payload_bits`` over the payload), assembled from the
        # accumulators of ``_queue_delta`` instead of a second payload walk.
        edge_sum = self._pending_edge_bits
        vertex_sum = self._pending_vertex_bits
        size_bits = (edge_sum if edge_sum else 1) + 2 + (vertex_sum if vertex_sum else 1) + 2
        message = Message(
            kind="topology", payload=payload, size_bits=size_bits, num_ids=num_ids
        )
        self._pending_edges = []
        self._pending_vertices = []
        self._pending_edge_bits = 0
        self._pending_edge_ids = 0
        self._pending_vertex_bits = 0
        return message

    def _decide(self, round_number: int) -> None:
        self._decided = True
        self._estimate = float(round_number)
        self._decision_round = round_number

    def _expansion_check_fails(self, newly_added: int, round_number: int) -> bool:
        """Line 9-13: does some checked subset of the view fail to expand?"""
        view = self.view
        total = view.size()
        alpha_prime = self.params.alpha_prime

        # (3) Optional exhaustive check for tiny views (test cross-validation):
        # materializes the actual subsets, so it takes the slow path.
        if self.params.exhaustive_subset_check and total <= 16:
            adj = view.adjacency()
            candidates: List[Set[int]] = list(view.layer_prefixes())
            interior = view.interior_set()
            if interior:
                candidates.append(interior)
            vertices = list(adj.keys())
            for size in range(1, total):
                for combo in itertools.combinations(vertices, size):
                    candidates.append(set(combo))
            for subset in candidates:
                if not subset or len(subset) >= total:
                    continue
                if view.expansion_of(adj, subset) < alpha_prime:
                    return True
        else:
            # (1) BFS-layer prefixes (the sets of Lemma 3) and (2) the
            # interior set (the practical stand-in for Lemma 5's R), both
            # read off the view's incremental counters: ``|Out(S)|/|S|``
            # without touching a single edge.
            for size, out_size in view.expansion_check_candidates():
                if size >= total:
                    continue
                if out_size / size < alpha_prime:
                    return True

        # (4) The view stopped growing entirely: Out(B̂(u, i)) = ∅, which is
        # the situation that forces the decision at diam(G) + 1 in Lemma 5.
        if round_number >= 2 and newly_added == 0:
            return True
        return False

    # -- engine callbacks ------------------------------------------------ #
    def on_start(self, ctx: NodeContext) -> Outbox:
        return Broadcast(self._delta_message(), ctx.neighbors)

    def on_round(self, ctx: NodeContext, inbox: List[Message]) -> Outbox:
        if self._decided:
            return {}
        round_number = ctx.round

        # Which neighbors spoke this round?  (Line 5: "some neighbor is mute".)
        speakers = {m.sender for m in inbox if m.kind == "topology"}
        mute_neighbor = any(v not in speakers for v in ctx.neighbors)

        inconsistent = False
        newly_added = 0
        for message in inbox:
            if message.kind != "topology":
                # Unexpected message kinds from a neighbor are malformed
                # information: treat as an inconsistency.
                inconsistent = True
                continue
            payload = message.payload
            if (
                not isinstance(payload, tuple)
                or len(payload) != 2
                or not isinstance(payload[0], tuple)
                or not isinstance(payload[1], tuple)
            ):
                inconsistent = True
                continue
            reported_edges, reported_vertices = payload
            try:
                bad, new_edges, new_vertices = self.view.integrate(
                    reported_edges, reported_vertices, max_degree=self.params.max_degree
                )
            except (TypeError, ValueError):
                inconsistent = True
                continue
            inconsistent = inconsistent or bad
            self._queue_delta(new_edges, new_vertices)
            newly_added += len(new_vertices)

        if inconsistent or mute_neighbor:
            self._decide(round_number)
            return {}

        if self._expansion_check_fails(newly_added, round_number):
            self._decide(round_number)
            return {}

        return Broadcast(self._delta_message(), ctx.neighbors)


@dataclass
class LocalCountingRun:
    """Result wrapper of one Algorithm 1 execution."""

    result: RunResult
    params: LocalParameters
    outcome: CountingOutcome


def run_local_counting(
    graph: Graph,
    *,
    byzantine: Iterable[int] = (),
    adversary: Optional[Adversary] = None,
    params: Optional[LocalParameters] = None,
    seed: int = 0,
    max_rounds: Optional[int] = None,
    evaluation_set: Optional[Set[int]] = None,
) -> LocalCountingRun:
    """Execute Algorithm 1 on ``graph`` and summarize the outcome.

    Parameters
    ----------
    graph:
        The network topology (honest nodes only ever see their local views).
    byzantine:
        Indices of Byzantine nodes.
    adversary:
        Byzantine behaviour; defaults to silence.
    params:
        Algorithm parameters; defaults to :class:`LocalParameters` with the
        graph's maximum degree as Δ.
    seed:
        Master seed (the algorithm is deterministic; the seed only affects
        adversary randomness).
    max_rounds:
        Safety cap; defaults to ``6·ceil(log2 n) + 20``, far above the
        ``diam(G)+1`` bound of Theorem 1 for the expander workloads.
    evaluation_set:
        Nodes over which the outcome statistics are computed (defaults to all
        honest nodes; experiments pass the Lemma 1 ``Good`` set).
    """
    if params is None:
        params = LocalParameters(max_degree=max(2, graph.max_degree()))
    network = Network(graph=graph, byzantine=frozenset(byzantine))
    if max_rounds is None:
        max_rounds = 6 * int(math.ceil(math.log2(max(graph.n, 2)))) + 20

    def factory(ctx: NodeContext) -> Protocol:
        return LocalCountingProtocol(ctx, params)

    engine = SynchronousEngine(
        network,
        factory,
        adversary=adversary,
        seed=seed,
        max_rounds=max_rounds,
    )
    result = engine.run()

    records: Dict[int, DecisionRecord] = {}
    for u, protocol in result.protocols.items():
        records[u] = DecisionRecord(
            node=u,
            decided=protocol.decided,
            estimate=protocol.estimate,
            decision_round=protocol.decision_round,
        )
    outcome = CountingOutcome(
        n=graph.n,
        records=records,
        evaluation_set=set(evaluation_set) if evaluation_set is not None else set(),
        rounds_executed=result.rounds_executed,
        total_messages=result.metrics.total_messages,
        total_bits=result.metrics.total_bits,
        small_message_fraction=result.metrics.small_message_fraction(
            graph.n, list(result.protocols.keys())
        ),
    )
    return LocalCountingRun(result=result, params=params, outcome=outcome)
