"""Algorithm 1: the deterministic, time-optimal LOCAL-model algorithm (Section 4).

Every node ``u`` gossips its current approximation ``B̂(u, i)`` of its ``i``-hop
neighborhood.  It decides on the current round number ``i`` as its estimate of
``log n`` as soon as it either

* notices *structural inconsistencies* in the received topology information
  (a node with degree above the known bound Δ, conflicting incident-edge sets
  for the same node, or a mute neighbor -- Lines 5-7 and the
  ``inconsistent`` predicate), or
* finds a vertex subset of its view whose vertex expansion drops below the
  threshold α′ (Lines 9-13).

Theorem 1: on a bounded-degree graph with constant vertex expansion and up to
``n^(1-γ)`` adversarially placed Byzantine nodes, all ``n - o(n)`` nodes of the
``Good`` set (Lemma 1) decide a value between ``⌊(γ/2)·log_Δ n⌋`` and
``diam(G) + 1``, i.e. a constant-factor approximation of ``log n``, within
``O(log n)`` rounds.

Implementation notes (also summarized in DESIGN.md §2.3)
---------------------------------------------------------
* **Expansion check family.**  Line 9 of the pseudocode checks *every* subset
  of the local view -- exponential local computation, which the LOCAL model
  permits but a simulator cannot afford for views of thousands of vertices.
  The correctness argument only ever relies on two kinds of sets:

  1. the per-radius balls ``B̂(u, j)`` (Lemma 3's induction), and
  2. the honest part ``R`` of the view, whose out-boundary consists solely of
     the (few) Byzantine vertices because fake vertices can never be claimed
     adjacent to an honest vertex without contradicting that honest vertex's
     own edge report (Lemma 4/5).

  We therefore check (1) every BFS-layer prefix of the view, (2) the
  *interior set* of the view -- the settled vertices all of whose claimed
  neighbors are settled, which contains the honest region once the network
  has been fully explored and whose out-boundary is then exactly the set of
  vertices the adversary is still "growing" -- and (3) whether the view grew
  at all this round (the ``Out(B̂(u,i)) = ∅`` case that forces the Lemma 5
  decision at ``diam(G)+1``).  An exhaustive all-subsets check
  (``LocalParameters.exhaustive_subset_check``) is available for small views
  and is used by the unit tests to confirm the practical family triggers the
  same decisions there.  An unbounded adversary willing to fabricate a fake
  region whose *frontier* grows as Ω(α′·n) fresh vertices per round can evade
  the polynomial family (but not the exhaustive one); the experiment suite
  measures the shipped adversaries, which are caught (see EXPERIMENTS.md).
* **Delta gossip.**  Honest nodes broadcast only the part of their view that
  is new since the previous round; re-broadcasting the full view every round
  carries no additional information in a synchronous network and would make
  large simulations needlessly slow.  Message sizes still grow with the
  frontier (Θ(Δ^i) identifiers), preserving the paper's point that
  Algorithm 1 is *not* a small-message algorithm (experiment E10).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.estimate import CountingOutcome, DecisionRecord
from repro.core.parameters import LocalParameters
from repro.simulator.byzantine import Adversary
from repro.graphs.graph import Graph
from repro.simulator.engine import RunResult, SynchronousEngine
from repro.simulator.messages import Message
from repro.simulator.network import Network
from repro.simulator.node import NodeContext, Outbox, Protocol

__all__ = ["LocalView", "LocalCountingProtocol", "LocalCountingRun", "run_local_counting"]

#: Payload of a topology message: newly learned ``(node_id, incident_edge_ids)``
#: pairs plus newly learned frontier vertex ids.
TopologyDelta = Tuple[Tuple[Tuple[int, Tuple[int, ...]], ...], Tuple[int, ...]]


class LocalView:
    """A node's evolving approximation ``B̂(u, i)`` of the network.

    Tracks the vertices seen so far and, for the *settled* subset of them,
    their complete incident-edge sets (as first announced).
    """

    def __init__(self, own_id: int, neighbor_ids: Iterable[int]) -> None:
        self.own_id = own_id
        self.vertices: Set[int] = {own_id} | set(neighbor_ids)
        self.edge_sets: Dict[int, FrozenSet[int]] = {own_id: frozenset(neighbor_ids)}
        # Symmetric adjacency over all known vertices, maintained
        # *incrementally* by ``integrate`` (the expansion check reads it every
        # round; rebuilding it from scratch dominated large-n runs).
        self._adj: Dict[int, Set[int]] = {v: set() for v in self.vertices}
        own_adj = self._adj[own_id]
        for v in self.edge_sets[own_id]:
            own_adj.add(v)
            self._adj[v].add(own_id)

    # -- mutation ------------------------------------------------------- #
    def integrate(
        self,
        reported_edges: Sequence[Tuple[int, Tuple[int, ...]]],
        reported_vertices: Sequence[int],
        *,
        max_degree: int,
    ) -> Tuple[bool, List[Tuple[int, Tuple[int, ...]]], List[int]]:
        """Merge received topology information.

        Returns ``(inconsistent, new_edge_sets, new_vertices)``; the new items
        form next round's delta broadcast.
        """
        inconsistent = False
        new_edge_sets: List[Tuple[int, Tuple[int, ...]]] = []
        new_vertices: List[int] = []
        adj = self._adj
        for node_id, edge_ids in reported_edges:
            edge_set = frozenset(edge_ids)
            if len(edge_set) > max_degree or node_id in edge_set:
                inconsistent = True
                continue
            # Identifiers are integers in the model; anything else is
            # malformed Byzantine data and counts as an inconsistency
            # rather than contaminating the view.
            if not isinstance(node_id, int) or not all(
                isinstance(v, int) for v in edge_set
            ):
                inconsistent = True
                continue
            existing = self.edge_sets.get(node_id)
            if existing is not None:
                if existing != edge_set:
                    # Conflicting incident-edge claims for a node we already
                    # know about (Line 18 of Algorithm 1).
                    inconsistent = True
                continue
            self.edge_sets[node_id] = edge_set
            new_edge_sets.append((node_id, tuple(sorted(edge_set))))
            if node_id not in self.vertices:
                self.vertices.add(node_id)
                new_vertices.append(node_id)
            node_adj = adj.setdefault(node_id, set())
            for v in edge_set:
                if v not in self.vertices:
                    self.vertices.add(v)
                    new_vertices.append(v)
                node_adj.add(v)
                adj.setdefault(v, set()).add(node_id)
        for node_id in reported_vertices:
            if not isinstance(node_id, int):
                inconsistent = True
                continue
            if node_id not in self.vertices:
                self.vertices.add(node_id)
                new_vertices.append(node_id)
                adj.setdefault(node_id, set())
        return inconsistent, new_edge_sets, new_vertices

    # -- structure queries ---------------------------------------------- #
    def adjacency(self) -> Dict[int, Set[int]]:
        """Symmetric adjacency over all known vertices (from known edge sets).

        Maintained incrementally by :meth:`integrate`; callers get the live
        structure and must treat it as read-only.
        """
        return self._adj

    def layer_prefixes(self, adj: Dict[int, Set[int]]) -> List[Set[int]]:
        """BFS-layer prefixes ``B̂(u, 0) ⊆ B̂(u, 1) ⊆ ...`` from the owner."""
        dist = {self.own_id: 0}
        frontier = [self.own_id]
        layers: List[Set[int]] = [{self.own_id}]
        while frontier:
            nxt: List[int] = []
            for u in frontier:
                for v in adj.get(u, ()):
                    if v not in dist:
                        dist[v] = dist[u] + 1
                        nxt.append(v)
            if not nxt:
                break
            layers.append(set(nxt))
            frontier = nxt
        prefixes: List[Set[int]] = []
        running: Set[int] = set()
        for layer in layers:
            running |= layer
            prefixes.append(set(running))
        return prefixes

    def interior_set(self) -> Set[int]:
        """Settled vertices all of whose claimed neighbors are settled.

        Once the honest part of the network has been fully explored, every
        honest vertex is interior, so the interior set contains the honest
        region ``R`` of Lemma 5; its out-boundary is then exactly the layer of
        vertices the adversary is still expanding.
        """
        settled = set(self.edge_sets)
        return {
            v
            for v, edges in self.edge_sets.items()
            if all(w in settled for w in edges)
        }

    @staticmethod
    def expansion_of(adj: Dict[int, Set[int]], subset: Set[int]) -> float:
        """``|Out(S)| / |S|`` inside the view graph."""
        if not subset:
            return math.inf
        out: Set[int] = set()
        for u in subset:
            for v in adj.get(u, ()):
                if v not in subset:
                    out.add(v)
        return len(out) / len(subset)

    def size(self) -> int:
        """Number of known vertices."""
        return len(self.vertices)


class LocalCountingProtocol(Protocol):
    """Per-node implementation of Algorithm 1."""

    def __init__(self, ctx: NodeContext, params: LocalParameters) -> None:
        self.params = params
        self.view = LocalView(ctx.node_id, ctx.neighbor_ids.values())
        self._decided = False
        self._estimate: Optional[float] = None
        self._decision_round: Optional[int] = None
        # The initial delta is exactly B̂(u, 1): the node's own edge set and
        # its neighbor vertices (Line 1 of Algorithm 1).
        self._pending_edges: List[Tuple[int, Tuple[int, ...]]] = [
            (ctx.node_id, tuple(sorted(ctx.neighbor_ids.values())))
        ]
        self._pending_vertices: List[int] = sorted(ctx.neighbor_ids.values())

    # -- Protocol interface --------------------------------------------- #
    @property
    def decided(self) -> bool:
        return self._decided

    @property
    def estimate(self) -> Optional[float]:
        return self._estimate

    @property
    def decision_round(self) -> Optional[int]:
        return self._decision_round

    @property
    def halted(self) -> bool:
        # A decided node terminates and stops broadcasting; its neighbors
        # interpret the silence as muteness and decide themselves (Line 5).
        return self._decided

    # -- helpers ---------------------------------------------------------- #
    def _delta_message(self) -> Message:
        payload: TopologyDelta = (
            tuple(self._pending_edges),
            tuple(self._pending_vertices),
        )
        num_ids = sum(1 + len(edges) for _, edges in self._pending_edges) + len(
            self._pending_vertices
        )
        # Route construction through ``Message.make`` so ``size_bits`` follows
        # the documented accounting (``estimate_payload_bits`` over the
        # payload) instead of a flat per-entry constant; the identifier count
        # is still reported separately via ``num_ids``.
        message = Message.make("topology", payload, num_ids=num_ids)
        self._pending_edges = []
        self._pending_vertices = []
        return message

    def _decide(self, round_number: int) -> None:
        self._decided = True
        self._estimate = float(round_number)
        self._decision_round = round_number

    def _expansion_check_fails(self, newly_added: int, round_number: int) -> bool:
        """Line 9-13: does some checked subset of the view fail to expand?"""
        adj = self.view.adjacency()
        total = len(adj)
        candidates: List[Set[int]] = []

        # (1) BFS-layer prefixes of the view (the sets of Lemma 3).
        candidates.extend(self.view.layer_prefixes(adj))

        # (2) The interior set (the practical stand-in for Lemma 5's R).
        interior = self.view.interior_set()
        if interior:
            candidates.append(interior)

        # (3) Optional exhaustive check for tiny views (test cross-validation).
        if self.params.exhaustive_subset_check and total <= 16:
            vertices = list(adj.keys())
            for size in range(1, total):
                for combo in itertools.combinations(vertices, size):
                    candidates.append(set(combo))

        for subset in candidates:
            if not subset or len(subset) >= total:
                continue
            if self.view.expansion_of(adj, subset) < self.params.alpha_prime:
                return True

        # (4) The view stopped growing entirely: Out(B̂(u, i)) = ∅, which is
        # the situation that forces the decision at diam(G) + 1 in Lemma 5.
        if round_number >= 2 and newly_added == 0:
            return True
        return False

    # -- engine callbacks ------------------------------------------------ #
    def on_start(self, ctx: NodeContext) -> Outbox:
        message = self._delta_message()
        return {v: [message] for v in ctx.neighbors}

    def on_round(self, ctx: NodeContext, inbox: List[Message]) -> Outbox:
        if self._decided:
            return {}
        round_number = ctx.round

        # Which neighbors spoke this round?  (Line 5: "some neighbor is mute".)
        speakers = {m.sender for m in inbox if m.kind == "topology"}
        mute_neighbor = any(v not in speakers for v in ctx.neighbors)

        inconsistent = False
        newly_added = 0
        for message in inbox:
            if message.kind != "topology":
                # Unexpected message kinds from a neighbor are malformed
                # information: treat as an inconsistency.
                inconsistent = True
                continue
            payload = message.payload
            if (
                not isinstance(payload, tuple)
                or len(payload) != 2
                or not isinstance(payload[0], tuple)
                or not isinstance(payload[1], tuple)
            ):
                inconsistent = True
                continue
            reported_edges, reported_vertices = payload
            try:
                bad, new_edges, new_vertices = self.view.integrate(
                    reported_edges, reported_vertices, max_degree=self.params.max_degree
                )
            except (TypeError, ValueError):
                inconsistent = True
                continue
            inconsistent = inconsistent or bad
            self._pending_edges.extend(new_edges)
            self._pending_vertices.extend(new_vertices)
            newly_added += len(new_vertices)

        if inconsistent or mute_neighbor:
            self._decide(round_number)
            return {}

        if self._expansion_check_fails(newly_added, round_number):
            self._decide(round_number)
            return {}

        message = self._delta_message()
        return {v: [message] for v in ctx.neighbors}


@dataclass
class LocalCountingRun:
    """Result wrapper of one Algorithm 1 execution."""

    result: RunResult
    params: LocalParameters
    outcome: CountingOutcome


def run_local_counting(
    graph: Graph,
    *,
    byzantine: Iterable[int] = (),
    adversary: Optional[Adversary] = None,
    params: Optional[LocalParameters] = None,
    seed: int = 0,
    max_rounds: Optional[int] = None,
    evaluation_set: Optional[Set[int]] = None,
) -> LocalCountingRun:
    """Execute Algorithm 1 on ``graph`` and summarize the outcome.

    Parameters
    ----------
    graph:
        The network topology (honest nodes only ever see their local views).
    byzantine:
        Indices of Byzantine nodes.
    adversary:
        Byzantine behaviour; defaults to silence.
    params:
        Algorithm parameters; defaults to :class:`LocalParameters` with the
        graph's maximum degree as Δ.
    seed:
        Master seed (the algorithm is deterministic; the seed only affects
        adversary randomness).
    max_rounds:
        Safety cap; defaults to ``6·ceil(log2 n) + 20``, far above the
        ``diam(G)+1`` bound of Theorem 1 for the expander workloads.
    evaluation_set:
        Nodes over which the outcome statistics are computed (defaults to all
        honest nodes; experiments pass the Lemma 1 ``Good`` set).
    """
    if params is None:
        params = LocalParameters(max_degree=max(2, graph.max_degree()))
    network = Network(graph=graph, byzantine=frozenset(byzantine))
    if max_rounds is None:
        max_rounds = 6 * int(math.ceil(math.log2(max(graph.n, 2)))) + 20

    def factory(ctx: NodeContext) -> Protocol:
        return LocalCountingProtocol(ctx, params)

    engine = SynchronousEngine(
        network,
        factory,
        adversary=adversary,
        seed=seed,
        max_rounds=max_rounds,
    )
    result = engine.run()

    records: Dict[int, DecisionRecord] = {}
    for u, protocol in result.protocols.items():
        records[u] = DecisionRecord(
            node=u,
            decided=protocol.decided,
            estimate=protocol.estimate,
            decision_round=protocol.decision_round,
        )
    outcome = CountingOutcome(
        n=graph.n,
        records=records,
        evaluation_set=set(evaluation_set) if evaluation_set is not None else set(),
        rounds_executed=result.rounds_executed,
        total_messages=result.metrics.total_messages,
        total_bits=result.metrics.total_bits,
        small_message_fraction=result.metrics.small_message_fraction(
            graph.n, list(result.protocols.keys())
        ),
    )
    return LocalCountingRun(result=result, params=params, outcome=outcome)
