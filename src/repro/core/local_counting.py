"""Algorithm 1: the deterministic, time-optimal LOCAL-model algorithm (Section 4).

Every node ``u`` gossips its current approximation ``B̂(u, i)`` of its ``i``-hop
neighborhood.  It decides on the current round number ``i`` as its estimate of
``log n`` as soon as it either

* notices *structural inconsistencies* in the received topology information
  (a node with degree above the known bound Δ, conflicting incident-edge sets
  for the same node, or a mute neighbor -- Lines 5-7 and the
  ``inconsistent`` predicate), or
* finds a vertex subset of its view whose vertex expansion drops below the
  threshold α′ (Lines 9-13).

Theorem 1: on a bounded-degree graph with constant vertex expansion and up to
``n^(1-γ)`` adversarially placed Byzantine nodes, all ``n - o(n)`` nodes of the
``Good`` set (Lemma 1) decide a value between ``⌊(γ/2)·log_Δ n⌋`` and
``diam(G) + 1``, i.e. a constant-factor approximation of ``log n``, within
``O(log n)`` rounds.

Implementation notes (also summarized in DESIGN.md §2.3)
---------------------------------------------------------
* **Expansion check family.**  Line 9 of the pseudocode checks *every* subset
  of the local view -- exponential local computation, which the LOCAL model
  permits but a simulator cannot afford for views of thousands of vertices.
  The correctness argument only ever relies on two kinds of sets:

  1. the per-radius balls ``B̂(u, j)`` (Lemma 3's induction), and
  2. the honest part ``R`` of the view, whose out-boundary consists solely of
     the (few) Byzantine vertices because fake vertices can never be claimed
     adjacent to an honest vertex without contradicting that honest vertex's
     own edge report (Lemma 4/5).

  We therefore check (1) every BFS-layer prefix of the view, (2) the
  *interior set* of the view -- the settled vertices all of whose claimed
  neighbors are settled, which contains the honest region once the network
  has been fully explored and whose out-boundary is then exactly the set of
  vertices the adversary is still "growing" -- and (3) whether the view grew
  at all this round (the ``Out(B̂(u,i)) = ∅`` case that forces the Lemma 5
  decision at ``diam(G)+1``).  An exhaustive all-subsets check
  (``LocalParameters.exhaustive_subset_check``) is available for small views
  and is used by the unit tests to confirm the practical family triggers the
  same decisions there.  An unbounded adversary willing to fabricate a fake
  region whose *frontier* grows as Ω(α′·n) fresh vertices per round can evade
  the polynomial family (but not the exhaustive one); the experiment suite
  measures the shipped adversaries, which are caught (see EXPERIMENTS.md).
* **Delta gossip.**  Honest nodes broadcast only the part of their view that
  is new since the previous round; re-broadcasting the full view every round
  carries no additional information in a synchronous network and would make
  large simulations needlessly slow.  Message sizes still grow with the
  frontier (Θ(Δ^i) identifiers), preserving the paper's point that
  Algorithm 1 is *not* a small-message algorithm (experiment E10).
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, KeysView, List, Optional, Sequence, Set, Tuple

from repro.core.estimate import CountingOutcome, DecisionRecord
from repro.core.parameters import LocalParameters
from repro.simulator.byzantine import Adversary
from repro.simulator.churn import ChurnSchedule
from repro.graphs.graph import Graph
from repro.simulator.engine import RunResult, SynchronousEngine
from repro.simulator.messages import Message
from repro.simulator.network import Network
from repro.simulator.node import Broadcast, NodeContext, Outbox, Protocol

__all__ = [
    "LocalView",
    "ClaimInterner",
    "LocalCountingProtocol",
    "LocalCountingRun",
    "run_local_counting",
]

#: Payload of a topology message: newly learned ``(node_id, incident_edge_ids)``
#: pairs plus newly learned frontier vertex ids.
TopologyDelta = Tuple[Tuple[Tuple[int, Tuple[int, ...]], ...], Tuple[int, ...]]


def _claim_accounting(node_id: int, edges: Sequence[int]) -> Tuple[int, int]:
    """Exact ``estimate_payload_bits`` cost and id count of one claim entry
    inside a delta payload (see ``LocalCountingProtocol._queue_delta``)."""
    inner = 0
    for v in edges:
        b = v.bit_length()
        inner += (b if b else 1) + 2
    if not inner:
        inner = 1
    b = node_id.bit_length()
    return (b if b else 1) + 2 + inner + 2 + 2, 1 + len(edges)


class _ClaimRecord:
    """Per-run shared parse of one ``(node_id, edge_ids)`` topology claim.

    Every receiver of a claim needs the same derived facts -- the frozenset
    of its edge ids, the canonical sorted tuple it forwards, whether the ids
    are well-typed, and the claim's exact delta-payload bit accounting.  All
    of them are pure functions of the claim, so they are computed once per
    run and shared by every :class:`LocalView` (see :class:`ClaimInterner`).
    """

    __slots__ = ("entry", "node_id", "edge_set", "canonical", "valid", "size", "bits", "num_ids")

    def __init__(self, node_id: int, edge_ids: Iterable[int]) -> None:
        edge_set = frozenset(edge_ids)
        self.node_id = node_id
        self.edge_set = edge_set
        self.size = len(edge_set)
        self.valid = (
            isinstance(node_id, int)
            and node_id not in edge_set
            and all(map(int.__instancecheck__, edge_set))
        )
        if self.valid:
            canonical = tuple(sorted(edge_set))
            self.canonical = canonical
            #: The singleton payload entry honest forwarders re-broadcast.
            self.entry = (node_id, canonical)
            self.bits, self.num_ids = _claim_accounting(node_id, canonical)
        else:
            # Malformed claims are never settled or forwarded; they only need
            # the ``valid`` verdict (sorting a mixed-type edge set may not
            # even be possible).
            self.canonical = None
            self.entry = None
            self.bits = 0
            self.num_ids = 0


class ClaimInterner:
    """Hash-consing table for topology claims, shared by one run's views.

    ``by_id`` maps ``id(record.entry)`` of the singleton payload entries to
    their records: honest nodes forward the singleton entry object itself, so
    a claim that already reached a view is recognized with a single identity
    lookup, and a claim's frozenset/canonical-tuple/bit-accounting is parsed
    once per *run* instead of once per (receiver, arrival).  The singleton
    entries are kept alive by the table, so the ids are stable for the
    interner's lifetime.  Byzantine payload entries that are not singletons
    fall back to the value-keyed table (and are interned on first sight when
    hashable), or to direct parsing when unhashable.
    """

    __slots__ = ("by_id", "by_value")

    def __init__(self) -> None:
        self.by_id: Dict[int, _ClaimRecord] = {}
        self.by_value: Dict[Tuple[int, Tuple[int, ...]], _ClaimRecord] = {}

    def intern(self, node_id: int, edge_ids: Iterable[int]) -> _ClaimRecord:
        """Record for a claim given by hashable components (build on miss)."""
        key = (node_id, tuple(edge_ids))
        record = self.by_value.get(key)
        if record is None:
            record = _ClaimRecord(node_id, key[1])
            self.by_value[key] = record
            if record.valid:
                # Invalid records have ``entry = None``; registering them
                # would plant ``id(None)`` in the identity table and break
                # raise-parity for payloads containing a literal None entry.
                self.by_value.setdefault(record.entry, record)
                self.by_id[id(record.entry)] = record
        return record


class LocalView:
    """A node's evolving approximation ``B̂(u, i)`` of the network.

    Tracks the vertices seen so far and, for the *settled* subset of them,
    their complete incident-edge sets (as first announced).

    The storage is *columnar*: node ids are interned into a contiguous index
    space on first sight and every per-vertex structure is a dense list slot
    -- the symmetric adjacency, the BFS layers from the owner, the interior
    set, and the interior's out-boundary are all Python-int bitmasks over
    those slots.  :meth:`integrate` batches a whole delta's edge insertions
    into mask OR-updates and runs a single distance-relaxation pass at the
    end, and the Algorithm 1 expansion check reads popcounts
    (``int.bit_count``) of the layer/interior masks instead of iterating
    sets.  The classic ``Dict``/``Set``-of-ids views (``adjacency()``,
    ``layer_prefixes()``, ``interior_set()``) are materialized lazily behind
    an epoch-tagged cache, so callers of the old interface are untouched;
    :class:`repro.core.local_view_reference.SetBasedLocalView` retains the
    set-based implementation for equivalence testing.
    """

    def __init__(
        self,
        own_id: int,
        neighbor_ids: Iterable[int],
        *,
        interner: Optional[ClaimInterner] = None,
    ) -> None:
        self.own_id = own_id
        # Claim interner (shared across a run's views when provided) and the
        # set of singleton claim entries this view has already integrated.
        self._interner = interner if interner is not None else ClaimInterner()
        self._seen_entries: Set[int] = set()
        # Interning: id -> slot, slot -> id, slot -> (1 << slot).
        self._index: Dict[int, int] = {}
        self._ids: List[int] = []
        self._bits: List[int] = []
        # Dense per-slot columns.
        self._adj: List[int] = []  # adjacency mask
        self._dist: List[int] = []  # BFS distance from owner (-1 unreachable)
        self._claim: List[Optional[Tuple[int, ...]]] = []  # canonical settled tuple
        # ``_layer_masks[d]``: mask of vertices at distance exactly d.
        self._layer_masks: List[int] = []
        self.edge_sets: Dict[int, FrozenSet[int]] = {}
        # Interior tracking: ``_missing[s]`` counts the claimed neighbors of
        # the settled slot s that are not settled yet; ``_waiting[w]`` lists
        # the settled slots whose interior membership is blocked on slot w.
        self._missing: Dict[int, int] = {}
        self._waiting: Dict[int, List[int]] = {}
        self._interior_mask = 0
        self._interior_out_mask = 0

        own_slot = self._intern(own_id)  # slot 0
        self._dist[own_slot] = 0
        self._layer_masks.append(self._bits[own_slot])
        own_edges = frozenset(neighbor_ids)
        self.edge_sets[own_id] = own_edges
        self._claim[own_slot] = tuple(sorted(own_edges))
        own_mask = 0
        layer1 = 0
        for v in own_edges:
            j = self._intern(v)
            jb = self._bits[j]
            own_mask |= jb
            layer1 |= jb
            self._adj[j] = self._bits[own_slot]
            self._dist[j] = 1
        self._adj[own_slot] = own_mask
        if layer1:
            self._layer_masks.append(layer1)
        self._settle(own_slot, own_edges)
        # Epoch counter: bumped whenever the view changed; the materialized
        # set/dict adapters below are rebuilt only when stale.
        self._epoch = 1
        self._prefix_cache_epoch = 0
        self._prefix_cache: List[FrozenSet[int]] = []
        self._adjacency_cache_epoch = 0
        self._adjacency_cache: Dict[int, Set[int]] = {}

    # -- interning ------------------------------------------------------- #
    def _intern(self, node_id: int) -> int:
        """Slot of ``node_id``, allocating a fresh one on first sight."""
        idx = self._index.get(node_id)
        if idx is None:
            idx = len(self._ids)
            self._index[node_id] = idx
            self._ids.append(node_id)
            self._bits.append(1 << idx)
            self._adj.append(0)
            self._dist.append(-1)
            self._claim.append(None)
        return idx

    def _mask_ids(self, mask: int) -> List[int]:
        """Materialize the node ids of the set bits of ``mask``."""
        ids = self._ids
        out: List[int] = []
        while mask:
            low = mask & -mask
            out.append(ids[low.bit_length() - 1])
            mask ^= low
        return out

    # -- incremental maintenance ---------------------------------------- #
    def _settle(self, slot: int, edge_set: FrozenSet[int]) -> None:
        """Register a newly settled slot with the interior tracker."""
        index = self._index
        claim = self._claim
        waiting = self._waiting
        missing = 0
        for w in edge_set:
            j = index[w]
            if claim[j] is None:
                missing += 1
                waiting.setdefault(j, []).append(slot)
        if missing:
            self._missing[slot] = missing
        else:
            self._add_interior(slot)
        blocked = waiting.pop(slot, None)
        if blocked:
            missing_of = self._missing
            for v in blocked:
                left = missing_of[v] - 1
                if left:
                    missing_of[v] = left
                else:
                    del missing_of[v]
                    self._add_interior(v)

    def _add_interior(self, slot: int) -> None:
        interior = self._interior_mask | self._bits[slot]
        self._interior_mask = interior
        self._interior_out_mask = (self._interior_out_mask | self._adj[slot]) & ~interior

    def _set_dist(self, slot: int, d: int) -> None:
        old = self._dist[slot]
        b = self._bits[slot]
        layers = self._layer_masks
        if old >= 0:
            layers[old] &= ~b
        self._dist[slot] = d
        while len(layers) <= d:
            layers.append(0)
        layers[d] |= b

    def _relax_batch(self, pending: List[Tuple[int, int]]) -> None:
        """One relaxation pass over a batch of ``(slot, new_edge_mask)`` pairs.

        Seeds the BFS-decrease propagation with every endpoint a new edge
        brought closer to the owner; distances only ever decrease, so the
        fixpoint equals a from-scratch BFS over the updated adjacency.
        """
        dist = self._dist
        queue: "deque[int]" = deque()
        for slot, mask in pending:
            ds = dist[slot]
            while mask:
                low = mask & -mask
                mask ^= low
                j = low.bit_length() - 1
                dj = dist[j]
                if ds >= 0 and (dj < 0 or dj > ds + 1):
                    self._set_dist(j, ds + 1)
                    queue.append(j)
                elif dj >= 0 and (ds < 0 or ds > dj + 1):
                    ds = dj + 1
                    self._set_dist(slot, ds)
                    queue.append(slot)
        adj = self._adj
        while queue:
            u = queue.popleft()
            du1 = dist[u] + 1
            mask = adj[u]
            while mask:
                low = mask & -mask
                mask ^= low
                w = low.bit_length() - 1
                dw = dist[w]
                if dw < 0 or dw > du1:
                    self._set_dist(w, du1)
                    queue.append(w)

    # -- mutation ------------------------------------------------------- #
    def integrate(
        self,
        reported_edges: Sequence[Tuple[int, Tuple[int, ...]]],
        reported_vertices: Sequence[int],
        *,
        max_degree: int,
        allow_updates: bool = False,
    ) -> Tuple[bool, List[Tuple[int, Tuple[int, ...]]], List[int]]:
        """Merge received topology information.

        Returns ``(inconsistent, new_edge_sets, new_vertices)``; the new items
        form next round's delta broadcast.

        With ``allow_updates=True`` (dynamic-topology runs) a claim that
        conflicts with the settled one is accepted as a *re-announcement*
        instead of flagged inconsistent, and the derived structures are
        rebuilt from the settled claims (see :meth:`_integrate_dynamic`).
        The default static path below is untouched by the dynamic feature.
        """
        if allow_updates:
            return self._integrate_dynamic(
                reported_edges, reported_vertices, max_degree=max_degree
            )
        inconsistent = False
        new_edge_sets: List[Tuple[int, Tuple[int, ...]]] = []
        new_vertices: List[int] = []
        index = self._index
        bits = self._bits
        adj = self._adj
        claim = self._claim
        intern = self._intern
        waiting = self._waiting
        by_id = self._interner.by_id
        by_value = self._interner.by_value
        seen = self._seen_entries
        pending: List[Tuple[int, int]] = []
        for entry in reported_edges:
            record = by_id.get(id(entry))
            if record is None:
                node_id, edge_ids = entry
                # Only *type-pure* entries (int id, tuple of ints) may touch
                # the value-keyed table: numerically equal but differently
                # typed claims (float ids) hash like the int claim and would
                # alias its record, dodging the malformed-payload check.
                if (
                    isinstance(node_id, int)
                    and type(edge_ids) is tuple
                    and all(map(int.__instancecheck__, edge_ids))
                ):
                    record = by_value.get(entry)
                    if record is None:
                        record = _ClaimRecord(node_id, edge_ids)
                        if record.valid:
                            # Reuse an equivalent singleton if one was
                            # interned already (the same claim may arrive in
                            # non-canonical element order).
                            existing = by_value.get(record.entry)
                            if existing is not None:
                                record = existing
                            else:
                                by_value[record.entry] = record
                                by_id[id(record.entry)] = record
                        by_value[entry] = record
                else:
                    # Malformed or exotically typed claim: parse directly
                    # (matching the pre-interning per-arrival cost and raise
                    # behavior for unhashable containers).  A claim that
                    # nevertheless parses as *valid* (e.g. int edges in a
                    # list container) must still be interned: ``seen`` stores
                    # ``id(record.entry)``, which is only stable while the
                    # interner pins the entry alive.
                    record = _ClaimRecord(node_id, edge_ids)
                    if record.valid:
                        existing = by_value.get(record.entry)
                        if existing is not None:
                            record = existing
                        else:
                            by_value[record.entry] = record
                            by_id[id(record.entry)] = record
            rid = id(record.entry)
            if rid in seen:
                # Re-announcement of an already-integrated claim: the common
                # case (every delta arrives once per neighbor), recognized by
                # the singleton entry's identity alone.
                continue
            # Identifiers are integers in the model; anything else (as well
            # as a self-loop claim) is malformed Byzantine data and counts as
            # an inconsistency rather than contaminating the view.
            if not record.valid or record.size > max_degree:
                inconsistent = True
                continue
            node_id = record.node_id
            slot = index.get(node_id)
            if slot is not None and claim[slot] is not None:
                if claim[slot] == record.canonical:
                    # Same edge set re-announced under a different payload
                    # object: silently deduplicate, like every later arrival.
                    seen.add(rid)
                else:
                    # Conflicting incident-edge claims for a node we already
                    # know about (Line 18 of Algorithm 1).
                    inconsistent = True
                continue
            seen.add(rid)
            if slot is None:
                slot = intern(node_id)
                new_vertices.append(node_id)
            edge_set = record.edge_set
            self.edge_sets[node_id] = edge_set
            claim[slot] = record.canonical
            new_edge_sets.append(record.entry)
            slot_bit = bits[slot]
            adj_slot = adj[slot]
            interior = self._interior_mask
            interior_out = self._interior_out_mask
            edge_mask = 0
            missing = 0
            for v in edge_set:
                j = index.get(v)
                if j is None:
                    j = intern(v)
                    new_vertices.append(v)
                if claim[j] is None:
                    missing += 1
                    waiting.setdefault(j, []).append(slot)
                jb = bits[j]
                if adj_slot & jb:
                    continue
                edge_mask |= jb
                adj[j] |= slot_bit
                # A fresh edge can attach a non-interior vertex to the
                # interior (claims about interior vertices arrive late).
                if interior & jb:
                    interior_out |= slot_bit
            adj[slot] = adj_slot | edge_mask
            self._interior_out_mask = interior_out
            if edge_mask:
                pending.append((slot, edge_mask))
            # Interior settlement (the mask analogue of the set-based
            # ``_settle``; the missing count was accumulated above).
            if missing:
                self._missing[slot] = missing
            else:
                self._add_interior(slot)
            blocked = waiting.pop(slot, None)
            if blocked:
                missing_of = self._missing
                for w in blocked:
                    left = missing_of[w] - 1
                    if left:
                        missing_of[w] = left
                    else:
                        del missing_of[w]
                        self._add_interior(w)
        for node_id in reported_vertices:
            if not isinstance(node_id, int):
                inconsistent = True
                continue
            if node_id not in index:
                intern(node_id)
                new_vertices.append(node_id)
        if pending:
            self._relax_batch(pending)
        if new_edge_sets or new_vertices:
            self._epoch += 1
        return inconsistent, new_edge_sets, new_vertices

    # -- dynamic topology (churn) ---------------------------------------- #
    def _resolve_record(self, entry) -> _ClaimRecord:
        """Interner resolution of one payload entry (the static path inlines
        this logic; the dynamic path shares it here)."""
        by_id = self._interner.by_id
        record = by_id.get(id(entry))
        if record is not None:
            return record
        by_value = self._interner.by_value
        node_id, edge_ids = entry
        if (
            isinstance(node_id, int)
            and type(edge_ids) is tuple
            and all(map(int.__instancecheck__, edge_ids))
        ):
            record = by_value.get(entry)
            if record is None:
                record = _ClaimRecord(node_id, edge_ids)
                if record.valid:
                    existing = by_value.get(record.entry)
                    if existing is not None:
                        record = existing
                    else:
                        by_value[record.entry] = record
                        by_id[id(record.entry)] = record
                by_value[entry] = record
        else:
            record = _ClaimRecord(node_id, edge_ids)
            if record.valid:
                existing = by_value.get(record.entry)
                if existing is not None:
                    record = existing
                else:
                    by_value[record.entry] = record
                    by_id[id(record.entry)] = record
        return record

    def _integrate_dynamic(
        self,
        reported_edges: Sequence[Tuple[int, Tuple[int, ...]]],
        reported_vertices: Sequence[int],
        *,
        max_degree: int,
    ) -> Tuple[bool, List[Tuple[int, Tuple[int, ...]]], List[int]]:
        """Integrate under churn semantics.

        Differences from the static path: a conflicting claim for an
        already-settled node is accepted as an update (nodes legitimately
        re-announce changed edge sets; equivocation detection via Line 18 is
        therefore downgraded in dynamic runs), and instead of incremental
        adjacency/interior/distance maintenance -- which is unsound once
        settled facts can be *retracted* mid-call -- every structure is
        rebuilt from the settled claims at the end when anything changed (the
        bounded rebuild-from-epoch fallback).

        Claim integration stays monotone per *value*: each distinct claim
        value is integrated at most once per view (the superseded value stays
        in the seen set), so stale echoes of an old claim can never flip a
        view back and re-propagate in waves.  The price is that a claim
        flipping back to an exact earlier value is ignored; schedules that
        need a node's claim restored re-spawn the node (see the engine's
        join path) rather than re-announcing an old value.
        """
        inconsistent = False
        new_edge_sets: List[Tuple[int, Tuple[int, ...]]] = []
        new_vertices: List[int] = []
        index = self._index
        claim = self._claim
        intern = self._intern
        seen = self._seen_entries
        changed = False
        for entry in reported_edges:
            record = self._resolve_record(entry)
            rid = id(record.entry)
            if rid in seen:
                continue
            if not record.valid or record.size > max_degree:
                inconsistent = True
                continue
            node_id = record.node_id
            slot = index.get(node_id)
            if slot is not None and claim[slot] is not None:
                if claim[slot] == record.canonical:
                    seen.add(rid)
                    continue
                # Changed claim: accept the newer announcement.  The old
                # canonical stays seen so replays of it are ignored.
                seen.add(rid)
            else:
                seen.add(rid)
                if slot is None:
                    slot = intern(node_id)
                    new_vertices.append(node_id)
            self.edge_sets[node_id] = record.edge_set
            claim[slot] = record.canonical
            new_edge_sets.append(record.entry)
            for v in record.edge_set:
                if v not in index:
                    intern(v)
                    new_vertices.append(v)
            changed = True
        for node_id in reported_vertices:
            if not isinstance(node_id, int):
                inconsistent = True
                continue
            if node_id not in index:
                intern(node_id)
                new_vertices.append(node_id)
                changed = True
        if changed:
            self._rebuild_all()
            self._epoch += 1
        return inconsistent, new_edge_sets, new_vertices

    def _rebuild_all(self) -> None:
        """Recompute every derived structure from the settled claims.

        Adjacency masks (symmetrized), BFS layers/distances from the owner,
        and the interior bookkeeping are all pure functions of the claims;
        after a retraction the incremental counters cannot be repaired
        soundly, so the dynamic paths pay one O(view) rebuild instead.
        """
        index = self._index
        bits = self._bits
        claim = self._claim
        nslots = len(self._ids)
        adj = [0] * nslots
        for slot in range(nslots):
            canonical = claim[slot]
            if canonical is None:
                continue
            sb = bits[slot]
            acc = adj[slot]
            for v in canonical:
                j = index[v]
                adj[j] |= sb
                acc |= bits[j]
            adj[slot] = acc
        self._adj = adj
        # BFS from the owner (slot 0) over the rebuilt adjacency.
        dist = [-1] * nslots
        dist[0] = 0
        visited = bits[0]
        layer_masks = [bits[0]]
        current = bits[0]
        d = 0
        while True:
            nxt = 0
            m = current
            while m:
                low = m & -m
                m ^= low
                nxt |= adj[low.bit_length() - 1]
            nxt &= ~visited
            if not nxt:
                break
            d += 1
            visited |= nxt
            layer_masks.append(nxt)
            m = nxt
            while m:
                low = m & -m
                m ^= low
                dist[low.bit_length() - 1] = d
            current = nxt
        self._dist = dist
        self._layer_masks = layer_masks
        # Interior bookkeeping from scratch.
        missing: Dict[int, int] = {}
        waiting: Dict[int, List[int]] = {}
        interior = 0
        for slot in range(nslots):
            canonical = claim[slot]
            if canonical is None:
                continue
            miss = 0
            for v in canonical:
                j = index[v]
                if claim[j] is None:
                    miss += 1
                    waiting.setdefault(j, []).append(slot)
            if miss:
                missing[slot] = miss
            else:
                interior |= bits[slot]
        self._missing = missing
        self._waiting = waiting
        self._interior_mask = interior
        out = 0
        m = interior
        while m:
            low = m & -m
            m ^= low
            out |= adj[low.bit_length() - 1]
        self._interior_out_mask = out & ~interior

    def delete_edge(self, a: int, b: int) -> bool:
        """Remove edge ``{a, b}`` from both endpoints' settled claims.

        Called when the owner *knows* the edge is gone (an engine-level
        topology change on an incident edge).  Each shrunk claim's canonical
        is marked seen, so a later announcement of the same shrunk set
        deduplicates; the old full canonicals also stay seen (stale echoes of
        the pre-deletion claims are ignored -- see :meth:`_integrate_dynamic`
        on monotone-per-value integration).  Returns whether anything changed.
        """
        changed = False
        index = self._index
        claim = self._claim
        for x, y in ((a, b), (b, a)):
            slot = index.get(x)
            if slot is None or claim[slot] is None:
                continue
            edge_set = self.edge_sets[x]
            if y not in edge_set:
                continue
            record = self._interner.intern(x, tuple(sorted(edge_set - {y})))
            self.edge_sets[x] = record.edge_set
            claim[slot] = record.canonical
            self._seen_entries.add(id(record.entry))
            changed = True
        if changed:
            self._rebuild_all()
            self._epoch += 1
        return changed

    def retract_claim(self, node_id: int) -> bool:
        """Unsettle ``node_id`` entirely: drop its claim and *unsee* it.

        Unlike an update, a retraction re-opens the slot -- a later
        announcement of the exact retracted value settles again.  The vertex
        itself stays known (vertices are never forgotten).  Returns whether
        a settled claim was dropped.
        """
        slot = self._index.get(node_id)
        if slot is None or self._claim[slot] is None:
            return False
        canonical = self._claim[slot]
        record = self._interner.by_value.get((node_id, canonical))
        if record is not None and record.entry is not None:
            self._seen_entries.discard(id(record.entry))
        self._claim[slot] = None
        del self.edge_sets[node_id]
        self._rebuild_all()
        self._epoch += 1
        return True

    def update_claim(self, node_id: int, edge_ids: Iterable[int]) -> bool:
        """Force-settle ``node_id``'s claim to ``edge_ids``.

        The owner's own claim must track engine-level topology changes even
        when the target value was seen before (e.g. an edge removed and later
        restored), so this bypasses the seen-set entirely.  Returns whether
        the settled claim changed.
        """
        record = self._interner.intern(node_id, tuple(sorted(edge_ids)))
        slot = self._index.get(node_id)
        if slot is None:
            slot = self._intern(node_id)
        self._seen_entries.add(id(record.entry))
        if self._claim[slot] == record.canonical:
            return False
        for v in record.edge_set:
            if v not in self._index:
                self._intern(v)
        self.edge_sets[node_id] = record.edge_set
        self._claim[slot] = record.canonical
        self._rebuild_all()
        self._epoch += 1
        return True

    def settled_entries(self) -> List[Tuple[int, Tuple[int, ...]]]:
        """Interned payload entries of every settled claim (bootstrap dump)."""
        intern = self._interner.intern
        claim = self._claim
        out: List[Tuple[int, Tuple[int, ...]]] = []
        for node_id, slot in self._index.items():
            canonical = claim[slot]
            if canonical is not None:
                out.append(intern(node_id, canonical).entry)
        return out

    # -- structure queries ---------------------------------------------- #
    @property
    def vertices(self) -> KeysView[int]:
        """All known vertex ids (a live, set-like view of the intern table)."""
        return self._index.keys()

    def adjacency(self) -> Dict[int, Set[int]]:
        """Symmetric adjacency over all known vertices (from known edge sets).

        Materialized lazily from the adjacency bitmasks behind an epoch-tagged
        cache; callers must treat the returned structure as read-only.
        """
        if self._adjacency_cache_epoch != self._epoch:
            mask_ids = self._mask_ids
            self._adjacency_cache = {
                node_id: set(mask_ids(self._adj[slot]))
                for node_id, slot in self._index.items()
            }
            self._adjacency_cache_epoch = self._epoch
        return self._adjacency_cache

    def layer_prefixes(self, adj: Optional[Dict[int, Set[int]]] = None) -> List[FrozenSet[int]]:
        """BFS-layer prefixes ``B̂(u, 0) ⊆ B̂(u, 1) ⊆ ...`` from the owner.

        The prefixes are served from an epoch-tagged cache that is rebuilt
        only when :meth:`integrate` actually changed the view; the ``adj``
        argument is retained for backwards compatibility and ignored (the
        prefixes always describe this view's own adjacency).
        """
        if self._prefix_cache_epoch != self._epoch:
            prefixes: List[FrozenSet[int]] = []
            running = 0
            for layer in self._layer_masks:
                if not layer:
                    break
                running |= layer
                prefixes.append(frozenset(self._mask_ids(running)))
            self._prefix_cache = prefixes
            self._prefix_cache_epoch = self._epoch
        return self._prefix_cache

    def layer_sizes(self) -> List[int]:
        """Sizes of the (contiguous, nonempty) BFS layers from the owner."""
        sizes: List[int] = []
        for layer in self._layer_masks:
            if not layer:
                break
            sizes.append(layer.bit_count())
        return sizes

    def interior_set(self) -> Set[int]:
        """Settled vertices all of whose claimed neighbors are settled.

        Once the honest part of the network has been fully explored, every
        honest vertex is interior, so the interior set contains the honest
        region ``R`` of Lemma 5; its out-boundary is then exactly the layer of
        vertices the adversary is still expanding.  Maintained incrementally
        (as a bitmask) by :meth:`integrate`; a materialized copy is returned.
        """
        return set(self._mask_ids(self._interior_mask))

    def expansion_check_candidates(self) -> List[Tuple[int, int]]:
        """``(|S|, |Out(S)|)`` for every subset the practical check inspects.

        Lists every BFS-layer prefix (whose out-boundary in the view graph is
        exactly the next BFS layer) followed by the interior set (whose
        out-boundary is maintained incrementally).  All counts are popcounts
        of live masks, so producing them is O(view depth) per round.
        """
        candidates: List[Tuple[int, int]] = []
        sizes = self.layer_sizes()
        prefix = 0
        last = len(sizes) - 1
        for j, layer_size in enumerate(sizes):
            prefix += layer_size
            candidates.append((prefix, sizes[j + 1] if j < last else 0))
        interior = self._interior_mask
        if interior:
            candidates.append(
                (interior.bit_count(), self._interior_out_mask.bit_count())
            )
        return candidates

    @staticmethod
    def expansion_of(adj: Dict[int, Set[int]], subset: Set[int]) -> float:
        """``|Out(S)| / |S|`` inside the view graph."""
        if not subset:
            return math.inf
        out: Set[int] = set()
        for u in subset:
            for v in adj.get(u, ()):
                if v not in subset:
                    out.add(v)
        return len(out) / len(subset)

    def size(self) -> int:
        """Number of known vertices."""
        return len(self._ids)


class LocalCountingProtocol(Protocol):
    """Per-node implementation of Algorithm 1."""

    def __init__(
        self,
        ctx: NodeContext,
        params: LocalParameters,
        *,
        interner: Optional[ClaimInterner] = None,
        dynamic: bool = False,
    ) -> None:
        self.params = params
        self._interner = interner if interner is not None else ClaimInterner()
        self.view = LocalView(
            ctx.node_id, ctx.neighbor_ids.values(), interner=self._interner
        )
        # Dynamic-topology mode (churn runs): claims may be re-announced, and
        # the mute check runs against the neighbors known to have been
        # present last round (a just-added neighbor cannot have spoken yet).
        self._dynamic = dynamic
        if dynamic:
            self._known_neighbors: Set[int] = set(ctx.neighbors)
            self._pending_neighbors: List[int] = []
        self._decided = False
        self._estimate: Optional[float] = None
        self._decision_round: Optional[int] = None
        # The delta broadcast is accumulated together with its exact
        # ``estimate_payload_bits`` size and id count, so building the message
        # never re-walks the payload (the per-round walk showed up in
        # profiles; deltas carry Θ(Δ^i) identifiers).
        self._pending_edges: List[Tuple[int, Tuple[int, ...]]] = []
        self._pending_vertices: List[int] = []
        self._pending_edge_bits = 0
        self._pending_edge_ids = 0
        self._pending_vertex_bits = 0
        # The initial delta is exactly B̂(u, 1): the node's own edge set and
        # its neighbor vertices (Line 1 of Algorithm 1).  The own claim is
        # interned so that every receiver recognizes its re-broadcasts by
        # identity.
        own_claim = self._interner.intern(
            ctx.node_id, tuple(sorted(ctx.neighbor_ids.values()))
        )
        self._queue_delta([own_claim.entry], sorted(ctx.neighbor_ids.values()))

    # -- Protocol interface --------------------------------------------- #
    @property
    def decided(self) -> bool:
        return self._decided

    @property
    def estimate(self) -> Optional[float]:
        return self._estimate

    @property
    def decision_round(self) -> Optional[int]:
        return self._decision_round

    @property
    def halted(self) -> bool:
        # A decided node terminates and stops broadcasting; its neighbors
        # interpret the silence as muteness and decide themselves (Line 5).
        return self._decided

    # -- helpers ---------------------------------------------------------- #
    def _queue_delta(
        self,
        new_edges: Sequence[Tuple[int, Tuple[int, ...]]],
        new_vertices: Sequence[int],
    ) -> None:
        """Append to the pending delta, accumulating its exact size accounting.

        The running sums reproduce ``estimate_payload_bits`` over the final
        ``TopologyDelta`` payload term by term (each integer costs
        ``max(1, bit_length)`` bits, containers add 2 framing bits per
        element); ``tests/test_perf_equivalence.py`` locks the equivalence
        down.
        """
        edge_bits = 0
        edge_ids = 0
        by_id = self._interner.by_id
        for claim_entry in new_edges:
            record = by_id.get(id(claim_entry))
            if record is not None:
                # Interned claim: the accounting was computed once per run.
                edge_bits += record.bits
                edge_ids += record.num_ids
                continue
            node_id, edges = claim_entry
            bits, ids = _claim_accounting(node_id, edges)
            edge_bits += bits
            edge_ids += ids
        vertex_bits = 0
        for v in new_vertices:
            b = v.bit_length()
            vertex_bits += (b if b else 1) + 2
        self._pending_edges.extend(new_edges)
        self._pending_vertices.extend(new_vertices)
        self._pending_edge_bits += edge_bits
        self._pending_edge_ids += edge_ids
        self._pending_vertex_bits += vertex_bits

    def _delta_message(self) -> Message:
        payload: TopologyDelta = (
            tuple(self._pending_edges),
            tuple(self._pending_vertices),
        )
        num_ids = self._pending_edge_ids + len(self._pending_vertices)
        # ``size_bits`` follows the documented accounting
        # (``estimate_payload_bits`` over the payload), assembled from the
        # accumulators of ``_queue_delta`` instead of a second payload walk.
        edge_sum = self._pending_edge_bits
        vertex_sum = self._pending_vertex_bits
        size_bits = (edge_sum if edge_sum else 1) + 2 + (vertex_sum if vertex_sum else 1) + 2
        message = Message(
            kind="topology", payload=payload, size_bits=size_bits, num_ids=num_ids
        )
        self._pending_edges = []
        self._pending_vertices = []
        self._pending_edge_bits = 0
        self._pending_edge_ids = 0
        self._pending_vertex_bits = 0
        return message

    def _decide(self, round_number: int) -> None:
        self._decided = True
        self._estimate = float(round_number)
        self._decision_round = round_number

    def _expansion_check_fails(self, newly_added: int, round_number: int) -> bool:
        """Line 9-13: does some checked subset of the view fail to expand?"""
        view = self.view
        total = view.size()
        alpha_prime = self.params.alpha_prime

        # (3) Optional exhaustive check for tiny views (test cross-validation):
        # materializes the actual subsets, so it takes the slow path.
        if self.params.exhaustive_subset_check and total <= 16:
            adj = view.adjacency()
            candidates: List[Set[int]] = list(view.layer_prefixes())
            interior = view.interior_set()
            if interior:
                candidates.append(interior)
            vertices = list(adj.keys())
            for size in range(1, total):
                for combo in itertools.combinations(vertices, size):
                    candidates.append(set(combo))
            for subset in candidates:
                if not subset or len(subset) >= total:
                    continue
                if view.expansion_of(adj, subset) < alpha_prime:
                    return True
        else:
            # (1) BFS-layer prefixes (the sets of Lemma 3) and (2) the
            # interior set (the practical stand-in for Lemma 5's R), both
            # read off the view's incremental counters: ``|Out(S)|/|S|``
            # without touching a single edge.
            for size, out_size in view.expansion_check_candidates():
                if size >= total:
                    continue
                if out_size / size < alpha_prime:
                    return True

        # (4) The view stopped growing entirely: Out(B̂(u, i)) = ∅, which is
        # the situation that forces the decision at diam(G) + 1 in Lemma 5.
        if round_number >= 2 and newly_added == 0:
            return True
        return False

    # -- engine callbacks ------------------------------------------------ #
    def on_start(self, ctx: NodeContext) -> Outbox:
        return Broadcast(self._delta_message(), ctx.neighbors)

    def on_round(self, ctx: NodeContext, inbox: List[Message]) -> Outbox:
        if self._decided:
            return {}
        round_number = ctx.round

        # Which neighbors spoke this round?  (Line 5: "some neighbor is mute".)
        speakers = {m.sender for m in inbox if m.kind == "topology"}
        if self._dynamic:
            known = self._known_neighbors
            mute_neighbor = any(v not in speakers for v in known)
            if self._pending_neighbors:
                # Neighbors added by churn this round start counting toward
                # the mute check from the *next* round (their first broadcast
                # is only delivered at the end of this one).
                known.update(self._pending_neighbors)
                self._pending_neighbors.clear()
                known.intersection_update(ctx.neighbors)
        else:
            mute_neighbor = any(v not in speakers for v in ctx.neighbors)

        inconsistent = False
        newly_added = 0
        for message in inbox:
            if message.kind != "topology":
                # Unexpected message kinds from a neighbor are malformed
                # information: treat as an inconsistency.
                inconsistent = True
                continue
            payload = message.payload
            if (
                not isinstance(payload, tuple)
                or len(payload) != 2
                or not isinstance(payload[0], tuple)
                or not isinstance(payload[1], tuple)
            ):
                inconsistent = True
                continue
            reported_edges, reported_vertices = payload
            try:
                bad, new_edges, new_vertices = self.view.integrate(
                    reported_edges,
                    reported_vertices,
                    max_degree=self.params.max_degree,
                    allow_updates=self._dynamic,
                )
            except (TypeError, ValueError):
                inconsistent = True
                continue
            inconsistent = inconsistent or bad
            self._queue_delta(new_edges, new_vertices)
            newly_added += len(new_vertices)

        if inconsistent or mute_neighbor:
            self._decide(round_number)
            return {}

        if self._expansion_check_fails(newly_added, round_number):
            self._decide(round_number)
            return {}

        return Broadcast(self._delta_message(), ctx.neighbors)

    def on_topology_change(
        self,
        ctx: NodeContext,
        added_neighbors: Dict[int, int],
        removed_neighbors: Dict[int, int],
    ) -> None:
        """React to engine-level churn on incident edges (dynamic runs only).

        Removed edges are excised from the view (both endpoints' claims
        shrink); added edges update the own claim and trigger a full-view
        re-broadcast so a (re)joining neighbor can bootstrap -- every other
        receiver deduplicates the dump by claim identity.
        """
        if self._decided:
            return
        view = self.view
        changed = False
        for idx in removed_neighbors:
            self._known_neighbors.discard(idx)
        for rid in removed_neighbors.values():
            changed = view.delete_edge(ctx.node_id, rid) or changed
        if added_neighbors:
            self._pending_neighbors.extend(added_neighbors)
            view.update_claim(ctx.node_id, ctx.neighbor_ids.values())
            self._queue_delta(view.settled_entries(), sorted(view.vertices))
        elif changed:
            record = self._interner.intern(
                ctx.node_id, tuple(sorted(ctx.neighbor_ids.values()))
            )
            self._queue_delta([record.entry], [])


@dataclass
class LocalCountingRun:
    """Result wrapper of one Algorithm 1 execution."""

    result: RunResult
    params: LocalParameters
    outcome: CountingOutcome


def run_local_counting(
    graph: Graph,
    *,
    byzantine: Iterable[int] = (),
    adversary: Optional[Adversary] = None,
    params: Optional[LocalParameters] = None,
    seed: int = 0,
    max_rounds: Optional[int] = None,
    evaluation_set: Optional[Set[int]] = None,
    churn: Optional[ChurnSchedule] = None,
) -> LocalCountingRun:
    """Execute Algorithm 1 on ``graph`` and summarize the outcome.

    Parameters
    ----------
    graph:
        The network topology (honest nodes only ever see their local views).
    byzantine:
        Indices of Byzantine nodes.
    adversary:
        Byzantine behaviour; defaults to silence.
    params:
        Algorithm parameters; defaults to :class:`LocalParameters` with the
        graph's maximum degree as Δ.
    seed:
        Master seed (the algorithm is deterministic; the seed only affects
        adversary randomness).
    max_rounds:
        Safety cap; defaults to ``6·ceil(log2 n) + 20``, far above the
        ``diam(G)+1`` bound of Theorem 1 for the expander workloads.
    evaluation_set:
        Nodes over which the outcome statistics are computed (defaults to all
        honest nodes; experiments pass the Lemma 1 ``Good`` set).
    churn:
        Optional mid-run topology schedule.  Enables the protocol's dynamic
        mode (claim updates, churn-aware mute check); ``None`` takes the
        exact static code paths.
    """
    if params is None:
        params = LocalParameters(max_degree=max(2, graph.max_degree()))
    network = Network(graph=graph, byzantine=frozenset(byzantine))
    if max_rounds is None:
        max_rounds = 6 * int(math.ceil(math.log2(max(graph.n, 2)))) + 20

    # One claim interner per run: every view shares the hash-consed claim
    # records, so a claim is parsed once per run instead of once per
    # (receiver, arrival).
    interner = ClaimInterner()
    dynamic = churn is not None and bool(churn)

    def factory(ctx: NodeContext) -> Protocol:
        return LocalCountingProtocol(ctx, params, interner=interner, dynamic=dynamic)

    engine = SynchronousEngine(
        network,
        factory,
        adversary=adversary,
        seed=seed,
        max_rounds=max_rounds,
        churn=churn if dynamic else None,
    )
    result = engine.run()

    records: Dict[int, DecisionRecord] = {}
    for u, protocol in result.protocols.items():
        records[u] = DecisionRecord(
            node=u,
            decided=protocol.decided,
            estimate=protocol.estimate,
            decision_round=protocol.decision_round,
        )
    outcome = CountingOutcome(
        n=graph.n,
        records=records,
        evaluation_set=set(evaluation_set) if evaluation_set is not None else set(),
        rounds_executed=result.rounds_executed,
        total_messages=result.metrics.total_messages,
        total_bits=result.metrics.total_bits,
        small_message_fraction=result.metrics.small_message_fraction(
            graph.n, list(result.protocols.keys())
        ),
    )
    return LocalCountingRun(result=result, params=params, outcome=outcome)
