"""Decision records and outcome statistics.

Definition 2 (Byzantine counting) asks that every honest node irrevocably
decide an estimate ``L_u`` of ``log n`` within ``T`` rounds and that a large
set ``S`` of honest nodes have ``c1·log n <= L_u <= c2·log n`` for fixed
constants ``c1, c2``.  :class:`CountingOutcome` turns a raw simulation run
into exactly these quantities so that every experiment and test states its
acceptance criteria in the paper's own terms.

All logarithms here are natural logarithms (the paper's phase counts and
``⌈log n⌉`` bounds are stated in natural logarithms; see Lemma 11).
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["DecisionRecord", "CountingOutcome", "approximation_band"]


def approximation_band(
    n: int, *, lower_factor: float, upper_factor: float
) -> Tuple[float, float]:
    """The acceptance interval ``[lower_factor·ln n, upper_factor·ln n]``."""
    log_n = math.log(max(n, 2))
    return lower_factor * log_n, upper_factor * log_n


@dataclass(frozen=True)
class DecisionRecord:
    """Decision state of a single honest node at the end of a run."""

    node: int
    decided: bool
    estimate: Optional[float]
    decision_round: Optional[int]

    def within(self, low: float, high: float) -> bool:
        """Whether the node decided an estimate inside ``[low, high]``."""
        return self.decided and self.estimate is not None and low <= self.estimate <= high


@dataclass
class CountingOutcome:
    """Aggregate outcome of one Byzantine-counting run.

    Attributes
    ----------
    n:
        True (hidden) network size.
    records:
        One :class:`DecisionRecord` per honest node.
    evaluation_set:
        The subset of honest nodes against which the theorem's guarantee is
        evaluated (``Good`` for Theorem 1, ``GoodTL``-style sets or all honest
        nodes for Theorem 2).  Defaults to all honest nodes.
    rounds_executed:
        Number of rounds the simulation ran.
    total_messages, total_bits:
        Communication volume of the run.
    small_message_fraction:
        Fraction of honest nodes that sent only small messages (Theorem 2's
        message-size claim); ``None`` when not tracked.
    """

    n: int
    records: Dict[int, DecisionRecord]
    evaluation_set: Set[int] = field(default_factory=set)
    rounds_executed: int = 0
    total_messages: int = 0
    total_bits: int = 0
    small_message_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.evaluation_set:
            self.evaluation_set = set(self.records)
        else:
            self.evaluation_set = set(self.evaluation_set) & set(self.records)

    # ------------------------------------------------------------------ #
    @property
    def log_n(self) -> float:
        """Natural logarithm of the true network size."""
        return math.log(max(self.n, 2))

    def _eval_records(self) -> List[DecisionRecord]:
        return [self.records[u] for u in sorted(self.evaluation_set)]

    def decided_fraction(self, *, over_evaluation_set: bool = True) -> float:
        """Fraction of (evaluation-set or all honest) nodes that decided."""
        records = self._eval_records() if over_evaluation_set else list(self.records.values())
        if not records:
            return 0.0
        return sum(1 for r in records if r.decided) / len(records)

    def estimates(self, *, over_evaluation_set: bool = True) -> List[float]:
        """Decided estimates (evaluation set by default)."""
        records = self._eval_records() if over_evaluation_set else list(self.records.values())
        return [r.estimate for r in records if r.decided and r.estimate is not None]

    def fraction_within_band(
        self, lower_factor: float, upper_factor: float, *, over_evaluation_set: bool = True
    ) -> float:
        """Fraction of nodes whose estimate lies in ``[lower·ln n, upper·ln n]``.

        This is Definition 2's success criterion with explicit constants.
        """
        low, high = approximation_band(
            self.n, lower_factor=lower_factor, upper_factor=upper_factor
        )
        records = self._eval_records() if over_evaluation_set else list(self.records.values())
        if not records:
            return 0.0
        return sum(1 for r in records if r.within(low, high)) / len(records)

    def approximation_ratios(self, *, over_evaluation_set: bool = True) -> List[float]:
        """Per-node ratios ``L_u / ln n`` for decided nodes."""
        return [e / self.log_n for e in self.estimates(over_evaluation_set=over_evaluation_set)]

    def median_estimate(self, *, over_evaluation_set: bool = True) -> Optional[float]:
        """Median decided estimate, or ``None`` if nothing decided."""
        values = self.estimates(over_evaluation_set=over_evaluation_set)
        return statistics.median(values) if values else None

    def estimate_range(self, *, over_evaluation_set: bool = True) -> Tuple[Optional[float], Optional[float]]:
        """(min, max) decided estimate."""
        values = self.estimates(over_evaluation_set=over_evaluation_set)
        if not values:
            return None, None
        return min(values), max(values)

    def max_decision_round(self, *, over_evaluation_set: bool = True) -> Optional[int]:
        """The latest decision round among decided nodes -- the ``T`` of Definition 2."""
        records = self._eval_records() if over_evaluation_set else list(self.records.values())
        rounds = [r.decision_round for r in records if r.decided and r.decision_round is not None]
        return max(rounds) if rounds else None

    def estimate_histogram(self, *, over_evaluation_set: bool = True) -> Dict[float, int]:
        """Histogram of decided estimates (value -> count)."""
        hist: Dict[float, int] = {}
        for value in self.estimates(over_evaluation_set=over_evaluation_set):
            hist[value] = hist.get(value, 0) + 1
        return dict(sorted(hist.items()))

    def satisfies_definition2(
        self,
        *,
        lower_factor: float,
        upper_factor: float,
        min_fraction: float,
    ) -> bool:
        """Check Definition 2: every eval node decided, and a ``min_fraction``
        of them decided inside the approximation band."""
        if self.decided_fraction() < 1.0 - 1e-12:
            return False
        return self.fraction_within_band(lower_factor, upper_factor) >= min_fraction

    def summary(self) -> Dict[str, object]:
        """Dictionary summary used by the experiment tables."""
        low, high = self.estimate_range()
        return {
            "n": self.n,
            "log_n": round(self.log_n, 3),
            "eval_nodes": len(self.evaluation_set),
            "decided_fraction": round(self.decided_fraction(), 4),
            "median_estimate": self.median_estimate(),
            "min_estimate": low,
            "max_estimate": high,
            "max_decision_round": self.max_decision_round(),
            "rounds_executed": self.rounds_executed,
            "total_messages": self.total_messages,
            "small_message_fraction": self.small_message_fraction,
        }
