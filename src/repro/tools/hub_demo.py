"""``make hub-demo``: the Sweep Hub acceptance gate.

The multi-tenant story, end to end:

1. **Serial references.**  Two overlapping E3-style benign scenario suites
   (seeds 0-7 and 4-11 -- four shared configs) run in-process on the
   serial backend; their rendered tables are the ground truth.
2. **Standing hub + fleet.**  One ``repro hub serve`` daemon (shared
   artifact root) and two persistent ``worker`` daemons start as
   subprocesses.
3. **Two concurrent submissions.**  Both suites are submitted at the same
   time with ``scenario run --connect`` against the same hub and artifact
   root; sweep B is SIGKILLed once its journal shows progress, then
   resumed with ``--resume --connect``.  Both final tables must be
   **byte-identical** to the serial references, the overlap must dedupe
   through the shared store, and ``hub status`` must answer.
4. **Graceful scale-down.**  The workers get SIGTERM (the drain path) and
   must exit promptly; the hub is terminated last.

Anything else -- a wedged submission, a divergent table, an unresponsive
status endpoint -- is a hard failure.
"""

from __future__ import annotations

import json
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: src/repro/tools/hub_demo.py -> repository root.
ROOT = Path(__file__).resolve().parents[3]


def _scenario(name: str, seeds: List[int]) -> Dict:
    return {
        "name": name,
        "graph": {"name": "hnd", "params": {"n": 48, "degree": 8}, "seed_offset": 0},
        "adversary": {"name": "silent", "params": {}, "seed_offset": 0},
        "placement": {"name": "random", "params": {"count": 0}, "seed_offset": 0},
        "protocol": {"name": "congest", "params": {"d": 8}, "seed_offset": 0},
        "params": {},
        "seeds": seeds,
    }


#: Two overlapping sweeps: seeds 4-7 are shared, so the second submission
#: (or the resume) must hit the shared artifact store for them.
SCENARIO_A = _scenario("hub-demo-a", list(range(0, 8)))
SCENARIO_B = _scenario("hub-demo-b", list(range(4, 12)))

#: Journal completions of sweep B to wait for before killing its client.
KILL_AFTER_DONE = 2


def _fail(message: str) -> int:
    print(f"hub-demo FAIL: {message}")
    return 1


def _serial_reference(scenario_doc: Dict) -> str:
    from repro.analysis.tables import render_table
    from repro.runner import SweepRunner
    from repro.scenarios import Scenario

    scenario = Scenario.from_dict(scenario_doc)
    rows = SweepRunner().run(scenario.compile())
    return render_table(
        [{"seed": seed, **metrics} for seed, metrics in zip(scenario.seeds, rows)],
        title=scenario.name,
    )


def _journal_path(artifact_dir: Path, scenario_doc: Dict) -> Path:
    from repro.runner import SweepJournal
    from repro.scenarios import Scenario

    return SweepJournal.for_configs(
        artifact_dir, Scenario.from_dict(scenario_doc).compile()
    ).path


def _read_journal(path: Path) -> Optional[dict]:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


def _start_hub(artifact_dir: Path) -> Tuple[subprocess.Popen, str]:
    """Start ``hub serve`` and parse the announced address from stdout."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "hub",
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--artifact-dir",
            str(artifact_dir),
            "--lease-ttl",
            "5",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        cwd=str(ROOT),
    )
    assert process.stdout is not None
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = process.stdout.readline().decode("utf-8", "replace")
        if not line:
            break
        match = re.search(r"\[hub\] listening on ([\d.]+:\d+)", line)
        if match:
            return process, match.group(1)
    process.kill()
    raise RuntimeError("hub never announced its address")


def _start_worker(address: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "worker",
            "--connect",
            address,
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        cwd=str(ROOT),
    )


def _submit_command(
    spec: Path, address: str, artifact_dir: Path, *, resume: bool
) -> List[str]:
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "scenario",
        "run",
        str(spec),
        "--connect",
        address,
        "--artifact-dir",
        str(artifact_dir),
    ]
    if resume:
        command.append("--resume")
    return command


def _table_from_stdout(stdout: str) -> str:
    table_lines = []
    for line in stdout.splitlines():
        if line.startswith("[scenario]"):
            break
        table_lines.append(line)
    return "\n".join(table_lines).rstrip("\n")


def main() -> int:
    print("hub-demo: building serial reference tables...")
    reference_a = _serial_reference(SCENARIO_A)
    reference_b = _serial_reference(SCENARIO_B)

    with tempfile.TemporaryDirectory(prefix="hub-demo-") as tmp:
        tmpdir = Path(tmp)
        spec_a = tmpdir / "scenario_a.json"
        spec_a.write_text(json.dumps(SCENARIO_A, indent=2), encoding="utf-8")
        spec_b = tmpdir / "scenario_b.json"
        spec_b.write_text(json.dumps(SCENARIO_B, indent=2), encoding="utf-8")
        artifact_dir = tmpdir / "artifacts"

        print("hub-demo: starting hub + 2 persistent workers...")
        hub = None
        workers: List[subprocess.Popen] = []
        client_a = client_b = None
        try:
            hub, address = _start_hub(artifact_dir)
            workers = [_start_worker(address) for _ in range(2)]

            print("hub-demo: submitting two overlapping sweeps concurrently...")
            client_a = subprocess.Popen(
                _submit_command(spec_a, address, artifact_dir, resume=False),
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                cwd=str(ROOT),
            )
            client_b = subprocess.Popen(
                _submit_command(spec_b, address, artifact_dir, resume=False),
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                cwd=str(ROOT),
            )

            # Kill client B once its journal shows progress: the hub keeps
            # executing its sweep, but the demo must recover via --resume.
            journal_b = _journal_path(artifact_dir, SCENARIO_B)
            deadline = time.monotonic() + 120.0
            killed = False
            while time.monotonic() < deadline:
                document = _read_journal(journal_b)
                if (
                    document is not None
                    and len(document.get("done", ())) >= KILL_AFTER_DONE
                ):
                    client_b.send_signal(signal.SIGKILL)
                    client_b.wait(timeout=10.0)
                    killed = True
                    break
                if client_b.poll() is not None:
                    _, err = client_b.communicate()
                    return _fail(
                        "sweep B exited before the kill landed:\n"
                        + err.decode("utf-8", "replace")[-2000:]
                    )
                time.sleep(0.05)
            if not killed:
                return _fail("timed out waiting for sweep B journal progress")
            print(
                f"hub-demo: killed sweep B's client after {KILL_AFTER_DONE} "
                "journaled completion(s); sweep A still streaming..."
            )

            out_a, err_a = client_a.communicate(timeout=150.0)
            if client_a.returncode != 0:
                return _fail(
                    f"sweep A failed (code {client_a.returncode}):\n"
                    + err_a.decode("utf-8", "replace")[-2000:]
                )
            table_a = _table_from_stdout(out_a.decode("utf-8", "replace"))
            if table_a != reference_a:
                return _fail(
                    "sweep A table differs from the serial reference\n"
                    f"--- serial ---\n{reference_a}\n--- hub ---\n{table_a}"
                )
            print("hub-demo: sweep A table is byte-identical to serial; resuming B...")

            resumed = subprocess.run(
                _submit_command(spec_b, address, artifact_dir, resume=True),
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                cwd=str(ROOT),
                timeout=150.0,
            )
            stderr_b = resumed.stderr.decode("utf-8", "replace")
            if resumed.returncode != 0:
                return _fail(
                    f"sweep B resume failed (code {resumed.returncode}):\n"
                    + stderr_b[-2000:]
                )
            if "resuming sweep" not in stderr_b:
                return _fail(f"resume never announced itself:\n{stderr_b[-2000:]}")
            table_b = _table_from_stdout(resumed.stdout.decode("utf-8", "replace"))
            if table_b != reference_b:
                return _fail(
                    "resumed sweep B table differs from the serial reference\n"
                    f"--- serial ---\n{reference_b}\n--- hub ---\n{table_b}"
                )
            document = _read_journal(journal_b)
            if document is None or not document.get("complete"):
                return _fail("sweep B journal is not complete after the resume")
            if len(document.get("cached", ())) < 1:
                return _fail("sweep B resume reused no cached artifacts")

            status = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "hub",
                    "status",
                    "--connect",
                    address,
                    "--artifact-dir",
                    str(artifact_dir),
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                cwd=str(ROOT),
                timeout=30.0,
            )
            status_out = status.stdout.decode("utf-8", "replace")
            if status.returncode != 0 or "sweeps" not in status_out:
                return _fail(f"hub status failed:\n{status_out[-2000:]}")

            print("hub-demo: draining the fleet with SIGTERM...")
            for worker in workers:
                worker.send_signal(signal.SIGTERM)
            for worker in workers:
                try:
                    worker.wait(timeout=15.0)
                except subprocess.TimeoutExpired:
                    return _fail("a worker ignored SIGTERM (graceful drain broken)")
            workers = []

            print(
                "hub-demo ok: two concurrent sweeps on one hub, both tables "
                "byte-identical to serial; kill-and-resume recovered sweep B "
                f"reusing {len(document['cached'])} cached task(s); hub status "
                "answered; workers drained gracefully"
            )
        finally:
            for proc in [client_a, client_b, *workers]:
                if proc is not None and proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=10.0)
            if hub is not None and hub.poll() is None:
                hub.send_signal(signal.SIGTERM)
                try:
                    hub.wait(timeout=15.0)
                except subprocess.TimeoutExpired:
                    hub.kill()
                    hub.wait(timeout=10.0)
    return 0


if __name__ == "__main__":
    sys.exit(main())
