"""``make hub-chaos-demo``: the hub high-availability acceptance gate.

Where ``hub-demo`` kills a *client* and recovers it with ``--resume``,
this gate kills the *hub* and requires everyone else to self-heal:

1. **Serial references.**  Two overlapping benign scenario suites run
   in-process on the serial backend; their rendered tables are ground
   truth.
2. **Standing hub + fleet.**  One ``hub serve --state`` daemon (shared
   artifact root, crash-safe hub journal) and two persistent workers
   start as subprocesses.
3. **Two concurrent submissions.**  Both suites are submitted with
   ``scenario run --connect``.  Once the shared store shows progress the
   hub is SIGKILLed mid-sweep -- no goodbye, no journal flush beyond the
   last atomic write -- and restarted on the **same port** with the same
   ``--state`` directory.
4. **Self-healing, end to end.**  The restarted hub must re-adopt both
   journaled sweeps (re-queuing only tasks with no artifact behind
   them), the workers must reconnect on their own, and both clients must
   ride out the outage via reconnect + identity re-attach -- **no
   ``--resume``, no operator action** -- and finish with tables
   byte-identical to the serial references.
5. **Evidence checks.**  At least one client logged a reconnect, every
   hub state file ends ``complete`` with ``adopted >= 1``, and the
   workers still drain gracefully on SIGTERM.

Anything else -- a wedged client, a duplicate execution, a divergent
table -- is a hard failure.  The Makefile wraps the gate in a hard
``timeout`` so a hang is a loud CI failure, not a stuck job.
"""

from __future__ import annotations

import json
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional, Tuple

from repro.tools.hub_demo import (
    ROOT,
    _scenario,
    _serial_reference,
    _start_worker,
    _table_from_stdout,
)

#: Two overlapping sweeps (seeds 4-7 shared), as in ``hub-demo``.
SCENARIO_A = _scenario("hub-chaos-a", list(range(0, 8)))
SCENARIO_B = _scenario("hub-chaos-b", list(range(4, 12)))

#: Stored artifacts to wait for before the SIGKILL lands.
KILL_AFTER_ARTIFACTS = 3


def _fail(message: str) -> int:
    print(f"hub-chaos-demo FAIL: {message}")
    return 1


def _start_hub(
    artifact_dir: Path, state_dir: Path, *, port: int = 0
) -> Tuple[subprocess.Popen, Tuple[str, int]]:
    """``hub serve --state`` as a subprocess; parse the announced port."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "hub",
            "serve",
            "--listen",
            f"127.0.0.1:{port}",
            "--artifact-dir",
            str(artifact_dir),
            "--state",
            str(state_dir),
            "--lease-ttl",
            "5",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        cwd=str(ROOT),
    )
    assert process.stdout is not None
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = process.stdout.readline().decode("utf-8", "replace")
        if not line:
            break
        match = re.search(r"\[hub\] listening on ([\d.]+):(\d+)", line)
        if match:
            return process, (match.group(1), int(match.group(2)))
    process.kill()
    raise RuntimeError("hub never announced its address")


def _submit_command(spec: Path, address: str, artifact_dir: Path) -> List[str]:
    return [
        sys.executable,
        "-m",
        "repro.cli",
        "scenario",
        "run",
        str(spec),
        "--connect",
        address,
        "--artifact-dir",
        str(artifact_dir),
    ]


def main() -> int:
    print("hub-chaos-demo: building serial reference tables...")
    reference_a = _serial_reference(SCENARIO_A)
    reference_b = _serial_reference(SCENARIO_B)

    with tempfile.TemporaryDirectory(prefix="hub-chaos-demo-") as tmp:
        tmpdir = Path(tmp)
        spec_a = tmpdir / "scenario_a.json"
        spec_a.write_text(json.dumps(SCENARIO_A, indent=2), encoding="utf-8")
        spec_b = tmpdir / "scenario_b.json"
        spec_b.write_text(json.dumps(SCENARIO_B, indent=2), encoding="utf-8")
        artifact_dir = tmpdir / "artifacts"
        state_dir = tmpdir / "state"

        print("hub-chaos-demo: starting hub (--state) + 2 persistent workers...")
        hub: Optional[subprocess.Popen] = None
        new_hub: Optional[subprocess.Popen] = None
        workers: List[subprocess.Popen] = []
        client_a = client_b = None
        try:
            hub, (host, port) = _start_hub(artifact_dir, state_dir)
            address = f"{host}:{port}"
            workers = [_start_worker(address) for _ in range(2)]

            print("hub-chaos-demo: submitting two overlapping sweeps concurrently...")
            client_a = subprocess.Popen(
                _submit_command(spec_a, address, artifact_dir),
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                cwd=str(ROOT),
            )
            client_b = subprocess.Popen(
                _submit_command(spec_b, address, artifact_dir),
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                cwd=str(ROOT),
            )

            # SIGKILL the hub once the shared store shows real progress.
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                # Task-directory artifacts only: sweep journals live at the
                # artifact root itself, the hub journal in state_dir.
                stored = list(artifact_dir.glob("*/*.json"))
                if len(stored) >= KILL_AFTER_ARTIFACTS:
                    break
                for key, client in (("A", client_a), ("B", client_b)):
                    if client.poll() is not None:
                        _, err = client.communicate()
                        return _fail(
                            f"client {key} exited before the kill landed:\n"
                            + err.decode("utf-8", "replace")[-2000:]
                        )
                time.sleep(0.05)
            else:
                return _fail("timed out waiting for pre-kill artifact progress")
            pre_kill = {
                path: path.stat().st_mtime_ns
                for path in artifact_dir.glob("*/*.json")
            }
            hub.send_signal(signal.SIGKILL)
            hub.wait(timeout=10.0)
            print(
                f"hub-chaos-demo: SIGKILLed the hub after {len(pre_kill)} "
                "stored artifact(s); restarting on the same port..."
            )

            new_hub, _ = _start_hub(artifact_dir, state_dir, port=port)
            print(
                "hub-chaos-demo: hub restarted; waiting for clients to "
                "self-heal (no --resume)..."
            )

            out_a, err_a = client_a.communicate(timeout=180.0)
            out_b, err_b = client_b.communicate(timeout=180.0)
            stderr_a = err_a.decode("utf-8", "replace")
            stderr_b = err_b.decode("utf-8", "replace")
            if client_a.returncode != 0:
                return _fail(
                    f"client A failed (code {client_a.returncode}):\n"
                    + stderr_a[-2000:]
                )
            if client_b.returncode != 0:
                return _fail(
                    f"client B failed (code {client_b.returncode}):\n"
                    + stderr_b[-2000:]
                )
            table_a = _table_from_stdout(out_a.decode("utf-8", "replace"))
            table_b = _table_from_stdout(out_b.decode("utf-8", "replace"))
            if table_a != reference_a:
                return _fail(
                    "client A table differs from the serial reference\n"
                    f"--- serial ---\n{reference_a}\n--- hub ---\n{table_a}"
                )
            if table_b != reference_b:
                return _fail(
                    "client B table differs from the serial reference\n"
                    f"--- serial ---\n{reference_b}\n--- hub ---\n{table_b}"
                )
            reconnects = stderr_a.count("[hub-client]") + stderr_b.count(
                "[hub-client]"
            )
            if reconnects < 1:
                return _fail(
                    "no client logged a reconnect -- the kill landed after "
                    "both sweeps finished (gate too slow to be meaningful)"
                )

            # No task with an artifact behind it may have executed twice:
            # the pre-kill artifacts must be byte-stable across the restart.
            for path, mtime_ns in pre_kill.items():
                if path.stat().st_mtime_ns != mtime_ns:
                    return _fail(
                        f"{path.name} was rewritten after the restart "
                        "(task re-executed despite its artifact)"
                    )

            state_docs = [
                json.loads(path.read_text(encoding="utf-8"))
                for path in sorted(state_dir.glob("hub-*.state.json"))
            ]
            if len(state_docs) != 2:
                return _fail(
                    f"expected 2 hub state files, found {len(state_docs)}"
                )
            for doc in state_docs:
                if not doc.get("complete"):
                    return _fail(
                        f"state file for {doc.get('identity')} never completed"
                    )
                if doc.get("adopted", 0) < 1:
                    return _fail(
                        f"state file for {doc.get('identity')} was never "
                        "adopted by the restarted hub"
                    )

            print("hub-chaos-demo: draining the fleet with SIGTERM...")
            for worker in workers:
                worker.send_signal(signal.SIGTERM)
            for worker in workers:
                try:
                    worker.wait(timeout=15.0)
                except subprocess.TimeoutExpired:
                    return _fail("a worker ignored SIGTERM (graceful drain broken)")
            workers = []

            print(
                "hub-chaos-demo ok: hub SIGKILLed mid-sweep and restarted "
                "with --state; both sweeps re-adopted (journal + store "
                "prefill), both clients self-healed with "
                f"{reconnects} reconnect notice(s), both tables "
                "byte-identical to serial, pre-kill artifacts untouched"
            )
        finally:
            for proc in [client_a, client_b, *workers]:
                if proc is not None and proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=10.0)
            for proc in (hub, new_hub):
                if proc is not None and proc.poll() is None:
                    proc.send_signal(signal.SIGTERM)
                    try:
                        proc.wait(timeout=15.0)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait(timeout=10.0)
    return 0


if __name__ == "__main__":
    sys.exit(main())
