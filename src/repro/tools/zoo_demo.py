"""Protocol-zoo gate (``make zoo-demo``; a prerequisite of ``make test``).

Two assertions, both byte-for-byte:

1. the committed cross-protocol suite (``examples/scenario_zoo_compare.json``
   -- five families on one shared graph x adversary x placement grid, pure
   JSON, zero driver code) regenerates ``tests/golden/zoo_compare_table.txt``;
2. the committed paper suite (``examples/scenario_e2_small.json``)
   regenerates ``tests/golden/e2_small_table.txt`` -- proving the registry
   refactor that folded the zoo into ``PROTOCOLS`` is inert for the paper's
   protocols.

On success it also prints the per-protocol summary of the zoo table
(:func:`repro.analysis.comparison.render_protocol_comparison`) -- the
side-by-side fault-tolerance comparison the zoo exists for.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis.comparison import render_protocol_comparison
from repro.scenarios.suite import ScenarioSuite

REPO = Path(__file__).resolve().parents[3]
EXAMPLES = REPO / "examples"
GOLDEN = REPO / "tests" / "golden"

#: (suite spec, golden table) pairs checked byte-for-byte.
GATES = (
    ("scenario_zoo_compare.json", "zoo_compare_table.txt"),
    ("scenario_e2_small.json", "e2_small_table.txt"),
)


def _run_suite(spec_path: Path):
    suite = ScenarioSuite.from_json(spec_path.read_text(encoding="utf-8"))
    return suite.run()


def main() -> int:
    zoo_result = None
    for spec_name, golden_name in GATES:
        spec_path = EXAMPLES / spec_name
        golden_path = GOLDEN / golden_name
        result = _run_suite(spec_path)
        if spec_name.startswith("scenario_zoo"):
            zoo_result = result
        # ``scenario run`` prints ``result.render()`` followed by a newline;
        # the goldens are captured CLI stdout, so compare against exactly that.
        rendered = result.render() + "\n"
        expected = golden_path.read_text(encoding="utf-8")
        if rendered != expected:
            sys.stderr.write(
                f"zoo-demo FAIL: {spec_name} no longer regenerates "
                f"{golden_name} byte-for-byte\n"
            )
            sys.stderr.write("--- expected ---\n" + expected)
            sys.stderr.write("--- got ---\n" + rendered)
            return 1
        print(f"zoo-demo: {spec_name} == {golden_name} (byte-identical)")

    if zoo_result is not None:
        print()
        print(render_protocol_comparison(zoo_result.rows))
    print(
        "zoo-demo ok: cross-protocol suite and paper suite both regenerate "
        "their goldens"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
