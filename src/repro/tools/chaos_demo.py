"""``make chaos-demo``: the chaos-hardening acceptance gate.

One scripted disaster, end to end:

1. **Serial reference.**  A generated E3-style benign scenario (n=48, ten
   seeds) is run in-process on the serial backend; its rendered table is the
   ground truth.
2. **Chaos run, killed midway.**  The same spec runs as a subprocess on the
   distributed backend (two loopback workers) under a seeded
   :class:`~repro.runner.faults.FaultPlan` that drops connections, truncates
   and duplicates protocol lines, refuses connects, crashes and hangs
   workers, slows every task, and fails artifact writes.  The demo polls the
   sweep journal and SIGKILLs the whole sweep process -- broker included --
   once at least two tasks have completed.
3. **Resume.**  ``scenario run --resume`` restarts the sweep (fresh broker,
   fresh workers, same fault plan).  It must report prior progress, serve
   the pre-kill completions from the artifact cache, finish the rest, and
   print a table **byte-identical** to the serial reference.

Anything else -- a wedged resume, a divergent table, a journal that never
completes -- is a hard failure.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional, Tuple

#: src/repro/tools/chaos_demo.py -> repository root.
ROOT = Path(__file__).resolve().parents[3]

#: Seeded chaos schedule for the demo run.  ``crash_broker`` stays 0 -- the
#: demo kills the broker for real, from outside -- and ``slow_task`` is 1.0
#: so every task sleeps, guaranteeing a wide window to land the kill in.
FAULT_PLAN = {
    "seed": 7,
    "drop_connection": 0.03,
    "truncate_line": 0.02,
    "duplicate_line": 0.05,
    "delay_line": 0.10,
    "delay_s": 0.05,
    "refuse_connect": 0.15,
    "crash_worker": 0.04,
    "hang_worker": 0.03,
    "hang_s": 2.5,
    "slow_task": 1.0,
    "slow_s": 0.35,
    "fail_artifact_write": 0.15,
}

#: The sweep: E3-style benign congest cells, small enough that the serial
#: reference is seconds, numerous enough that the kill lands mid-sweep.
SCENARIO = {
    "name": "chaos-demo-e3",
    "graph": {"name": "hnd", "params": {"n": 48, "degree": 8}, "seed_offset": 0},
    "adversary": {"name": "silent", "params": {}, "seed_offset": 0},
    "placement": {"name": "random", "params": {"count": 0}, "seed_offset": 0},
    "protocol": {"name": "congest", "params": {"d": 8}, "seed_offset": 0},
    "params": {},
    "seeds": list(range(10)),
}

#: Journal completions to wait for before killing the sweep process.
KILL_AFTER_DONE = 2


def _fail(message: str) -> int:
    print(f"chaos-demo FAIL: {message}")
    return 1


def _serial_reference() -> str:
    """The ground-truth table, rendered exactly like ``scenario run`` does."""
    from repro.analysis.tables import render_table
    from repro.runner import SweepRunner
    from repro.scenarios import Scenario

    scenario = Scenario.from_dict(SCENARIO)
    rows = SweepRunner().run(scenario.compile())
    return render_table(
        [{"seed": seed, **metrics} for seed, metrics in zip(scenario.seeds, rows)],
        title=scenario.name,
    )


def _journal_path(artifact_dir: Path) -> Path:
    from repro.runner import SweepJournal
    from repro.scenarios import Scenario

    return SweepJournal.for_configs(
        artifact_dir, Scenario.from_dict(SCENARIO).compile()
    ).path


def _read_journal(path: Path) -> Optional[dict]:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


def _sweep_command(spec: Path, plan: Path, artifact_dir: Path, *, resume: bool) -> List[str]:
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "scenario",
        "run",
        str(spec),
        "--backend",
        "distributed",
        "--spawn-workers",
        "2",
        "--artifact-dir",
        str(artifact_dir),
        "--fault-plan",
        str(plan),
        "--lease-ttl",
        "2",
        "--max-retries",
        "10",
    ]
    if resume:
        command.append("--resume")
    return command


def _run_and_kill(spec: Path, plan: Path, artifact_dir: Path) -> Tuple[bool, str]:
    """Start the chaos sweep, SIGKILL it mid-flight; (killed?, diagnostics)."""
    journal = _journal_path(artifact_dir)
    process = subprocess.Popen(
        _sweep_command(spec, plan, artifact_dir, resume=False),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        cwd=str(ROOT),
    )
    deadline = time.monotonic() + 120.0
    try:
        while time.monotonic() < deadline:
            document = _read_journal(journal)
            if document is not None and len(document.get("done", ())) >= KILL_AFTER_DONE:
                process.send_signal(signal.SIGKILL)
                process.wait(timeout=10.0)
                return True, ""
            if process.poll() is not None:
                _, err = process.communicate()
                return False, (
                    f"sweep process exited (code {process.returncode}) before "
                    f"{KILL_AFTER_DONE} journal completions:\n"
                    + err.decode("utf-8", "replace")[-2000:]
                )
            time.sleep(0.05)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)
    return False, "timed out waiting for the journal to record progress"


def _resume(spec: Path, plan: Path, artifact_dir: Path) -> Tuple[Optional[str], str]:
    """Resume the killed sweep; (stdout table or None, diagnostics)."""
    try:
        completed = subprocess.run(
            _sweep_command(spec, plan, artifact_dir, resume=True),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            cwd=str(ROOT),
            timeout=150.0,
        )
    except subprocess.TimeoutExpired:
        return None, "resume run timed out"
    stderr = completed.stderr.decode("utf-8", "replace")
    if completed.returncode != 0:
        return None, f"resume run failed (code {completed.returncode}):\n{stderr[-2000:]}"
    stdout = completed.stdout.decode("utf-8", "replace")
    # The table is everything before the trailing "[scenario] k cached, ..."
    # summary line the CLI appends when an artifact dir is in play.
    table_lines = []
    for line in stdout.splitlines():
        if line.startswith("[scenario]"):
            break
        table_lines.append(line)
    if "resuming sweep" not in stderr:
        return None, f"resume run never announced the resume:\n{stderr[-2000:]}"
    return "\n".join(table_lines).rstrip("\n"), stderr


def main() -> int:
    print("chaos-demo: building serial reference table...")
    reference = _serial_reference()

    with tempfile.TemporaryDirectory(prefix="chaos-demo-") as tmp:
        tmpdir = Path(tmp)
        spec = tmpdir / "scenario.json"
        spec.write_text(json.dumps(SCENARIO, indent=2), encoding="utf-8")
        plan = tmpdir / "fault_plan.json"
        plan.write_text(json.dumps(FAULT_PLAN, indent=2), encoding="utf-8")
        artifact_dir = tmpdir / "artifacts"

        print(
            "chaos-demo: running distributed sweep under fault injection, "
            f"killing the broker after {KILL_AFTER_DONE} completions..."
        )
        killed, diagnostics = _run_and_kill(spec, plan, artifact_dir)
        if not killed:
            return _fail(diagnostics)
        document = _read_journal(_journal_path(artifact_dir))
        if document is None:
            return _fail("no readable journal survived the kill")
        pre_kill_done = len(document.get("done", ()))
        if document.get("complete"):
            return _fail("journal claims completion despite the mid-sweep kill")
        print(
            f"chaos-demo: broker killed with {pre_kill_done}/"
            f"{document.get('total')} task(s) journaled; resuming..."
        )

        table, stderr = _resume(spec, plan, artifact_dir)
        if table is None:
            return _fail(stderr)
        if table != reference:
            return _fail(
                "resumed table differs from the serial reference\n"
                f"--- serial ---\n{reference}\n--- resumed ---\n{table}"
            )
        document = _read_journal(_journal_path(artifact_dir))
        if document is None or not document.get("complete"):
            return _fail("journal is not complete after the resume")
        if document.get("resumed", 0) < 1:
            return _fail("journal did not record the resume")
        if len(document.get("cached", ())) < 1:
            return _fail(
                "resume re-executed everything; pre-kill artifacts were not reused"
            )
        if not document.get("events"):
            return _fail("journal carries no broker events from the resumed sweep")

        print(
            "chaos-demo ok: broker killed mid-sweep after "
            f"{pre_kill_done} completion(s); --resume reused "
            f"{len(document['cached'])} cached task(s), finished "
            f"{len(document['done'])}/{document['total']}, and the final table "
            "is byte-identical to the serial run"
        )
        faults = document.get("faults")
        if faults:
            fired = ", ".join(f"{site} x{count}" for site, count in sorted(faults.items()))
            print(f"chaos-demo: broker-side injected faults: {fired}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
