"""Executable maintenance/verification tools (``python -m repro.tools.*``).

Each module here is a small, self-contained gate wired into the Makefile --
e.g. :mod:`repro.tools.churn_demo` backs ``make churn-demo``.  They are not
part of the library API.
"""
