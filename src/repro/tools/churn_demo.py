"""``make churn-demo``: the dynamic-topology acceptance gate.

Two legs, both sub-minute:

1. **Zero-churn byte-identity.**  The committed E2 suite is re-run with an
   *explicit* ``churn: none`` axis spliced into every row.  The rendered
   table must equal the committed golden byte-for-byte: selecting the static
   schedule -- even explicitly -- must leave the engine on the exact
   pre-churn code paths.
2. **Seeded churn end-to-end.**  The committed churn example
   (``examples/scenario_e2_churn_small.json``) is materialized for every
   seed; each cell must report actual churn activity, a positive
   re-convergence time, a non-None stale-estimate error, and full decision
   coverage (the network re-converges after the leave/re-join cycle).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.scenarios import Scenario, ScenarioSuite, materialize

#: src/repro/tools/churn_demo.py -> repository root.
ROOT = Path(__file__).resolve().parents[3]

STATIC_SUITE = ROOT / "examples" / "scenario_e2_small.json"
CHURN_EXAMPLE = ROOT / "examples" / "scenario_e2_churn_small.json"
GOLDEN_TABLE = ROOT / "tests" / "golden" / "e2_small_table.txt"


def _fail(message: str) -> int:
    print(f"churn-demo FAIL: {message}")
    return 1


def _zero_churn_golden_leg() -> int:
    document = json.loads(STATIC_SUITE.read_text(encoding="utf-8"))
    for row in document["rows"]:
        row["scenario"]["churn"] = {"name": "none", "params": {}, "seed_offset": 0}
    rendered = ScenarioSuite.from_dict(document).run().render() + "\n"
    expected = GOLDEN_TABLE.read_text(encoding="utf-8")
    if rendered != expected:
        return _fail(
            "explicit churn=none table differs from the committed golden "
            f"({GOLDEN_TABLE}); the static code path is no longer byte-identical"
        )
    print(
        "churn-demo leg 1 ok: explicit churn=none regenerates the E2 golden "
        "table byte-for-byte"
    )
    return 0


def _seeded_churn_leg() -> int:
    scenario = Scenario.from_json(CHURN_EXAMPLE.read_text(encoding="utf-8"))
    for seed in scenario.seeds:
        metrics = materialize(scenario, seed).metrics
        label = f"{scenario.name} seed {seed}"
        if not metrics["churn_events"]:
            return _fail(f"{label}: no churn events were applied")
        if not metrics["rounds_to_reconverge"]:
            return _fail(
                f"{label}: rounds_to_reconverge is "
                f"{metrics['rounds_to_reconverge']!r} (expected > 0)"
            )
        if metrics["stale_estimate_error"] is None:
            return _fail(f"{label}: stale_estimate_error is None")
        if metrics["decided_fraction"] < 1.0:
            return _fail(
                f"{label}: decided_fraction {metrics['decided_fraction']} < 1.0 "
                "(network did not re-converge)"
            )
        print(
            f"churn-demo leg 2 ok: {label} -- "
            f"churn_events={metrics['churn_events']}, "
            f"rounds_to_reconverge={metrics['rounds_to_reconverge']}, "
            f"stale_estimate_error={metrics['stale_estimate_error']:.4f}"
        )
    return 0


def main() -> int:
    return _zero_churn_golden_leg() or _seeded_churn_leg()


if __name__ == "__main__":
    sys.exit(main())
