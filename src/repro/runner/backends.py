"""Execution backends: *how* a sweep's pending work items get executed.

:class:`~repro.runner.sweep.SweepRunner` owns the *policy* of a sweep --
cache lookups, result canonicalization, artifact persistence, progress
reporting, bookkeeping -- and delegates the *mechanics* of running the
not-cached work items to an :class:`ExecutionBackend`:

``serial``
    Runs every item in-process, in order.  The historical ``workers=1``
    path, still the default.
``pool``
    Fans items out over a ``multiprocessing`` pool (the historical
    ``workers>1`` path, extracted verbatim from ``SweepRunner``).
``distributed``
    Serves items to worker daemons -- local or on other hosts -- through a
    lease-based TCP broker (:mod:`repro.runner.distributed`).

All three backends yield ``(config index, result, meta)`` tuples as items
complete, in **arbitrary order**; the runner re-orders by index, so every
backend produces byte-identical tables.  A ``meta`` of ``None`` marks an
item that was *not* executed because the broker found its artifact already
on disk (see ``Broker`` dedupe); executed items always carry a meta dict.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
import time
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple, Union

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "PoolBackend",
    "resolve_backend",
    "worker_context",
    "BACKEND_NAMES",
]

#: Work item shipped to a worker: (position in the config list, task name,
#: params, module that registers the task).  The module name lets a worker
#: started in a fresh process re-register tasks that live outside
#: ``repro.experiments`` (fork workers inherit the registry and ignore it).
WorkItem = Tuple[int, str, Dict[str, Any], Optional[str]]

#: Per-task execution metadata produced by workers and persisted alongside
#: each artifact: {"wall_clock_s": float, "worker": pid, ...}.  The
#: distributed backend adds "host" and "worker_id".
TaskMeta = Dict[str, Any]

#: One completed work item: (config index, raw result, meta or None).
CompletedItem = Tuple[int, Any, Optional[TaskMeta]]


def execute_work_item(item: WorkItem) -> Tuple[int, Any, TaskMeta]:
    """Run one config, tagging the result with its index and with execution
    metadata (wall-clock seconds, worker pid).

    This is the single task-execution entry point shared by every backend:
    the serial loop calls it inline, the pool maps it across worker
    processes, and the distributed worker daemon runs it for each leased
    task (adding its host/worker-id to the meta before streaming it back).
    """
    from repro.runner.registry import run_task

    index, task, params, module = item
    if module is not None:
        try:
            importlib.import_module(module)
        except ImportError:
            pass  # fork workers already hold the registration
    start = time.perf_counter()
    result = run_task(task, params)
    meta: TaskMeta = {
        "wall_clock_s": time.perf_counter() - start,
        "worker": os.getpid(),
    }
    return index, result, meta


def worker_context() -> "multiprocessing.context.BaseContext":
    """The multiprocessing context for task-executing pools.

    Prefer fork where available: children then inherit the full task
    registry outright.  Spawn platforms fall back to the module name
    shipped with each work item.  Shared by the pool backend and the
    distributed worker daemon's local pool so both resolve tasks the same
    way.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


class ExecutionBackend:
    """How pending work items get executed.  Subclasses yield completions.

    Attributes
    ----------
    name:
        The registry name (``serial``/``pool``/``distributed``).
    parallel:
        Whether completions may arrive out of order / concurrently (drives
        the runner's default progress-line heuristic).
    persists:
        Whether the backend writes artifacts itself as results arrive (the
        distributed broker does, so shared-cache dedupe sees fresh results
        mid-sweep); when ``False`` the runner persists after canonicalizing.
    """

    name = "?"
    parallel = False
    persists = False

    def execute(
        self,
        pending: Sequence[WorkItem],
        *,
        store: Optional[Any] = None,
        force: bool = False,
    ) -> Iterator[CompletedItem]:
        """Yield ``(index, result, meta)`` for every item, in any order.

        ``store``/``force`` describe the runner's artifact cache so backends
        that dedupe against it (the broker) can; serial/pool ignore them.
        """
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class SerialBackend(ExecutionBackend):
    """In-process, in-order execution (the historical ``workers=1`` path)."""

    name = "serial"
    parallel = False

    def execute(
        self,
        pending: Sequence[WorkItem],
        *,
        store: Optional[Any] = None,
        force: bool = False,
    ) -> Iterator[CompletedItem]:
        for item in pending:
            yield execute_work_item(item)


class PoolBackend(ExecutionBackend):
    """``multiprocessing`` pool execution (the historical ``workers>1`` path)."""

    name = "pool"
    parallel = True

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError(f"pool workers must be >= 1, got {workers}")
        self.workers = workers

    def describe(self) -> str:
        return f"pool({self.workers})"

    def execute(
        self,
        pending: Sequence[WorkItem],
        *,
        store: Optional[Any] = None,
        force: bool = False,
    ) -> Iterator[CompletedItem]:
        processes = min(self.workers, len(pending))
        if processes <= 1:
            # One item (or one worker) gains nothing from a pool.
            yield from SerialBackend().execute(pending)
            return
        with worker_context().Pool(processes=processes) as pool:
            # Unordered: completion order does not matter because every
            # result carries its config index.
            for item in pool.imap_unordered(execute_work_item, pending):
                yield item


BACKEND_NAMES = ("serial", "pool", "distributed")


def resolve_backend(
    backend: Union[None, str, ExecutionBackend], *, workers: int = 1
) -> ExecutionBackend:
    """Turn the ``SweepRunner(backend=...)`` argument into a backend object.

    ``None`` preserves the historical behaviour: serial for ``workers=1``,
    a pool of ``workers`` otherwise.  A string names a backend --
    ``"distributed"`` builds a loopback-spawning broker with ``workers``
    local worker daemons (pass a configured
    :class:`~repro.runner.distributed.DistributedBackend` instance for
    anything fancier, e.g. listening for remote workers).
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None:
        return SerialBackend() if workers == 1 else PoolBackend(workers)
    if backend == "serial":
        return SerialBackend()
    if backend == "pool":
        return PoolBackend(workers)
    if backend == "distributed":
        from repro.runner.distributed import DistributedBackend

        return DistributedBackend(spawn_workers=workers)
    raise ValueError(
        f"unknown execution backend {backend!r}; options: {list(BACKEND_NAMES)}"
    )
