"""Importable support tasks for runner/backend tests and demos.

The distributed worker daemon resolves tasks in a **fresh interpreter**, so
tasks used to exercise it must live in an importable module (each work item
ships its registering module's name; see
:func:`repro.runner.backends.execute_work_item`).  Tasks defined inside the
test files themselves would only resolve under fork-based pools -- these
live here instead.

They are also useful knobs on their own: ``testing.sleep_echo`` gives a
task whose duration is a parameter (fault-injection windows, progress-line
demos), ``testing.boom`` a task that deterministically fails (retry-budget
behaviour).
"""

from __future__ import annotations

import time
from typing import Any, Dict

from repro.runner.registry import sweep_task

__all__ = ["sleep_echo", "boom"]


@sweep_task("testing.sleep_echo")
def sleep_echo(*, value: Any, sleep_s: float = 0.0, scale: int = 1) -> Dict[str, Any]:
    """Sleep ``sleep_s`` seconds, then echo a deterministic result."""
    if sleep_s > 0:
        time.sleep(sleep_s)
    out = value * scale if isinstance(value, (int, float)) else value
    return {"value": out}


@sweep_task("testing.boom")
def boom(*, message: str = "boom") -> None:
    """Raise deterministically (exercises worker error reporting/retries)."""
    raise RuntimeError(message)
