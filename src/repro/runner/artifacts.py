"""On-disk artifact store for sweep results.

Layout (see RUNNER.md)::

    <root>/
        <task name>/
            <config hash>.json    # {"config": {...}, "result": ...}

Each artifact records the full config alongside the result so a cache
directory is self-describing; the filename is the config's content hash, so a
re-run with identical parameters finds its artifact without any index.
Writes go through a temp file + ``os.replace`` so a crashed run never leaves
a truncated artifact behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, List, Optional, Union

from repro.runner.config import SweepConfig

__all__ = ["ArtifactStore", "MISSING"]

#: Sentinel returned by :meth:`ArtifactStore.load` on a cache miss (``None``
#: is a legitimate task result).
MISSING = object()


class ArtifactStore:
    """Content-addressed JSON artifacts under a root directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path_for(self, config: SweepConfig) -> Path:
        """Artifact path of ``config`` (exists only after :meth:`store`)."""
        return self.root / config.task / f"{config.key()}.json"

    def load(self, config: SweepConfig) -> Any:
        """The cached result of ``config``, or :data:`MISSING`.

        Unreadable or corrupt artifacts count as misses: the runner will
        recompute and overwrite them.
        """
        path = self.path_for(config)
        try:
            with path.open("r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return MISSING
        if not isinstance(document, dict) or "result" not in document:
            return MISSING
        return document["result"]

    def store(
        self, config: SweepConfig, result: Any, *, meta: Optional[dict] = None
    ) -> Path:
        """Persist ``result`` for ``config`` and return the artifact path.

        ``meta`` (execution metadata such as per-task wall-clock seconds and
        the worker pid) is stored alongside the result but never affects the
        config hash or the value :meth:`load` returns -- cached re-reads stay
        indistinguishable from fresh computations.
        """
        path = self.path_for(config)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "config": {"task": config.task, "params": config.params},
            "result": result,
        }
        if meta is not None:
            document["meta"] = meta
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True)
        os.replace(tmp, path)
        return path

    def load_meta(self, config: SweepConfig) -> Optional[dict]:
        """Execution metadata stored with ``config``'s artifact, if any."""
        path = self.path_for(config)
        try:
            with path.open("r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(document, dict):
            return None
        meta = document.get("meta")
        return meta if isinstance(meta, dict) else None

    def stored_configs(self, task: Optional[str] = None) -> List[Path]:
        """All artifact paths (optionally restricted to one task)."""
        if not self.root.is_dir():
            return []
        pattern = f"{task}/*.json" if task else "*/*.json"
        return sorted(self.root.glob(pattern))
