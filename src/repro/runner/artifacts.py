"""On-disk artifact store for sweep results.

Layout (see RUNNER.md)::

    <root>/
        <task name>/
            <config hash>.json    # {"config": {...}, "result": ...}

Each artifact records the full config alongside the result so a cache
directory is self-describing; the filename is the config's content hash, so a
re-run with identical parameters finds its artifact without any index.
Writes go through a uniquely named temp file + ``os.replace``, so a crashed
run never leaves a truncated artifact behind **and** any number of
concurrent writers -- pool workers, distributed workers on several hosts
sharing the directory, overlapping sweeps -- can target the same artifact
safely: each writes its own temp file and the last atomic rename wins,
while readers only ever observe complete documents.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from pathlib import Path
from typing import Any, List, Optional, Set, Union

from repro.runner.config import SweepConfig

__all__ = ["ArtifactStore", "MISSING"]

#: Sentinel returned by :meth:`ArtifactStore.load` on a cache miss (``None``
#: is a legitimate task result).
MISSING = object()

#: The process umask, captured once at import (reading it requires setting
#: it; doing that per-write would race other threads).  ``mkstemp`` creates
#: temp files 0600 regardless of umask; artifacts must instead get the
#: ordinary umask-derived mode, or readers running as a different user on a
#: shared artifact dir would see every lookup fail as a cache miss.
_UMASK = os.umask(0)
os.umask(_UMASK)


class ArtifactStore:
    """Content-addressed JSON artifacts under a root directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        # Paths already warned about this process, so a corrupt artifact
        # consulted by both load() and load_meta() nags once, not per call.
        self._warned: Set[Path] = set()

    def path_for(self, config: SweepConfig) -> Path:
        """Artifact path of ``config`` (exists only after :meth:`store`)."""
        return self.root / config.task / f"{config.key()}.json"

    def _warn_corrupt(self, path: Path, reason: str) -> None:
        """A present-but-unusable artifact is a silent data-loss hazard --
        say so (once per path) before treating it as a cache miss."""
        if path in self._warned:
            return
        self._warned.add(path)
        sys.stderr.write(
            f"[artifacts] ignoring corrupt artifact {path}: {reason}; "
            "treating as a cache miss\n"
        )
        sys.stderr.flush()

    def load(self, config: SweepConfig) -> Any:
        """The cached result of ``config``, or :data:`MISSING`.

        Unreadable or corrupt artifacts count as misses -- the runner
        recomputes and overwrites them -- but a file that *exists* and
        cannot be used (truncated write survivor, hand-edited JSON, wrong
        shape) is reported on stderr rather than silently re-executed.
        """
        path = self.path_for(config)
        try:
            with path.open("r", encoding="utf-8") as handle:
                document = json.load(handle)
        except FileNotFoundError:
            return MISSING
        except (OSError, ValueError) as exc:
            self._warn_corrupt(path, f"{type(exc).__name__}: {exc}")
            return MISSING
        if not isinstance(document, dict) or "result" not in document:
            self._warn_corrupt(path, "document is not an artifact object")
            return MISSING
        return document["result"]

    def store(
        self, config: SweepConfig, result: Any, *, meta: Optional[dict] = None
    ) -> Path:
        """Persist ``result`` for ``config`` and return the artifact path.

        ``meta`` (execution metadata such as per-task wall-clock seconds and
        the worker pid) is stored alongside the result but never affects the
        config hash or the value :meth:`load` returns -- cached re-reads stay
        indistinguishable from fresh computations.  That includes **key
        order**: the document is serialized preserving the result's own dict
        order (not ``sort_keys``), because JSON objects round-trip their
        order through ``json.load`` and downstream table rendering derives
        column order from it -- a cache hit that alphabetized the keys would
        render a different table than the fresh run that produced it.

        The write is atomic and safe under concurrent writers: the document
        goes to a uniquely named temp file in the artifact's directory
        (never a shared ``<name>.tmp``, which two writers would corrupt by
        interleaving) and is renamed into place with ``os.replace``.
        """
        path = self.path_for(config)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "config": {"task": config.task, "params": config.params},
            "result": result,
        }
        if meta is not None:
            document["meta"] = meta
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle)
            os.chmod(tmp_name, 0o666 & ~_UMASK)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def load_meta(self, config: SweepConfig) -> Optional[dict]:
        """Execution metadata stored with ``config``'s artifact, if any.

        Corrupt artifacts behave like :meth:`load`: warned about once,
        then treated as absent.
        """
        path = self.path_for(config)
        try:
            with path.open("r", encoding="utf-8") as handle:
                document = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            self._warn_corrupt(path, f"{type(exc).__name__}: {exc}")
            return None
        if not isinstance(document, dict):
            self._warn_corrupt(path, "document is not an artifact object")
            return None
        meta = document.get("meta")
        return meta if isinstance(meta, dict) else None

    def stored_configs(self, task: Optional[str] = None) -> List[Path]:
        """All artifact paths (optionally restricted to one task)."""
        if not self.root.is_dir():
            return []
        pattern = f"{task}/*.json" if task else "*/*.json"
        return sorted(self.root.glob(pattern))
