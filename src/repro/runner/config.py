"""Sweep configurations: one JSON-serializable unit of experiment work.

A :class:`SweepConfig` names a registered task (see
:mod:`repro.runner.registry`) and the keyword arguments it should run with.
Because both fields are restricted to JSON-compatible values, every config has
a canonical serialization and therefore a stable content hash, which is what
keys the on-disk artifact cache (:mod:`repro.runner.artifacts`).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

__all__ = ["SweepConfig", "canonical_json"]


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace).

    Raises ``TypeError`` for values outside the JSON data model and
    ``ValueError`` for non-finite floats (``NaN``/``Infinity`` have no
    standard JSON encoding, so allowing them would put non-portable tokens
    into content hashes and artifact files) -- configs must stay plain,
    portable data so hashes are reproducible across processes.
    """
    try:
        return json.dumps(value, sort_keys=True, separators=(",", ":"), allow_nan=False)
    except ValueError as exc:
        raise ValueError(
            f"non-finite float (NaN/Infinity) has no canonical JSON encoding: {exc}"
        ) from None


def _reject_non_finite(value: Any, path: str) -> None:
    """Fail fast on NaN/Infinity anywhere inside a params tree."""
    if isinstance(value, float) and not math.isfinite(value):
        raise ValueError(
            f"SweepConfig params must be finite; {path} is {value!r} "
            "(NaN/Infinity cannot be canonically JSON-encoded or hashed)"
        )
    if isinstance(value, Mapping):
        for key, item in value.items():
            _reject_non_finite(item, f"{path}.{key}")
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            _reject_non_finite(item, f"{path}[{index}]")


@dataclass(eq=False)
class SweepConfig:
    """One (task, params) cell of a sweep.

    Attributes
    ----------
    task:
        Name of a task registered with :func:`repro.runner.registry.sweep_task`.
    params:
        Keyword arguments for the task.  Values must be JSON-serializable
        (numbers, strings, booleans, ``None``, lists, string-keyed dicts) so
        the config can be hashed and shipped to worker processes; non-finite
        floats are rejected at construction time.
    """

    task: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.params = dict(self.params)
        _reject_non_finite(self.params, "params")

    def canonical(self) -> str:
        """Canonical JSON form used for hashing and artifact headers."""
        return canonical_json({"task": self.task, "params": self.params})

    def key(self) -> str:
        """Stable content hash of this config (hex, 20 chars)."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()[:20]
