"""Sweep configurations: one JSON-serializable unit of experiment work.

A :class:`SweepConfig` names a registered task (see
:mod:`repro.runner.registry`) and the keyword arguments it should run with.
Because both fields are restricted to JSON-compatible values, every config has
a canonical serialization and therefore a stable content hash, which is what
keys the on-disk artifact cache (:mod:`repro.runner.artifacts`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

__all__ = ["SweepConfig", "canonical_json"]


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace).

    Raises ``TypeError`` for values outside the JSON data model -- configs
    must stay plain data so hashes are reproducible across processes.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"), allow_nan=True)


@dataclass(eq=False)
class SweepConfig:
    """One (task, params) cell of a sweep.

    Attributes
    ----------
    task:
        Name of a task registered with :func:`repro.runner.registry.sweep_task`.
    params:
        Keyword arguments for the task.  Values must be JSON-serializable
        (numbers, strings, booleans, ``None``, lists, string-keyed dicts) so
        the config can be hashed and shipped to worker processes.
    """

    task: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.params = dict(self.params)

    def canonical(self) -> str:
        """Canonical JSON form used for hashing and artifact headers."""
        return canonical_json({"task": self.task, "params": self.params})

    def key(self) -> str:
        """Stable content hash of this config (hex, 20 chars)."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()[:20]
