"""Registry of sweep task functions.

Configs reference tasks by *name* (a plain string) so that a
:class:`~repro.runner.config.SweepConfig` stays JSON-serializable and can be
executed in a worker process that only shares the installed code, not any
Python objects.  Experiment modules register their per-trial functions at
import time::

    @sweep_task("e3.trial")
    def _trial(*, n, degree, trial_seed): ...

Resolution is lazy: the first lookup of an unknown name imports
``repro.experiments`` (which pulls in every driver module and therefore every
registration).  This keeps ``repro.runner`` free of an import cycle with the
experiment package while still letting freshly spawned workers resolve any
experiment task by name alone.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping

__all__ = ["sweep_task", "resolve_task", "run_task", "registered_tasks"]

_TASKS: Dict[str, Callable[..., Any]] = {}


def sweep_task(name: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator registering ``fn`` as the sweep task called ``name``."""

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        existing = _TASKS.get(name)
        if existing is not None and existing is not fn:
            raise ValueError(f"sweep task {name!r} registered twice")
        _TASKS[name] = fn
        return fn

    return decorate


def resolve_task(name: str) -> Callable[..., Any]:
    """Look up a task by name, importing the experiment modules if needed."""
    if name not in _TASKS:
        # Populate the registry: importing the experiment package imports
        # every driver module, each of which registers its tasks.
        import repro.experiments  # noqa: F401  (import for side effect)
    try:
        return _TASKS[name]
    except KeyError:
        raise KeyError(
            f"unknown sweep task {name!r}; registered tasks: {sorted(_TASKS)}"
        ) from None


def run_task(name: str, params: Mapping[str, Any]) -> Any:
    """Execute the named task with ``params`` as keyword arguments."""
    return resolve_task(name)(**params)


def registered_tasks() -> Dict[str, Callable[..., Any]]:
    """Snapshot of the currently registered tasks (name -> function)."""
    return dict(_TASKS)
