"""Hub supervision: queue-depth watching and optional worker autoscaling.

:class:`HubSupervisor` is the hub's control loop.  Every ``interval_s``
it polls the hub's live :meth:`~repro.runner.distributed.broker.Broker
.snapshot` -- pending-task backlog across live sweeps, connected worker
fleet -- and:

- **emits scale signals** into the hub's structured event log
  (``autoscale`` events with ``action="scale-up" | "scale-down"``),
  transition-gated so a steady backlog logs one signal, not one per tick;
- **optionally acts on them**: with ``autoscale=(MIN, MAX)`` it maintains
  its own pool of persistent loopback worker processes
  (:func:`~repro.runner.distributed.backend.spawn_loopback_worker`) sized
  ``clamp(MIN, MAX, ceil(backlog / depth_per_worker))``.  Scale-down
  retires workers with SIGTERM -- the daemons' graceful drain ``abandon``s
  unstarted lease members back to the queue front, uncharged -- and
  workers that die unexpectedly are reaped and respawned within the same
  budget, so the pool self-heals alongside the hub.

Without ``autoscale`` the supervisor is signal-only: operators (or an
external orchestrator watching the event log / dashboard) do the scaling.
The supervisor never touches externally connected workers; its pool is
additive to whatever fleet dials in on its own.
"""

from __future__ import annotations

import math
import subprocess
import sys
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.runner.distributed.broker import Broker

__all__ = ["HubSupervisor"]

#: Sweep statuses whose remaining tasks count toward the backlog.
_LIVE_STATUSES = ("queued", "active")


class HubSupervisor:
    """Watch a hub's queue depth and fleet; signal and optionally scale.

    Parameters
    ----------
    hub:
        The :class:`~repro.runner.hub.service.SweepHub` (any broker with
        ``snapshot()`` / ``_event()`` works) under supervision.
    autoscale:
        ``(MIN, MAX)`` bounds for the supervisor-owned loopback worker
        pool, or ``None`` for signal-only mode.
    depth_per_worker:
        Backlog tasks one worker is expected to absorb; the pool targets
        ``ceil(backlog / depth_per_worker)`` clamped to the bounds.
    interval_s:
        Poll cadence of the background loop (:meth:`start`); :meth:`poll`
        can also be driven manually (tests, external loops).
    procs:
        ``--workers`` for each spawned loopback worker.
    verbose:
        Log supervisor actions to stderr.
    """

    def __init__(
        self,
        hub: Broker,
        *,
        autoscale: Optional[Tuple[int, int]] = None,
        depth_per_worker: int = 4,
        interval_s: float = 1.0,
        procs: int = 1,
        verbose: bool = False,
    ) -> None:
        if autoscale is not None:
            lo, hi = autoscale
            if lo < 0 or hi < lo:
                raise ValueError(
                    f"autoscale bounds must satisfy 0 <= MIN <= MAX, got {autoscale}"
                )
        if depth_per_worker < 1:
            raise ValueError(
                f"depth_per_worker must be >= 1, got {depth_per_worker}"
            )
        self.hub = hub
        self.autoscale = autoscale
        self.depth_per_worker = depth_per_worker
        self.interval_s = interval_s
        self.procs = procs
        self.verbose = verbose
        self._pool: List["subprocess.Popen[bytes]"] = []
        self._last_action: Optional[str] = None
        self._last_desired: Optional[int] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.stats: Dict[str, int] = {
            "polls": 0,
            "spawned": 0,
            "retired": 0,
            "worker_deaths": 0,
        }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop polling and retire the whole supervisor-owned pool."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        for proc in self._pool:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._pool:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self._pool.clear()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.poll()
            except Exception as exc:  # noqa: BLE001 - supervision must survive
                self._log(f"poll failed: {exc}")

    # ------------------------------------------------------------------ #
    # One supervision tick
    # ------------------------------------------------------------------ #
    def poll(self) -> Dict[str, Any]:
        """One tick: measure, signal on transitions, reconcile the pool."""
        self.stats["polls"] += 1
        snap = self.hub.snapshot()
        backlog = sum(
            max(0, int(s.get("total", 0)) - int(s.get("done", 0)))
            for s in snap.get("sweeps", ())
            if s.get("status") in _LIVE_STATUSES
        )
        fleet = len(snap.get("workers", ()))
        own = self._reap()
        desired = self._desired(backlog)
        action = self._signal_for(backlog, fleet)
        if action is not None and (
            action != self._last_action or desired != self._last_desired
        ):
            self.hub._event(
                "autoscale",
                action=action,
                backlog=backlog,
                fleet=fleet,
                desired=desired if self.autoscale is not None else None,
            )
            self._log(
                f"{action}: backlog={backlog} fleet={fleet}"
                + (f" desired={desired}" if desired is not None else "")
            )
        self._last_action = action
        self._last_desired = desired
        if self.autoscale is not None and not self._stop.is_set():
            assert desired is not None
            own = self._reconcile(own, desired)
        return {
            "backlog": backlog,
            "fleet": fleet,
            "own_workers": own,
            "desired": desired,
            "action": action,
        }

    # ------------------------------------------------------------------ #
    def _desired(self, backlog: int) -> Optional[int]:
        if self.autoscale is None:
            return None
        lo, hi = self.autoscale
        wanted = math.ceil(backlog / self.depth_per_worker) if backlog else 0
        return max(lo, min(hi, wanted))

    def _signal_for(self, backlog: int, fleet: int) -> Optional[str]:
        """The scale signal this tick's measurements call for, if any."""
        if backlog > fleet * self.depth_per_worker:
            return "scale-up"
        if backlog == 0 and fleet > 0:
            return "scale-down"
        return None

    def _reap(self) -> int:
        """Drop exited pool members (counting unexpected deaths); returns
        the live pool size."""
        live: List["subprocess.Popen[bytes]"] = []
        for proc in self._pool:
            if proc.poll() is None:
                live.append(proc)
            else:
                self.stats["worker_deaths"] += 1
                self._log(f"pool worker pid {proc.pid} exited {proc.returncode}")
        self._pool = live
        return len(live)

    def _reconcile(self, own: int, desired: int) -> int:
        from repro.runner.distributed.backend import spawn_loopback_worker

        while own < desired:
            proc = spawn_loopback_worker(
                self.hub.address,  # type: ignore[arg-type]
                procs=self.procs,
                exit_when_drained=False,
                verbose=self.verbose,
            )
            self._pool.append(proc)
            self.stats["spawned"] += 1
            self._log(f"spawned pool worker pid {proc.pid} ({own + 1}/{desired})")
            own += 1
        while own > desired:
            proc = self._pool.pop()
            if proc.poll() is None:
                # SIGTERM: the daemon drains gracefully, abandoning
                # unstarted lease members back to the queue uncharged.
                proc.terminate()
            self.stats["retired"] += 1
            self._log(f"retired pool worker pid {proc.pid} ({own - 1}/{desired})")
            own -= 1
        return own

    def _log(self, text: str) -> None:
        if self.verbose:
            sys.stderr.write(f"[hub-supervisor] {text}\n")
