"""Crash-safe hub state: the journal behind ``hub serve --state DIR``.

A :class:`HubJournal` is a directory of one JSON document per accepted
submission (``hub-<identity>.state.json``), where ``identity`` is the
sweep's content hash over its ordered task list
(:func:`~repro.runner.journal.sweep_identity` -- the same identity the
hub uses to dedupe resubmissions).  Each document records the submission
metadata, the full task list, and the done/cached indices as completions
land, then flips ``complete`` (or records an ``error``) at the end.

Every update uses the same temp-file + ``os.replace`` discipline as
:class:`~repro.runner.journal.SweepJournal`, so a SIGKILLed hub leaves
either the previous state or the new one, never a truncated document.
Like the client-side journal, the hub journal is *advisory*: the shared
artifact store remains the source of truth for results.  On restart
(:meth:`incomplete`) the hub re-adopts every interrupted sweep, and the
adoption pass re-probes the store -- tasks with an artifact behind them
complete from cache, only artifact-less tasks are re-queued -- so a
journal that lags a few completions costs re-checks, never duplicate
execution.

State files of *completed* sweeps stay on disk (marked ``complete``) as
an operator-readable record; restarts skip them.  Files of *failed*
sweeps stay too (marked with their ``error``) and are likewise skipped:
a sweep that exhausted its retry budget would only fail again, so
re-adoption is reserved for interruptions.
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.runner.backends import WorkItem
from repro.runner.journal import atomic_write_json

__all__ = ["HubJournal", "HUB_STATE_VERSION"]

HUB_STATE_VERSION = 1
_PREFIX = "hub-"
_SUFFIX = ".state.json"


def _utc_now() -> str:
    from datetime import datetime, timezone

    return datetime.now(timezone.utc).isoformat(timespec="seconds")


class HubJournal:
    """Per-submission crash-safe state documents under one directory.

    Thread-safe: the hub records submissions from client threads and marks
    completions from worker threads; one internal lock serializes both the
    in-memory documents and the file writes.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        #: Live documents by sweep identity (only sweeps recorded or
        #: adopted in this process; historical files stay on disk).
        self._docs: Dict[str, Dict[str, Any]] = {}

    # ------------------------------------------------------------------ #
    # Paths and reading
    # ------------------------------------------------------------------ #
    def path_for(self, identity: str) -> Path:
        return self.root / f"{_PREFIX}{identity}{_SUFFIX}"

    @staticmethod
    def _read(path: Path) -> Optional[Dict[str, Any]]:
        import json

        try:
            with path.open("r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return None
        if (
            not isinstance(document, dict)
            or document.get("version") != HUB_STATE_VERSION
            or not isinstance(document.get("tasks"), list)
            or not isinstance(document.get("done"), list)
        ):
            return None
        return document

    def incomplete(self) -> List[Dict[str, Any]]:
        """State documents of interrupted sweeps (for restart re-adoption).

        Complete and failed sweeps are skipped; unreadable or foreign
        files are warned about (once each, on stderr) and skipped -- a
        corrupt state file must not wedge the restart.
        """
        found: List[Dict[str, Any]] = []
        for path in sorted(self.root.glob(f"{_PREFIX}*{_SUFFIX}")):
            document = self._read(path)
            if document is None:
                sys.stderr.write(
                    f"[hub] warning: skipping unreadable state file {path}\n"
                )
                continue
            if document.get("complete") or document.get("error"):
                continue
            found.append(document)
        return found

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def record(
        self,
        identity: str,
        items: Sequence[WorkItem],
        *,
        name: str = "",
        priority: int = 0,
        force: bool = False,
        adopted: bool = False,
    ) -> None:
        """Journal one accepted (or re-adopted) submission.

        The completion state always (re)starts empty -- completions are
        re-marked as the store probe and the workers report them -- so the
        journal never claims a completion the artifact store cannot back.
        ``adopted`` counts restarts, mirroring the sweep journal's
        ``resumed`` counter.
        """
        with self._lock:
            prior = self._read(self.path_for(identity))
            doc: Dict[str, Any] = {
                "version": HUB_STATE_VERSION,
                "identity": identity,
                "name": name,
                "priority": priority,
                "force": bool(force),
                "created": prior["created"] if prior else _utc_now(),
                "updated": _utc_now(),
                "total": len(items),
                "tasks": [
                    {
                        "index": index,
                        "task": task,
                        "params": params,
                        "module": module,
                    }
                    for index, task, params, module in items
                ],
                "done": [],
                "cached": [],
                "complete": False,
                "adopted": (
                    (prior.get("adopted", 0) + 1 if prior else 1) if adopted else 0
                ),
                "error": None,
            }
            self._docs[identity] = doc
            self._flush_locked(identity)

    def mark_done(self, identity: str, index: int, *, cached: bool = False) -> None:
        """Record one completed task index; unknown identities are ignored
        (the journal is advisory -- a completion racing the submission
        record costs a re-check on restart, never correctness)."""
        with self._lock:
            doc = self._docs.get(identity)
            if doc is None:
                return
            if index not in doc["done"]:
                doc["done"].append(index)
            if cached and index not in doc["cached"]:
                doc["cached"].append(index)
            self._flush_locked(identity)

    def mark_complete(self, identity: str) -> None:
        with self._lock:
            doc = self._docs.get(identity)
            if doc is None:
                return
            doc["complete"] = True
            self._flush_locked(identity)

    def mark_failed(self, identity: str, error: str) -> None:
        """Record a sweep-fatal failure; the file is then skipped by
        restart re-adoption (a failed sweep would only fail again)."""
        with self._lock:
            doc = self._docs.get(identity)
            if doc is None:
                return
            doc["error"] = str(error)
            self._flush_locked(identity)

    # ------------------------------------------------------------------ #
    def _flush_locked(self, identity: str) -> None:
        doc = self._docs[identity]
        doc["done"] = sorted(set(doc["done"]))
        doc["cached"] = sorted(set(doc["cached"]))
        doc["updated"] = _utc_now()
        atomic_write_json(self.path_for(identity), doc)
