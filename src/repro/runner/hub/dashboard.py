"""Stdlib-only HTML dashboard for the Sweep Hub.

A thin ``http.server`` view over the same data the CLIs print: live hub
state (queue, fleet, leases) from :meth:`Broker.snapshot` or a remote
``status`` query, run history from :class:`ResultsDB`, and the bench
trajectory from ``BENCH_<date>.json`` report files.  Everything renders as
plain HTML tables -- no JavaScript, no external assets, no dependencies
beyond the standard library -- because the dashboard's job is browsing,
not charting; the bench harness already owns regression math.

The server is read-only by construction: every route answers ``GET`` with
data assembled at request time, so a browser refresh is the whole
"live update" story.
"""

from __future__ import annotations

import html
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union
from urllib.parse import parse_qs, urlparse

from repro.runner.hub.resultsdb import ResultsDB

__all__ = ["DashboardServer"]

_STYLE = """
body { font-family: monospace; margin: 1.5em; background: #fdfdfd; }
h1, h2 { font-size: 1.1em; }
table { border-collapse: collapse; margin: 0.5em 0 1.5em; }
th, td { border: 1px solid #bbb; padding: 0.25em 0.6em; text-align: left; }
th { background: #eee; }
a { color: #025; }
pre { background: #f2f2f2; padding: 0.8em; overflow-x: auto; }
.nav a { margin-right: 1em; }
"""


def _esc(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return html.escape(str(value))


def _html_table(rows: Sequence[Dict[str, Any]], columns: Sequence[str]) -> str:
    if not rows:
        return "<p>(none)</p>"
    head = "".join(f"<th>{html.escape(col)}</th>" for col in columns)
    body = "".join(
        "<tr>" + "".join(f"<td>{cell}</td>" for cell in row_cells) + "</tr>"
        for row_cells in (
            [_esc(row.get(col)) for col in columns] for row in rows
        )
    )
    return f"<table><tr>{head}</tr>{body}</table>"


def _page(title: str, body: str) -> bytes:
    nav = (
        '<p class="nav"><a href="/">hub</a><a href="/runs">runs</a>'
        '<a href="/bench">bench</a></p>'
    )
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title><style>{_STYLE}</style></head>"
        f"<body><h1>{html.escape(title)}</h1>{nav}{body}</body></html>"
    ).encode("utf-8")


class _Handler(BaseHTTPRequestHandler):
    server_version = "SweepHubDash/1"

    def log_message(self, *args: Any) -> None:  # noqa: D102 - silence stderr
        pass

    # -------------------------------------------------------------- #
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        dash: "DashboardServer" = self.server.dashboard  # type: ignore[attr-defined]
        parsed = urlparse(self.path)
        query = {k: v[0] for k, v in parse_qs(parsed.query).items()}
        try:
            route = {
                "/": dash.page_index,
                "/runs": dash.page_runs,
                "/run": dash.page_run,
                "/sweep": dash.page_sweep,
                "/bench": dash.page_bench,
            }.get(parsed.path)
            if route is None:
                self._respond(404, _page("not found", f"<p>no route {_esc(parsed.path)}</p>"))
                return
            self._respond(200, route(query))
        except KeyError as exc:
            self._respond(404, _page("not found", f"<p>{_esc(exc)}</p>"))
        except Exception as exc:  # noqa: BLE001 - a dashboard must not die
            self._respond(500, _page("error", f"<pre>{_esc(exc)}</pre>"))

    def _respond(self, code: int, payload: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)


class DashboardServer:
    """Serve the hub/run-history dashboard on a background thread.

    Parameters
    ----------
    artifact_dir:
        Artifact root for run history (``None``: the runs/sweeps pages
        show an explanatory empty state).
    hub:
        An in-process :class:`~repro.runner.hub.service.SweepHub`, when the
        dashboard runs inside ``repro hub serve`` (preferred: snapshots are
        lock-consistent and free).
    hub_address:
        A remote hub's ``(host, port)`` to ``status``-query per request
        instead (for a standalone ``repro hub dash``).
    bench_dir:
        Directory holding ``BENCH_<date>.json`` trajectory reports
        (``None`` hides the bench page's data).
    host / port:
        Bind address; port ``0`` picks a free one (see :attr:`address`).
    """

    def __init__(
        self,
        *,
        artifact_dir: Optional[Union[str, Path]] = None,
        hub: Optional[Any] = None,
        hub_address: Optional[Tuple[str, int]] = None,
        bench_dir: Optional[Union[str, Path]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.db = ResultsDB(artifact_dir) if artifact_dir is not None else None
        self.hub = hub
        self.hub_address = hub_address
        self.bench_dir = Path(bench_dir) if bench_dir is not None else None
        self._bind = (host, port)
        self.address: Optional[Tuple[str, int]] = None
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -------------------------------------------------------------- #
    def start(self) -> Tuple[str, int]:
        self._httpd = ThreadingHTTPServer(self._bind, _Handler)
        self._httpd.daemon_threads = True
        self._httpd.dashboard = self  # type: ignore[attr-defined]
        self.address = self._httpd.server_address[:2]
        self._thread = threading.Thread(target=self._httpd.serve_forever, daemon=True)
        self._thread.start()
        return self.address

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    # -------------------------------------------------------------- #
    def hub_status(self) -> Optional[Dict[str, Any]]:
        if self.hub is not None:
            return self.hub.snapshot()
        if self.hub_address is not None:
            from repro.runner.hub.client import query_hub_status

            try:
                return query_hub_status(self.hub_address, timeout_s=3.0)
            except Exception:  # noqa: BLE001 - hub may be down; show that
                return None
        return None

    # -------------------------------------------------------------- #
    # Pages
    # -------------------------------------------------------------- #
    def page_index(self, query: Dict[str, str]) -> bytes:
        del query
        parts: List[str] = []
        status = self.hub_status()
        if status is not None:
            address = status.get("address")
            where = f"{address[0]}:{address[1]}" if address else "in-process"
            parts.append(
                f"<h2>hub {_esc(where)} &middot; up {_esc(status.get('uptime_s'))}s"
                f" &middot; {_esc(status.get('active_leases'))} active lease(s)</h2>"
            )
            parts.append("<h2>sweeps</h2>")
            sweeps = [
                {**row, "sweep": f'<a href="/sweep?id={_esc(row.get("sweep"))}">'
                                 f'{_esc(row.get("sweep"))}</a>'}
                for row in status.get("sweeps", [])
            ]
            parts.append(_raw_table(
                sweeps,
                ["sweep", "name", "priority", "status", "done", "total",
                 "cached", "retries", "submitted", "finished", "error"],
            ))
            parts.append("<h2>workers</h2>")
            parts.append(_html_table(
                status.get("workers", []),
                ["worker", "host", "pid", "procs", "connected", "connections"],
            ))
            parts.append("<h2>stats</h2>")
            parts.append(f"<pre>{_esc(json.dumps(status.get('stats'), indent=2))}</pre>")
        else:
            parts.append("<p>no hub connected (run history below is static)</p>")
        if self.db is not None:
            parts.append("<h2>sweep journals</h2>")
            parts.append(_html_table(
                self.db.sweep_records(),
                ["sweep", "status", "done", "total", "cached", "resumed",
                 "events_dropped", "updated"],
            ))
        return _page("sweep hub", "".join(parts))

    def page_runs(self, query: Dict[str, str]) -> bytes:
        if self.db is None:
            return _page("runs", "<p>no artifact root configured</p>")
        records = self.db.run_records(
            task=query.get("task"), sweep=query.get("sweep"), with_result=False
        )
        rows = [
            {
                **record,
                "key": f'<a href="/run?key={_esc(record["task"])}/{_esc(record["key"])}">'
                       f'{_esc(record["key"][:16])}</a>',
                "sweeps": ", ".join(record["sweeps"]) or "-",
            }
            for record in records
        ]
        return _page(
            f"runs ({len(rows)})",
            _raw_table(rows, ["task", "key", "sweeps", "updated"]),
        )

    def page_run(self, query: Dict[str, str]) -> bytes:
        if self.db is None:
            return _page("run", "<p>no artifact root configured</p>")
        record = self.db.find(query.get("key", ""))
        body = (
            f"<h2>{_esc(record['task'])}/{_esc(record['key'])}</h2>"
            f"<h2>params</h2><pre>{_esc(json.dumps(record.get('params'), indent=2))}</pre>"
            f"<h2>result</h2><pre>{_esc(json.dumps(record.get('result'), indent=2))}</pre>"
            f"<h2>meta</h2><pre>{_esc(json.dumps(record.get('meta'), indent=2))}</pre>"
        )
        return _page("run", body)

    def page_sweep(self, query: Dict[str, str]) -> bytes:
        wanted = query.get("id", "")
        status = self.hub_status() or {}
        live = [row for row in status.get("sweeps", []) if row.get("sweep") == wanted]
        parts = []
        if live:
            parts.append("<h2>live</h2>")
            parts.append(f"<pre>{_esc(json.dumps(live[0], indent=2))}</pre>")
        if self.db is not None:
            records = [r for r in self.db.sweep_records() if r["sweep"] == wanted]
            for record in records:
                parts.append("<h2>journal</h2>")
                slim = {k: v for k, v in record.items() if k != "tasks"}
                parts.append(f"<pre>{_esc(json.dumps(slim, indent=2))}</pre>")
        if not parts:
            parts.append(f"<p>no sweep {_esc(wanted)} known</p>")
        return _page(f"sweep {wanted}", "".join(parts))

    def page_bench(self, query: Dict[str, str]) -> bytes:
        del query
        if self.bench_dir is None or not self.bench_dir.is_dir():
            return _page("bench", "<p>no bench directory configured</p>")
        rows: List[Dict[str, Any]] = []
        for path in sorted(self.bench_dir.glob("BENCH_*.json")):
            try:
                with path.open("r", encoding="utf-8") as handle:
                    report = json.load(handle)
            except (OSError, ValueError):
                continue
            for scenario in report.get("scenarios", []):
                rows.append(
                    {
                        "report": path.name,
                        "created": report.get("created"),
                        "scenario": scenario.get("name"),
                        "wall_clock_s": scenario.get("wall_clock_s"),
                    }
                )
        return _page(
            "bench trajectory",
            _html_table(rows, ["report", "created", "scenario", "wall_clock_s"]),
        )


def _raw_table(rows: Sequence[Dict[str, Any]], columns: Sequence[str]) -> str:
    """Like ``_html_table`` but cell values are pre-rendered HTML for the
    columns that carry links; plain values still get escaped."""
    if not rows:
        return "<p>(none)</p>"
    head = "".join(f"<th>{html.escape(col)}</th>" for col in columns)
    body_rows = []
    for row in rows:
        cells = []
        for col in columns:
            value = row.get(col)
            if isinstance(value, str) and value.startswith("<a "):
                cells.append(f"<td>{value}</td>")
            else:
                cells.append(f"<td>{_esc(value)}</td>")
        body_rows.append("<tr>" + "".join(cells) + "</tr>")
    return f"<table><tr>{head}</tr>{''.join(body_rows)}</table>"
