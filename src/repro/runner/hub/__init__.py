"""The Sweep Hub: a standing multi-tenant sweep service.

The distributed backend's broker (PR 5) is per-sweep and ephemeral -- one
queue, one consumer, torn down when the sweep drains.  This package makes
it a *service*:

- :class:`~repro.runner.hub.service.SweepHub` -- a persistent broker
  (hub-mode :class:`~repro.runner.distributed.broker.Broker`) owning one
  shared worker fleet and accepting any number of concurrent sweep
  submissions over the same line-delimited-JSON TCP port the workers use,
  with priorities and fair-share dispatch across sweeps.
- :class:`~repro.runner.hub.client.HubSubmission` /
  :func:`~repro.runner.hub.client.query_hub_status` -- the client side;
  ``DistributedBackend(connect=...)`` (and ``--connect`` on every runner
  CLI) rides it, so ``sweep``, ``scenario run``, and ``bench`` can submit
  to a standing hub instead of spawning a private broker.
- :class:`~repro.runner.hub.resultsdb.ResultsDB` -- run-history queries
  (``runs list/show/diff``, ``sweeps``) over the artifact files and sweep
  journals, which stay the source of truth.
- :class:`~repro.runner.hub.dashboard.DashboardServer` -- a stdlib
  ``http.server`` HTML view of the queue, fleet, run history, and bench
  trajectory.
- :class:`~repro.runner.hub.state.HubJournal` /
  :class:`~repro.runner.hub.supervisor.HubSupervisor` -- the
  high-availability layer: crash-safe hub-side submission journaling with
  restart re-adoption (``hub serve --state DIR``), and the supervision
  loop that watches queue depth / fleet liveness, emits scale signals,
  and optionally autoscales a loopback worker pool
  (``hub serve --autoscale MIN:MAX``).

Entry points: ``repro hub serve`` (daemon), ``repro hub status``,
``repro hub dash``, plus ``--connect HOST:PORT`` on the runner commands.
See RUNNER.md's "Sweep Hub" section for the protocol and a quickstart.
"""

from repro.runner.hub.client import HubSubmission, query_hub_status, submit_to_hub
from repro.runner.hub.dashboard import DashboardServer
from repro.runner.hub.resultsdb import ResultsDB
from repro.runner.hub.service import SweepHub
from repro.runner.hub.state import HubJournal
from repro.runner.hub.supervisor import HubSupervisor

__all__ = [
    "DashboardServer",
    "HubJournal",
    "HubSubmission",
    "HubSupervisor",
    "ResultsDB",
    "SweepHub",
    "query_hub_status",
    "submit_to_hub",
]
