"""Client side of the Sweep Hub protocol: self-healing submissions.

A submission speaks one TCP connection at a time: send a ``submit``
message (the same ``{"id", "task", "params", "module"}`` task documents
workers lease), receive an ``accepted`` acknowledgement, then consume
streamed ``result`` messages until ``sweep-done`` (or ``sweep-failed``).
The stream yields the familiar backend triple ``(index, result, meta)``
-- ``meta is None`` marking a hub-side cache hit -- so
:class:`~repro.runner.distributed.backend.DistributedBackend` in
``--connect`` mode plugs it straight into the runner's aggregation loop,
byte-identical to every other backend.

Two liveness mechanisms make the submission survive the hub:

- **Read timeout + heartbeats.**  ``accepted`` advertises the hub's
  heartbeat cadence and the socket keeps a read timeout of a few
  heartbeat intervals, so a hub that hangs *without* closing the
  connection is detected instead of blocking the client forever.
- **Reconnect + idempotent resubmission.**  Any retryable stream loss
  (connection refused, reset, EOF mid-sweep, stalled heartbeats, a
  ``busy`` admission rejection) backs off with a seedable
  :class:`~repro.runner.faults.Backoff` and resubmits the identical task
  list.  The hub dedupes submissions by content-hash identity and
  re-attaches the stream to the live (or journal-adopted) queue,
  replaying completed results; the client drops indices it already
  delivered, so consumers see every result exactly once -- a hub SIGKILL
  mid-sweep costs a pause, not a ``--resume``.

``sweep-failed`` and submission rejection are **fatal**: the hub is
telling us the sweep itself is bad (retries exhausted, malformed tasks),
and retrying would fail identically.
"""

from __future__ import annotations

import socket
import sys
import time
from typing import Any, Dict, Iterator, Optional, Sequence, Set, Tuple

from repro.runner.backends import CompletedItem, WorkItem
from repro.runner.distributed.broker import BrokerError
from repro.runner.distributed.protocol import (
    PROTOCOL_VERSION,
    read_message,
    reader_for,
    send_message,
)
from repro.runner.faults import Backoff

__all__ = ["HubSubmission", "submit_to_hub", "query_hub_status"]

#: Read-timeout multiple of the hub's advertised heartbeat interval: a
#: stream with no result *and* no heartbeat for this many intervals is a
#: hung (or dead-without-FIN) hub, not a slow sweep.
HEARTBEAT_TIMEOUT_FACTOR = 4.0


class _HubUnavailable(Exception):
    """A retryable loss of the hub (refused, reset, EOF, stalled, busy)."""

    def __init__(self, detail: str, *, retry_after_s: Optional[float] = None):
        super().__init__(detail)
        self.retry_after_s = retry_after_s


class HubSubmission:
    """One sweep submitted to a standing hub; iterate for its results.

    Parameters
    ----------
    address:
        The hub's ``(host, port)``.
    items:
        Work items ``(index, task, params, module)``; indices are the
        submitting client's own and come back unchanged on each result.
    name / priority / force:
        Submission metadata: ``name`` labels the sweep in ``hub status``
        and the dashboard, ``priority`` ranks it for fair-share dispatch
        (higher preempts at the next lease grant), ``force`` disables the
        hub-side artifact-cache dedupe for this sweep.
    connect_timeout_s:
        Timeout for establishing the connection and the submit handshake;
        once accepted the read timeout follows the hub's heartbeat cadence
        (sweeps legitimately take arbitrarily long, heartbeats must not).
    reconnect_attempts:
        Consecutive failed reconnect attempts tolerated before giving up
        with :class:`BrokerError`.  A successful resubmission resets the
        streak, so a hub that keeps crashing-and-restarting is ridden out
        indefinitely; only a hub that stays *down* exhausts the budget.
        ``0`` restores the historical fail-fast behaviour.
    backoff:
        The reconnect :class:`~repro.runner.faults.Backoff`; pass a seeded
        one for deterministic tests.  Defaults to the worker daemons'
        schedule (0.5s base, 15s cap, 25% jitter).
    quiet:
        Suppress the per-reconnect stderr notices.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        items: Sequence[WorkItem],
        *,
        name: str = "",
        priority: int = 0,
        force: bool = False,
        connect_timeout_s: float = 10.0,
        reconnect_attempts: int = 8,
        backoff: Optional[Backoff] = None,
        quiet: bool = False,
    ) -> None:
        if reconnect_attempts < 0:
            raise ValueError(
                f"reconnect_attempts must be >= 0, got {reconnect_attempts}"
            )
        self.address = address
        self.items = list(items)
        self.name = name
        self.priority = priority
        self.force = force
        self.connect_timeout_s = connect_timeout_s
        self.reconnect_attempts = reconnect_attempts
        self.quiet = quiet
        self._backoff = backoff if backoff is not None else Backoff()
        #: The hub's key for this sweep (set once ``accepted`` arrives).
        self.sweep_id: Optional[str] = None
        #: The hub's per-sweep counters from ``sweep-done``.
        self.stats: Dict[str, Any] = {}
        #: Times the stream was lost and re-established.
        self.reconnects = 0
        #: Whether the last accepted submission re-attached to a live queue.
        self.reattached = False
        #: Indices already yielded (dedupes the hub's replay on re-attach).
        self._delivered: Set[Any] = set()

    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[CompletedItem]:
        self._delivered.clear()
        self._backoff.reset()
        while True:
            try:
                for item in self._attempt():
                    yield item
                return
            except _HubUnavailable as exc:
                if self._backoff.attempts >= self.reconnect_attempts:
                    raise BrokerError(
                        f"hub at {self.address[0]}:{self.address[1]} unavailable "
                        f"after {self._backoff.attempts + 1} attempt(s): {exc} "
                        f"({len(self._delivered)}/{len(self.items)} results "
                        "delivered; artifacts for finished tasks are persisted "
                        "-- re-run, or re-run with --resume, once the hub is "
                        "back)"
                    ) from exc
                delay = self._backoff.next_delay()
                if exc.retry_after_s is not None:
                    delay = max(delay, float(exc.retry_after_s))
                self.reconnects += 1
                if not self.quiet:
                    sys.stderr.write(
                        f"[hub-client] {exc}; retrying in {delay:.1f}s "
                        f"(attempt {self._backoff.attempts})\n"
                    )
                time.sleep(delay)

    # ------------------------------------------------------------------ #
    def _attempt(self) -> Iterator[CompletedItem]:
        """One connect + submit + stream pass.

        Raises :class:`_HubUnavailable` for everything a reconnect can
        heal and :class:`BrokerError` for sweep-fatal conditions.
        """
        try:
            sock = socket.create_connection(
                self.address, timeout=self.connect_timeout_s
            )
        except OSError as exc:
            raise _HubUnavailable(
                f"cannot reach hub at {self.address[0]}:{self.address[1]}: {exc}"
            ) from exc
        # Loopback self-connect guard: retrying against a dead hub on an
        # ephemeral-range port can land source port == destination port
        # (TCP simultaneous open) -- a socket connected to itself, which
        # would both hang the handshake and squat the port against the
        # hub's restart bind.
        try:
            self_connected = sock.getsockname() == sock.getpeername()
        except OSError:
            self_connected = True
        if self_connected:
            try:
                sock.close()
            except OSError:
                pass
            raise _HubUnavailable(
                f"hub at {self.address[0]}:{self.address[1]} is down "
                "(self-connected)"
            )
        try:
            # The connect timeout also covers the submit handshake; the
            # steady-state read timeout is set from the hub's advertised
            # heartbeat cadence once accepted.
            sock.settimeout(self.connect_timeout_s)
            try:
                send_message(
                    sock,
                    {
                        "type": "submit",
                        "protocol": PROTOCOL_VERSION,
                        "name": self.name,
                        "priority": self.priority,
                        "force": self.force,
                        "tasks": [
                            {
                                "id": index,
                                "task": task,
                                "params": params,
                                "module": module,
                            }
                            for index, task, params, module in self.items
                        ],
                    },
                )
                reader = reader_for(sock)
                ack = read_message(reader)
            except socket.timeout as exc:
                raise _HubUnavailable(
                    f"hub handshake timed out after {self.connect_timeout_s:.1f}s"
                ) from exc
            except (OSError, ValueError) as exc:
                raise _HubUnavailable(f"hub handshake failed: {exc}") from exc
            if ack is None:
                raise _HubUnavailable("hub closed the connection during submit")
            if ack.get("type") == "busy":
                raise _HubUnavailable(
                    str(ack.get("error", "hub at capacity")),
                    retry_after_s=ack.get("retry_after_s"),
                )
            if ack.get("type") != "accepted":
                detail = ack.get("error") or f"unexpected reply {ack.get('type')!r}"
                raise BrokerError(f"hub rejected submission: {detail}")
            self.sweep_id = ack.get("sweep")
            self.reattached = bool(ack.get("reattached", False))
            total = int(ack.get("total", len(self.items)))
            heartbeat_s = float(ack.get("heartbeat_s") or 2.0)
            sock.settimeout(max(1.0, HEARTBEAT_TIMEOUT_FACTOR * heartbeat_s))
            # Handshake-gated reset (same pattern as the worker daemon):
            # each successful resubmission buys a fresh give-up budget, so
            # only a hub that stays down exhausts it.
            self._backoff.reset()
            delivered = len(self._delivered)
            while True:
                try:
                    message = read_message(reader)
                except socket.timeout as exc:
                    raise _HubUnavailable(
                        "hub stream stalled (no result or heartbeat in "
                        f"{HEARTBEAT_TIMEOUT_FACTOR * heartbeat_s:.1f}s)"
                    ) from exc
                except (OSError, ValueError) as exc:
                    raise _HubUnavailable(f"hub stream lost: {exc}") from exc
                if message is None:
                    raise _HubUnavailable(
                        f"hub connection lost mid-sweep ({delivered}/{total} "
                        "results delivered)"
                    )
                kind = message.get("type")
                if kind == "hub-heartbeat":
                    continue
                if kind == "result":
                    index = message.get("id")
                    if index in self._delivered:
                        continue  # replayed on re-attach; already consumed
                    self._delivered.add(index)
                    delivered += 1
                    meta = message.get("meta")
                    yield (
                        index,
                        message.get("result"),
                        meta if isinstance(meta, dict) else None,
                    )
                elif kind == "sweep-done":
                    stats = message.get("stats")
                    self.stats = stats if isinstance(stats, dict) else {}
                    return
                elif kind == "sweep-failed":
                    raise BrokerError(str(message.get("error", "sweep failed")))
                else:
                    raise BrokerError(f"unexpected hub message type {kind!r}")
        finally:
            try:
                sock.close()
            except OSError:
                pass


def submit_to_hub(
    address: Tuple[str, int],
    items: Sequence[WorkItem],
    **kwargs: Any,
) -> HubSubmission:
    """Convenience constructor mirroring the backend's call shape."""
    return HubSubmission(address, items, **kwargs)


def query_hub_status(
    address: Tuple[str, int], *, timeout_s: float = 10.0
) -> Dict[str, Any]:
    """One-shot ``status`` request; returns the hub's live snapshot."""
    try:
        sock = socket.create_connection(address, timeout=timeout_s)
    except OSError as exc:
        raise BrokerError(
            f"cannot reach hub at {address[0]}:{address[1]}: {exc}"
        ) from exc
    try:
        send_message(sock, {"type": "status", "protocol": PROTOCOL_VERSION})
        reply = read_message(reader_for(sock))
        if reply is None or reply.get("type") != "status":
            detail = (reply or {}).get("error", "connection closed")
            raise BrokerError(f"hub status request failed: {detail}")
        reply.pop("type", None)
        return reply
    finally:
        try:
            sock.close()
        except OSError:
            pass
