"""Client side of the Sweep Hub protocol.

A submission is one TCP connection for its whole lifetime: send a
``submit`` message (the same ``{"id", "task", "params", "module"}`` task
documents workers lease), receive an ``accepted`` acknowledgement, then
consume streamed ``result`` messages until ``sweep-done`` (or
``sweep-failed``).  The stream yields the familiar backend triple
``(index, result, meta)`` -- ``meta is None`` marking a hub-side cache
hit -- so :class:`~repro.runner.distributed.backend.DistributedBackend`
in ``--connect`` mode plugs it straight into the runner's aggregation
loop, byte-identical to every other backend.

Keeping the connection open for the sweep's lifetime doubles as liveness:
a killed client drops the socket, and the hub notices (it keeps executing
-- artifacts persist, so a ``--resume`` rerun is instantly cheap -- but
stops writing to the dead pipe).
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

from repro.runner.backends import CompletedItem, WorkItem
from repro.runner.distributed.broker import BrokerError
from repro.runner.distributed.protocol import (
    PROTOCOL_VERSION,
    read_message,
    reader_for,
    send_message,
)

__all__ = ["HubSubmission", "submit_to_hub", "query_hub_status"]


class HubSubmission:
    """One sweep submitted to a standing hub; iterate for its results.

    Parameters
    ----------
    address:
        The hub's ``(host, port)``.
    items:
        Work items ``(index, task, params, module)``; indices are the
        submitting client's own and come back unchanged on each result.
    name / priority / force:
        Submission metadata: ``name`` labels the sweep in ``hub status``
        and the dashboard, ``priority`` ranks it for fair-share dispatch
        (higher preempts at the next lease grant), ``force`` disables the
        hub-side artifact-cache dedupe for this sweep.
    connect_timeout_s:
        Timeout for establishing the connection only; once accepted the
        socket blocks indefinitely (sweeps legitimately take arbitrarily
        long).
    """

    def __init__(
        self,
        address: Tuple[str, int],
        items: Sequence[WorkItem],
        *,
        name: str = "",
        priority: int = 0,
        force: bool = False,
        connect_timeout_s: float = 10.0,
    ) -> None:
        self.address = address
        self.items = list(items)
        self.name = name
        self.priority = priority
        self.force = force
        self.connect_timeout_s = connect_timeout_s
        #: The hub's key for this sweep (set once ``accepted`` arrives).
        self.sweep_id: Optional[str] = None
        #: The hub's per-sweep counters from ``sweep-done``.
        self.stats: Dict[str, Any] = {}

    def __iter__(self) -> Iterator[CompletedItem]:
        try:
            sock = socket.create_connection(self.address, timeout=self.connect_timeout_s)
        except OSError as exc:
            raise BrokerError(
                f"cannot reach hub at {self.address[0]}:{self.address[1]}: {exc}"
            ) from exc
        try:
            sock.settimeout(None)
            send_message(
                sock,
                {
                    "type": "submit",
                    "protocol": PROTOCOL_VERSION,
                    "name": self.name,
                    "priority": self.priority,
                    "force": self.force,
                    "tasks": [
                        {
                            "id": index,
                            "task": task,
                            "params": params,
                            "module": module,
                        }
                        for index, task, params, module in self.items
                    ],
                },
            )
            reader = reader_for(sock)
            ack = read_message(reader)
            if ack is None or ack.get("type") != "accepted":
                detail = (ack or {}).get("error", "connection closed")
                raise BrokerError(f"hub rejected submission: {detail}")
            self.sweep_id = ack.get("sweep")
            delivered = 0
            total = int(ack.get("total", len(self.items)))
            while True:
                message = read_message(reader)
                if message is None:
                    raise BrokerError(
                        f"hub connection lost mid-sweep ({delivered}/{total} "
                        "results delivered); artifacts for finished tasks are "
                        "persisted -- re-run with --resume"
                    )
                kind = message.get("type")
                if kind == "result":
                    meta = message.get("meta")
                    yield (
                        message.get("id"),
                        message.get("result"),
                        meta if isinstance(meta, dict) else None,
                    )
                    delivered += 1
                elif kind == "sweep-done":
                    stats = message.get("stats")
                    self.stats = stats if isinstance(stats, dict) else {}
                    return
                elif kind == "sweep-failed":
                    raise BrokerError(str(message.get("error", "sweep failed")))
                else:
                    raise BrokerError(f"unexpected hub message type {kind!r}")
        finally:
            try:
                sock.close()
            except OSError:
                pass


def submit_to_hub(
    address: Tuple[str, int],
    items: Sequence[WorkItem],
    **kwargs: Any,
) -> HubSubmission:
    """Convenience constructor mirroring the backend's call shape."""
    return HubSubmission(address, items, **kwargs)


def query_hub_status(
    address: Tuple[str, int], *, timeout_s: float = 10.0
) -> Dict[str, Any]:
    """One-shot ``status`` request; returns the hub's live snapshot."""
    try:
        sock = socket.create_connection(address, timeout=timeout_s)
    except OSError as exc:
        raise BrokerError(
            f"cannot reach hub at {address[0]}:{address[1]}: {exc}"
        ) from exc
    try:
        send_message(sock, {"type": "status", "protocol": PROTOCOL_VERSION})
        reply = read_message(reader_for(sock))
        if reply is None or reply.get("type") != "status":
            detail = (reply or {}).get("error", "connection closed")
            raise BrokerError(f"hub status request failed: {detail}")
        reply.pop("type", None)
        return reply
    finally:
        try:
            sock.close()
        except OSError:
            pass
