"""The Sweep Hub service: a standing multi-tenant broker.

:class:`SweepHub` subclasses the refactored
:class:`~repro.runner.distributed.broker.Broker` in hub mode (no primary
sweep): the lease/retry/heartbeat/fault machinery, fair-share dispatch,
and dedupe-at-dispatch all come from the broker core.  What the hub adds
is the *client* side of the same port: connections whose first message is
``submit`` or ``status`` instead of a worker ``hello`` are handled here
(see :meth:`SweepHub._serve_client`), so one address serves the worker
fleet, sweep submissions, and status queries alike.

High-availability design (the hub surviving its own death, clients
surviving the hub's):

- **Identity dedupe.**  Every submission is keyed by its content-hash
  identity (:func:`~repro.runner.journal.sweep_identity` over the ordered
  task list).  Resubmitting an identity whose sweep is still registered
  re-attaches the stream to the live queue -- completed results replay,
  the rest arrive live -- instead of duplicating work.  That makes client
  reconnect idempotent by construction.
- **Hub journal.**  With ``state_dir`` set, a crash-safe
  :class:`~repro.runner.hub.state.HubJournal` records every accepted
  submission and its done indices (temp-file + ``os.replace``, same
  discipline as the client-side ``SweepJournal``).  On restart,
  :meth:`adopt_journaled` re-registers every interrupted sweep and
  prefills it from the artifact store, so only tasks with no artifact
  behind them are re-queued for the fleet.  The journal is advisory: the
  artifact store stays the source of truth.
- **Stream liveness.**  The submission stream carries ``hub-heartbeat``
  messages whenever no result is ready, and ``accepted`` advertises the
  cadence, so clients keep a read timeout and detect a hung hub instead
  of blocking forever.
- **Admission control.**  With ``max_pending`` set, a submission that
  would push the hub-wide outstanding-task load past the bound is
  rejected with a structured ``busy`` + ``retry_after_s`` reply; clients
  back off and retry.  Re-attaching an existing identity adds no tasks
  and always passes.
- **Chaos sites.**  The ``crash-hub`` / ``hang-hub`` injector sites fire
  on the client result stream: a hang stalls the stream without closing
  it (exactly what the heartbeat timeout exists for), a crash calls
  :meth:`~repro.runner.distributed.broker.Broker.crash` -- abrupt death,
  no sweep teardown, recovery via journal re-adoption.

A client that dies mid-sweep stops receiving results, but its sweep keeps
executing: completions are retained on the queue's replay history (bounded
by the sweep size and history eviction), so the client's reconnect --
or a later resubmission of the same identity -- picks them up without
re-execution.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, List, Optional, Union

from repro.runner.backends import WorkItem
from repro.runner.config import SweepConfig
from repro.runner.distributed.broker import (
    _FAILED,
    Broker,
    BrokerError,
    SweepQueue,
)
from repro.runner.distributed.protocol import (
    PROTOCOL_VERSION,
    send_message,
)
from repro.runner.hub.state import HubJournal
from repro.runner.journal import sweep_identity

__all__ = ["SweepHub"]

import queue as _queue_mod


def _identity_of(items: List[WorkItem]) -> str:
    """The submission's content-hash identity (order-sensitive, like the
    client-side sweep journal's)."""
    return sweep_identity(
        [SweepConfig(task, params) for _index, task, params, _module in items]
    )


class SweepHub(Broker):
    """A persistent multi-sweep broker accepting TCP submissions.

    Construct like a :class:`Broker` but without ``items`` (the hub has no
    primary sweep); ``store`` is the shared artifact root every submission
    dedupes against and persists into.  ``start()`` / ``stop()`` and the
    worker protocol are inherited unchanged.

    Hub-specific parameters
    -----------------------
    state_dir:
        Directory for the crash-safe :class:`HubJournal`.  ``None``
        disables hub-side journaling (and restart re-adoption).
    max_pending:
        Hub-wide outstanding-task capacity; a submission that would
        exceed it gets a ``busy`` reply with ``retry_after_s``.  ``None``
        disables admission control.
    client_heartbeat_s:
        Cadence of ``hub-heartbeat`` messages on idle submission streams
        (also advertised to clients in ``accepted`` so their read timeout
        tracks it).
    admission_retry_s:
        The ``retry_after_s`` value sent with ``busy`` rejections.
    """

    def __init__(
        self,
        *,
        state_dir: Optional[Union[str, Any]] = None,
        max_pending: Optional[int] = None,
        client_heartbeat_s: float = 2.0,
        admission_retry_s: float = 1.0,
        **kwargs: Any,
    ) -> None:
        if "items" in kwargs:
            raise TypeError("SweepHub takes no items; sweeps arrive via submit")
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if client_heartbeat_s <= 0:
            raise ValueError(
                f"client_heartbeat_s must be > 0, got {client_heartbeat_s}"
            )
        super().__init__(None, **kwargs)
        self.journal: Optional[HubJournal] = (
            HubJournal(state_dir) if state_dir is not None else None
        )
        self.max_pending = max_pending
        self.client_heartbeat_s = client_heartbeat_s
        self.admission_retry_s = admission_retry_s
        #: Live sweeps by content-hash identity (mutated under the broker
        #: lock; identity reattach and admission share one atomic check).
        self._identities: Dict[str, SweepQueue] = {}
        self._stopping = False
        self.stats.setdefault("rejected_busy", 0)
        self.stats.setdefault("reattached", 0)
        self.stats.setdefault("adopted", 0)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def stop(self) -> None:
        """Graceful stop.  Interrupted sweeps are failed broker-side (so
        in-process consumers unblock) but NOT marked failed in the hub
        journal: a gracefully stopped hub's sweeps stay ``incomplete`` on
        disk and re-adopt on the next ``hub serve --state``."""
        self._stopping = True
        super().stop()

    def adopt_journaled(self) -> List[Dict[str, Any]]:
        """Re-register every interrupted sweep from the state directory.

        For each journaled-but-incomplete submission: re-record it (the
        done list restarts empty; ``adopted`` increments), re-queue its
        tasks, then prefill from the artifact store so tasks that already
        have an artifact behind them complete as cache hits and only the
        rest go to the fleet.  Clients that resubmit the same identity
        re-attach to the adopted queue.  Returns one summary dict per
        adopted sweep.
        """
        if self.journal is None:
            return []
        adopted: List[Dict[str, Any]] = []
        for doc in self.journal.incomplete():
            identity = str(doc["identity"])
            try:
                items: List[WorkItem] = [
                    (
                        task["index"],
                        task["task"],
                        dict(task.get("params") or {}),
                        task.get("module"),
                    )
                    for task in doc["tasks"]
                ]
            except (KeyError, TypeError):
                continue  # malformed task record: leave the file, skip
            name = str(doc.get("name") or "")
            priority = int(doc.get("priority") or 0)
            force = bool(doc.get("force", False))
            self.journal.record(
                identity, items, name=name, priority=priority, force=force,
                adopted=True,
            )
            with self._lock:
                if identity in self._identities:
                    continue
                sweep = self._submit_locked(
                    items,
                    name=name,
                    priority=priority,
                    force=force,
                    identity=identity,
                )
                self._identities[identity] = sweep
                self.stats["adopted"] += 1
                self._event_locked(
                    "sweep-adopted",
                    sweep=sweep.key,
                    identity=identity,
                    tasks=sweep.total,
                )
            cached = self.prefill_from_store(sweep)
            adopted.append(
                {
                    "identity": identity,
                    "sweep": sweep.key,
                    "name": sweep.name,
                    "total": sweep.total,
                    "cached": cached,
                }
            )
        return adopted

    # ------------------------------------------------------------------ #
    # Journal hooks (called by the broker core)
    # ------------------------------------------------------------------ #
    def _task_completed(self, state: Any, *, cached: bool) -> None:
        if self.journal is None:
            return
        sweep = state.sweep
        if sweep.identity is None:
            return
        self.journal.mark_done(sweep.identity, state.index, cached=cached)
        if sweep.outstanding == 0 and sweep.failure is None:
            self.journal.mark_complete(sweep.identity)

    def _sweep_failed_locked(self, sweep: SweepQueue) -> None:
        # A gracefully stopping hub fails live sweeps broker-side only;
        # on disk they stay incomplete for re-adoption.
        if self.journal is None or sweep.identity is None or self._stopping:
            return
        self.journal.mark_failed(sweep.identity, str(sweep.failure))

    def _sweep_evicted_locked(self, sweep: SweepQueue) -> None:
        if sweep.identity is not None:
            if self._identities.get(sweep.identity) is sweep:
                del self._identities[sweep.identity]

    # ------------------------------------------------------------------ #
    # Client protocol
    # ------------------------------------------------------------------ #
    def _serve_client(
        self, conn: socket.socket, reader: Any, message: Dict[str, Any]
    ) -> None:
        kind = message.get("type")
        if kind == "status":
            reply = dict(self.snapshot())
            reply["type"] = "status"
            self._safe_send(conn, reply)
            return
        if kind != "submit":
            self._safe_send(
                conn,
                {"type": "goodbye", "error": f"unknown client request {kind!r}"},
            )
            return
        if message.get("protocol") != PROTOCOL_VERSION:
            self._safe_send(
                conn,
                {
                    "type": "goodbye",
                    "error": f"expected submit with protocol {PROTOCOL_VERSION}",
                },
            )
            return
        try:
            items: List[WorkItem] = [
                (
                    task["id"],
                    task["task"],
                    dict(task.get("params") or {}),
                    task.get("module"),
                )
                for task in message.get("tasks") or ()
            ]
            seen = set()
            for item in items:
                if item[0] in seen:
                    raise ValueError(f"duplicate work item index {item[0]}")
                seen.add(item[0])
            identity = _identity_of(items)
            name = str(message.get("name") or "")
            priority = int(message.get("priority") or 0)
            force = bool(message.get("force", False))
            busy_reply: Optional[Dict[str, Any]] = None
            reattached = False
            with self._lock:
                existing = self._identities.get(identity)
                if existing is not None and existing.failure is None:
                    # Idempotent resubmission: re-attach to the live (or
                    # adopted) queue instead of duplicating the work.
                    sweep = existing
                    reattached = True
                    self.stats["reattached"] += 1
                    self._event_locked(
                        "client-reattach", sweep=sweep.key, identity=identity
                    )
                else:
                    if self.max_pending is not None:
                        load = sum(
                            q.outstanding
                            for q in self._queues.values()
                            if q.failure is None
                        )
                        if load + len(items) > self.max_pending:
                            self.stats["rejected_busy"] += 1
                            self._event_locked(
                                "submit-rejected-busy",
                                identity=identity,
                                tasks=len(items),
                                load=load,
                                capacity=self.max_pending,
                            )
                            busy_reply = {
                                "type": "busy",
                                "error": (
                                    f"hub at capacity ({load} pending tasks, "
                                    f"limit {self.max_pending})"
                                ),
                                "retry_after_s": self.admission_retry_s,
                            }
                    if busy_reply is None:
                        sweep = self._submit_locked(
                            items,
                            name=name,
                            priority=priority,
                            force=force,
                            identity=identity,
                        )
                        self._identities[identity] = sweep
        except (BrokerError, KeyError, TypeError, ValueError) as exc:
            self._safe_send(
                conn, {"type": "goodbye", "error": f"bad submission: {exc}"}
            )
            return
        if busy_reply is not None:
            self._safe_send(conn, busy_reply)
            return
        if not reattached and self.journal is not None:
            self.journal.record(
                identity, items, name=name, priority=priority, force=force
            )
        self._safe_send(
            conn,
            {
                "type": "accepted",
                "sweep": sweep.key,
                "total": sweep.total,
                "identity": identity,
                "reattached": reattached,
                "heartbeat_s": self.client_heartbeat_s,
            },
        )
        self._stream_results(conn, sweep)

    def _stream_results(self, conn: socket.socket, sweep: SweepQueue) -> None:
        """Stream completions (replay + live) with idle heartbeats.

        A re-attaching client replays every completion so far -- it
        dedupes by index -- then rides the live stream.  ``hub-heartbeat``
        goes out whenever a heartbeat interval passes without a result, so
        a client with a read timeout can tell "slow sweep" from "hung or
        dead hub".  A dead client just ends this handler; the sweep keeps
        executing and its completions stay on the replay history.
        """
        listener, replay = sweep.attach_listener()
        try:
            delivered = 0
            for item in replay:
                if not self._send_result(conn, sweep, item):
                    return
                delivered += 1
            while delivered < sweep.total:
                try:
                    item = listener.get(timeout=self.client_heartbeat_s)
                except _queue_mod.Empty:
                    if self._stop.is_set():
                        return
                    if not self._safe_send(conn, {"type": "hub-heartbeat"}):
                        return
                    continue
                if item is _FAILED:
                    self._safe_send(
                        conn,
                        {
                            "type": "sweep-failed",
                            "sweep": sweep.key,
                            "error": str(sweep.failure),
                        },
                    )
                    return
                if not self._send_result(conn, sweep, item):
                    return
                delivered += 1
            stats: Dict[str, Any] = dict(sweep.counters())
            stats["events_dropped"] = self.events_dropped
            self._safe_send(
                conn, {"type": "sweep-done", "sweep": sweep.key, "stats": stats}
            )
        finally:
            sweep.detach_listener(listener)

    def _send_result(self, conn: socket.socket, sweep: SweepQueue, item: Any) -> bool:
        """Send one result, consulting the hub chaos sites first."""
        if self.injector is not None:
            hang = self.injector.hang_hub()
            if hang is not None:
                # A hub that stalls without closing anything: heartbeats
                # stop flowing on this stream, which is exactly what the
                # client read timeout exists to catch.
                self._event("fault-hang-hub", sweep=sweep.key)
                time.sleep(hang)
            if self.injector.crash_hub():
                self._event("fault-crash-hub", sweep=sweep.key)
                self.crash()
                return False
        index, result, meta = item
        return self._safe_send(
            conn, {"type": "result", "id": index, "result": result, "meta": meta}
        )

    def _safe_send(self, conn: socket.socket, message: Dict[str, Any]) -> bool:
        """Send to a client, tolerating its death; True while writable.

        Client sends bypass the fault injector's *wire* sites: those
        target the worker wire, and injected faults on the submission
        stream would just kill the (local, same-process-group) client
        connection.  The hub-level chaos sites (``crash-hub`` /
        ``hang-hub``) are consulted in :meth:`_send_result` instead.
        """
        try:
            send_message(conn, message)
            return True
        except OSError:
            return False
