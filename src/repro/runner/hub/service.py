"""The Sweep Hub service: a standing multi-tenant broker.

:class:`SweepHub` subclasses the refactored
:class:`~repro.runner.distributed.broker.Broker` in hub mode (no primary
sweep): the lease/retry/heartbeat/fault machinery, fair-share dispatch,
and dedupe-at-dispatch all come from the broker core.  What the hub adds
is the *client* side of the same port: connections whose first message is
``submit`` or ``status`` instead of a worker ``hello`` are handled here
(see :meth:`SweepHub._serve_client`), so one address serves the worker
fleet, sweep submissions, and status queries alike.

Design notes:

- The hub does **not** journal sweeps.  Journaling stays client-side (the
  submitting :class:`~repro.runner.sweep.SweepRunner` writes the journal
  at the shared artifact root, exactly as with every other backend), so a
  killed client resumes with ``--resume`` against the artifacts the hub
  persisted on its behalf -- no second source of truth to reconcile.
- A client that dies mid-sweep stops receiving results, but its sweep
  keeps executing: the artifacts land in the store, and the resume run
  dedupes against them at dispatch time.
- One thread per client connection (the submission stream consumes its
  ``SweepQueue.results()`` inline), matching the broker's one thread per
  worker connection; the shared state stays behind the broker lock.
"""

from __future__ import annotations

import socket
from typing import Any, Dict

from repro.runner.backends import WorkItem
from repro.runner.distributed.broker import Broker, BrokerError
from repro.runner.distributed.protocol import (
    PROTOCOL_VERSION,
    send_message,
)

__all__ = ["SweepHub"]


class SweepHub(Broker):
    """A persistent multi-sweep broker accepting TCP submissions.

    Construct like a :class:`Broker` but without ``items`` (the hub has no
    primary sweep); ``store`` is the shared artifact root every submission
    dedupes against and persists into.  ``start()`` / ``stop()`` and the
    worker protocol are inherited unchanged.
    """

    def __init__(self, **kwargs: Any) -> None:
        if "items" in kwargs:
            raise TypeError("SweepHub takes no items; sweeps arrive via submit")
        super().__init__(None, **kwargs)

    # ------------------------------------------------------------------ #
    def _serve_client(
        self, conn: socket.socket, reader: Any, message: Dict[str, Any]
    ) -> None:
        kind = message.get("type")
        if kind == "status":
            reply = dict(self.snapshot())
            reply["type"] = "status"
            self._safe_send(conn, reply)
            return
        if kind != "submit":
            self._safe_send(
                conn,
                {"type": "goodbye", "error": f"unknown client request {kind!r}"},
            )
            return
        if message.get("protocol") != PROTOCOL_VERSION:
            self._safe_send(
                conn,
                {
                    "type": "goodbye",
                    "error": f"expected submit with protocol {PROTOCOL_VERSION}",
                },
            )
            return
        try:
            items = [
                (
                    task["id"],
                    task["task"],
                    dict(task.get("params") or {}),
                    task.get("module"),
                )
                for task in message.get("tasks") or ()
            ]
            sweep = self.submit(
                items,
                name=str(message.get("name") or ""),
                priority=int(message.get("priority") or 0),
                force=bool(message.get("force", False)),
            )
        except (BrokerError, KeyError, TypeError, ValueError) as exc:
            self._safe_send(
                conn, {"type": "goodbye", "error": f"bad submission: {exc}"}
            )
            return
        self._safe_send(
            conn, {"type": "accepted", "sweep": sweep.key, "total": sweep.total}
        )
        # Stream completions back for the sweep's lifetime.  If the client
        # dies we keep draining the queue anyway: the work is already
        # persisting artifacts, and an unconsumed SweepQueue would pin its
        # completion buffer forever.
        client_alive = True
        try:
            for index, result, meta in sweep.results():
                if not client_alive:
                    continue
                client_alive = self._safe_send(
                    conn,
                    {"type": "result", "id": index, "result": result, "meta": meta},
                )
            stats: Dict[str, Any] = dict(sweep.counters())
            stats["events_dropped"] = self.events_dropped
            if client_alive:
                self._safe_send(
                    conn, {"type": "sweep-done", "sweep": sweep.key, "stats": stats}
                )
        except BrokerError as exc:
            if client_alive:
                self._safe_send(
                    conn,
                    {"type": "sweep-failed", "sweep": sweep.key, "error": str(exc)},
                )

    def _safe_send(self, conn: socket.socket, message: Dict[str, Any]) -> bool:
        """Send to a client, tolerating its death; True while writable.

        Client sends bypass the fault injector: chaos scenarios target the
        worker wire, and injected faults on the submission stream would
        just kill the (local, same-process-group) client connection.
        """
        try:
            send_message(conn, message)
            return True
        except OSError:
            return False
