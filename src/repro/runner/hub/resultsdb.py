"""A queryable results database over artifacts and sweep journals.

``ResultsDB`` is deliberately *not* a new store: the content-addressed
artifact files (:class:`~repro.runner.artifacts.ArtifactStore`) remain the
single source of truth for results, and the crash-safe sweep journals
(:class:`~repro.runner.journal.SweepJournal`) remain the record of sweep
runs.  What this module adds is the read side: an index built on demand by
walking both, answering "what ran, when, under which sweep, with what
result" without any schema to migrate or lock in.  Every record is a plain
JSON-safe dict assembled from the on-disk documents at query time -- delete
the database concept and nothing is lost.

The same records feed three consumers: the ``repro runs list/show/diff``
and ``repro sweeps`` CLIs, ``repro hub status``, and the stdlib HTML
dashboard.
"""

from __future__ import annotations

import json
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Union

from repro.runner.artifacts import ArtifactStore
from repro.runner.journal import JOURNAL_VERSION

__all__ = ["ResultsDB"]

_JOURNAL_GLOB = "sweep-*.journal.json"


def _mtime_utc(path: Path) -> Optional[str]:
    try:
        stamp = path.stat().st_mtime
    except OSError:
        return None
    return datetime.fromtimestamp(stamp, timezone.utc).isoformat(timespec="seconds")


def _read_json(path: Path) -> Optional[Dict[str, Any]]:
    try:
        with path.open("r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError):
        return None
    return document if isinstance(document, dict) else None


class ResultsDB:
    """Run-history queries over one artifact root.

    Parameters
    ----------
    root:
        The artifact directory: task subdirectories of ``<key>.json``
        artifacts plus ``sweep-<id>.journal.json`` manifests at the top
        level -- exactly what every runner invocation with
        ``--artifact-dir`` (local, distributed, or hub-submitted) already
        leaves behind.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.store = ArtifactStore(self.root)
        #: Paths of unreadable/corrupt files encountered so far.  Each is
        #: warned about once on stderr (a half-written or damaged file
        #: must not wedge queries, but swallowing it silently would make
        #: a truncated listing look complete); consumers surface
        #: ``skipped_count`` in their output.
        self.skipped: Set[str] = set()

    @property
    def skipped_count(self) -> int:
        """Unreadable files skipped (or listed payload-less) so far."""
        return len(self.skipped)

    def _read_json_tracked(self, path: Path) -> Optional[Dict[str, Any]]:
        document = _read_json(path)
        if document is None:
            key = str(path)
            if key not in self.skipped:
                self.skipped.add(key)
                sys.stderr.write(
                    f"[resultsdb] warning: skipping unreadable file {path}\n"
                )
        return document

    # ------------------------------------------------------------------ #
    # Sweeps (journal-derived)
    # ------------------------------------------------------------------ #
    def sweep_records(self) -> List[Dict[str, Any]]:
        """One record per journal, newest update last (by file content)."""
        records = []
        if not self.root.is_dir():
            return records
        for path in sorted(self.root.glob(_JOURNAL_GLOB)):
            document = self._read_json_tracked(path)
            if document is None or document.get("version") != JOURNAL_VERSION:
                continue
            done = document.get("done") or []
            total = document.get("total") or 0
            complete = bool(document.get("complete"))
            error = document.get("error")
            if complete:
                status = "done"
            elif error:
                status = "error"
            else:
                status = "resumable"
            records.append(
                {
                    "sweep": document.get("sweep_id"),
                    "path": str(path),
                    "status": status,
                    "done": len(done),
                    "total": total,
                    "cached": len(document.get("cached") or []),
                    "complete": complete,
                    "resumed": document.get("resumed", 0),
                    "error": error,
                    "created": document.get("created"),
                    "updated": document.get("updated"),
                    "stats": document.get("stats"),
                    "events_dropped": document.get("events_dropped"),
                    "tasks": document.get("tasks") or [],
                }
            )
        records.sort(key=lambda record: (record["updated"] or "", record["path"]))
        return records

    def _sweeps_by_key(self) -> Dict[str, List[str]]:
        """Artifact key -> sweep ids whose journals reference it."""
        owners: Dict[str, List[str]] = {}
        for record in self.sweep_records():
            sweep_id = record["sweep"]
            for task in record["tasks"]:
                key = task.get("key")
                if key and sweep_id not in owners.setdefault(key, []):
                    owners[key].append(sweep_id)
        return owners

    # ------------------------------------------------------------------ #
    # Runs (artifact-derived)
    # ------------------------------------------------------------------ #
    def run_records(
        self,
        *,
        task: Optional[str] = None,
        sweep: Optional[str] = None,
        with_result: bool = True,
    ) -> List[Dict[str, Any]]:
        """One record per stored artifact, sorted by path.

        ``task`` restricts to one task directory; ``sweep`` to artifacts
        referenced by that sweep's journal.  ``with_result=False`` skips
        result/meta payloads for cheap listings.
        """
        owners = self._sweeps_by_key()
        records = []
        for path in self.store.stored_configs(task):
            key = path.stem
            sweeps = owners.get(key, [])
            if sweep is not None and sweep not in sweeps:
                continue
            record: Dict[str, Any] = {
                "task": path.parent.name,
                "key": key,
                "path": str(path),
                "updated": _mtime_utc(path),
                "sweeps": sweeps,
            }
            if with_result:
                # A corrupt artifact stays in the listing (the file exists
                # and its key/sweep linkage is real) but its payload fields
                # come back None; the path is warned about and counted.
                document = self._read_json_tracked(path) or {}
                config = document.get("config") or {}
                record["params"] = config.get("params")
                record["result"] = document.get("result")
                record["meta"] = document.get("meta")
            records.append(record)
        return records

    def find(self, ref: str, *, task: Optional[str] = None) -> Dict[str, Any]:
        """The unique run whose key starts with ``ref``.

        ``ref`` may also be ``task/keyprefix``.  Raises ``KeyError`` when
        the prefix matches zero or several runs.
        """
        if "/" in ref and task is None:
            task, _, ref = ref.partition("/")
        matches = [
            record
            for record in self.run_records(task=task)
            if record["key"].startswith(ref)
        ]
        if not matches:
            raise KeyError(f"no stored run matches {ref!r}")
        if len(matches) > 1:
            names = ", ".join(
                f"{record['task']}/{record['key'][:12]}" for record in matches[:6]
            )
            raise KeyError(f"run reference {ref!r} is ambiguous: {names}, ...")
        return matches[0]

    def diff(self, ref_a: str, ref_b: str) -> Dict[str, Any]:
        """Field-by-field comparison of two stored runs.

        Returns ``{"a", "b", "params", "result"}`` where ``params`` and
        ``result`` map each differing field to ``[value_a, value_b]``
        (``None`` standing in for an absent field).
        """
        record_a = self.find(ref_a)
        record_b = self.find(ref_b)
        return {
            "a": {"task": record_a["task"], "key": record_a["key"]},
            "b": {"task": record_b["task"], "key": record_b["key"]},
            "params": _field_diff(record_a.get("params"), record_b.get("params")),
            "result": _field_diff(record_a.get("result"), record_b.get("result")),
        }


def _field_diff(a: Any, b: Any) -> Dict[str, List[Any]]:
    """Differing fields of two JSON objects (whole-value when not dicts)."""
    if not isinstance(a, dict) or not isinstance(b, dict):
        return {} if a == b else {"value": [a, b]}
    out: Dict[str, List[Any]] = {}
    for field in sorted(set(a) | set(b)):
        if a.get(field) != b.get(field):
            out[field] = [a.get(field), b.get(field)]
    return out
