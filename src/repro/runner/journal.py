"""Crash-safe sweep manifests: the ``--resume`` half of chaos hardening.

A :class:`SweepJournal` is one JSON document per sweep, living at the root
of the artifact directory (``sweep-<id>.journal.json``).  It records the
sweep's identity (a content hash over the full, ordered config list --
changing any task or param yields a different sweep), the per-task keys,
and the completion state as results land, plus -- on a clean finish -- the
broker's structured event log, its stats, and the injected-fault counts.

Every update is written with the same temp-file + ``os.replace`` discipline
as :meth:`~repro.runner.artifacts.ArtifactStore.store`, so a killed broker
(or a power cut) leaves either the previous state or the new one, never a
truncated document.  The journal is *advisory*: the artifact cache remains
the source of truth for results, so ``--resume`` re-executes exactly the
configs whose artifacts are missing or corrupt, and a journal that lags a
few completions (or is lost outright) costs re-checks, never correctness.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.runner.config import SweepConfig

__all__ = ["SweepJournal", "atomic_write_json", "sweep_identity"]

JOURNAL_VERSION = 1
_PREFIX = "sweep-"
_SUFFIX = ".journal.json"


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def atomic_write_json(path: Union[str, Path], document: Dict[str, Any]) -> None:
    """Crash-safe JSON rewrite: uniquely named temp file + ``os.replace``.

    The discipline every durable manifest in this codebase follows (sweep
    journals, hub state files, artifacts): a reader observes either the
    previous document or the new one, never a truncated hybrid.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(target.parent), prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def sweep_identity(configs: Sequence[SweepConfig]) -> str:
    """Content hash of an ordered config list (the sweep's identity).

    Order matters: the journal's ``done`` entries are config-list indices,
    so a permuted list is a different sweep.
    """
    digest = hashlib.sha256()
    for config in configs:
        digest.update(config.canonical().encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()[:16]


class SweepJournal:
    """One sweep's crash-safe progress manifest."""

    def __init__(self, path: Union[str, Path], sweep_id: str, total: int) -> None:
        self.path = Path(path)
        self.sweep_id = sweep_id
        self.total = total
        self._doc: Optional[Dict[str, Any]] = None

    @classmethod
    def for_configs(
        cls, directory: Union[str, Path], configs: Sequence[SweepConfig]
    ) -> "SweepJournal":
        sweep_id = sweep_identity(configs)
        path = Path(directory) / f"{_PREFIX}{sweep_id}{_SUFFIX}"
        return cls(path, sweep_id, len(configs))

    @classmethod
    def incomplete_in(cls, directory: Union[str, Path]) -> List[Path]:
        """Journals of interrupted sweeps under ``directory`` (for hints)."""
        root = Path(directory)
        if not root.is_dir():
            return []
        found = []
        for path in sorted(root.glob(f"{_PREFIX}*{_SUFFIX}")):
            document = cls._read(path)
            if document is not None and not document.get("complete"):
                found.append(path)
        return found

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    @staticmethod
    def _read(path: Path) -> Optional[Dict[str, Any]]:
        try:
            with path.open("r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return None
        if (
            not isinstance(document, dict)
            or document.get("version") != JOURNAL_VERSION
            or not isinstance(document.get("done"), list)
        ):
            return None
        return document

    def load(self) -> Optional[Dict[str, Any]]:
        """The persisted state, or ``None`` when absent/corrupt/foreign.

        A corrupt journal is treated exactly like a missing one (the
        artifact cache is the source of truth); a version or identity
        mismatch likewise.
        """
        document = self._read(self.path)
        if document is None or document.get("sweep_id") != self.sweep_id:
            return None
        return document

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def begin(
        self,
        tasks: Sequence[SweepConfig],
        *,
        resume: bool = False,
    ) -> Optional[Dict[str, Any]]:
        """Start (or restart) the manifest; returns the prior state, if any.

        The completion state always restarts empty -- the caller re-marks
        tasks as the cache prefill and the backend report them -- so the
        journal never claims completions the artifact store cannot back.
        """
        prior = self.load()
        self._doc = {
            "version": JOURNAL_VERSION,
            "sweep_id": self.sweep_id,
            "created": prior["created"] if prior else _utc_now(),
            "updated": _utc_now(),
            "total": self.total,
            "tasks": [
                {"index": index, "task": config.task, "key": config.key()}
                for index, config in enumerate(tasks)
            ],
            "done": [],
            "cached": [],
            "complete": False,
            "resumed": (prior.get("resumed", 0) + 1 if prior else 0) if resume else 0,
            "error": None,
            "stats": None,
            "events": None,
            "events_dropped": None,
            "faults": None,
        }
        self._flush()
        return prior

    def mark_done(self, index: int, *, cached: bool = False, flush: bool = True) -> None:
        """Record one completed config (by its position in the config list)."""
        doc = self._require_doc()
        doc["done"].append(index)
        if cached:
            doc["cached"].append(index)
        if flush:
            self._flush()

    def mark_many(self, indices: Sequence[int], *, cached: bool = False) -> None:
        """Batch :meth:`mark_done` (one atomic write for a cache prefill)."""
        if not indices:
            return
        for index in indices:
            self.mark_done(index, cached=cached, flush=False)
        self._flush()

    def finish(
        self,
        *,
        stats: Optional[Dict[str, Any]] = None,
        events: Optional[Sequence[Dict[str, Any]]] = None,
        events_dropped: Optional[int] = None,
        faults: Optional[Dict[str, int]] = None,
    ) -> None:
        """Mark the sweep complete and attach the broker's telemetry.

        ``events_dropped`` records how many events fell past the broker's
        in-memory cap: a non-zero count tells post-hoc readers the stored
        ``events`` list is truncated, not the full history.
        """
        doc = self._require_doc()
        doc["complete"] = True
        doc["stats"] = dict(stats) if stats else None
        doc["events"] = [dict(event) for event in events] if events else None
        if events_dropped is None and stats and "events_dropped" in stats:
            events_dropped = stats["events_dropped"]
        doc["events_dropped"] = events_dropped
        doc["faults"] = dict(faults) if faults else None
        self._flush()

    def abort(self, error: str) -> None:
        """Record why the sweep died; the journal stays incomplete."""
        if self._doc is None:
            return
        self._doc["error"] = str(error)
        self._flush()

    @property
    def done_count(self) -> int:
        return len(self._doc["done"]) if self._doc is not None else 0

    # ------------------------------------------------------------------ #
    def _require_doc(self) -> Dict[str, Any]:
        if self._doc is None:
            raise RuntimeError("SweepJournal.begin() must run before updates")
        return self._doc

    def _flush(self) -> None:
        """Atomic rewrite (uniquely named temp file + ``os.replace``)."""
        doc = self._require_doc()
        doc["done"] = sorted(set(doc["done"]))
        doc["cached"] = sorted(set(doc["cached"]))
        doc["updated"] = _utc_now()
        atomic_write_json(self.path, doc)
