"""The parallel sweep runner.

``SweepRunner`` fans a list of :class:`~repro.runner.config.SweepConfig` out
over an :class:`~repro.runner.backends.ExecutionBackend` -- in-process
(``serial``), a ``multiprocessing`` pool (``pool``), or a broker/worker
cluster (``distributed``, see :mod:`repro.runner.distributed`) -- persists
each result as a JSON artifact keyed by the config's content hash, and
returns the results **in config order** regardless of completion order.

Determinism contract
--------------------
Every task derives all randomness from the seeds inside its params, so a
config's result is a pure function of the config.  The runner additionally
normalizes every result through a JSON round-trip before returning it, so a
row obtained fresh from a worker is the same Python object tree as the same
row re-read from the artifact cache -- ``workers=1``, ``workers>1``,
distributed workers, and cached re-runs all aggregate into byte-identical
tables.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Any, List, Optional, Sequence, TextIO, Union

from repro.runner.artifacts import MISSING, ArtifactStore
from repro.runner.backends import (
    ExecutionBackend,
    TaskMeta,
    WorkItem,
    resolve_backend,
)
from repro.runner.config import SweepConfig
from repro.runner.journal import SweepJournal
from repro.runner.registry import resolve_task

__all__ = ["SweepRunner"]


def _canonical_result(value: Any) -> Any:
    """Normalize a task result through a JSON round-trip.

    This is what makes cached and freshly computed results indistinguishable;
    it also fails fast (``TypeError``) if a task returns something that could
    not have been persisted.
    """
    return json.loads(json.dumps(value, allow_nan=True))


class _ProgressLine:
    """The sweep-level ``k/N tasks, ETA`` line, shared by every backend.

    ``k`` counts *all* finished configs -- cache prefills, broker dedupe
    hits, and fresh executions alike -- so ``k/N`` is honest when the
    artifact cache short-circuits part of the sweep; the ETA is estimated
    from executed tasks only (cache hits are effectively free).
    """

    def __init__(
        self, *, total: int, cached: int, enabled: bool, stream: Optional[TextIO] = None
    ) -> None:
        self.total = total
        self.done = cached
        self.cached = cached
        self.enabled = enabled and total > 0
        self.stream = stream if stream is not None else sys.stderr
        self._executed = 0
        self._started = time.perf_counter()
        self._wrote = False

    def step(self, *, cached: bool = False) -> None:
        self.done += 1
        if cached:
            self.cached += 1
        else:
            self._executed += 1
        if not self.enabled:
            return
        remaining = self.total - self.done
        if self._executed:
            elapsed = time.perf_counter() - self._started
            eta = f"{elapsed / self._executed * remaining:6.1f}s"
        else:
            eta = "   ?  "
        suffix = f" ({self.cached} cached)" if self.cached else ""
        self.stream.write(
            f"\r[sweep] {self.done}/{self.total} tasks{suffix}, ETA {eta}"
        )
        self.stream.flush()
        self._wrote = True

    def finish(self) -> None:
        if self._wrote:
            self.stream.write("\n")
            self.stream.flush()


class SweepRunner:
    """Execute a list of sweep configs, optionally in parallel and cached.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``1`` (the default) runs every config
        in-process -- the serial path used by the test suite and by drivers
        invoked without an explicit runner.  Ignored when an explicit
        ``backend`` instance is given.
    artifact_dir:
        Root of the JSON artifact cache.  ``None`` disables persistence;
        results are then recomputed on every call.
    force:
        When true, ignore existing artifacts (but still overwrite them with
        the fresh results).
    progress:
        ``None`` (default) shows the sweep-level progress line on stderr for
        parallel backends when stderr is a terminal; ``True`` forces it on
        (including for ``workers=1`` long sweeps); ``False`` forces it off.
    backend:
        ``None`` derives the backend from ``workers`` (the historical
        behaviour); a name (``"serial"``/``"pool"``/``"distributed"``) or a
        configured :class:`~repro.runner.backends.ExecutionBackend` instance
        selects one explicitly.
    resume:
        Continue an interrupted sweep: announce what the sweep journal in
        ``artifact_dir`` recorded, then re-execute only the configs whose
        artifacts are missing (the artifact cache, not the journal, decides
        -- so resume is correct even when the sweep died between a persist
        and the matching journal update).  Requires ``artifact_dir`` and is
        incompatible with ``force``.  Without ``resume`` the journal is
        still maintained; the flag only changes the announcement and the
        recorded resume count -- a plain re-run recovers identically.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        artifact_dir: Optional[Union[str, Path]] = None,
        force: bool = False,
        progress: Optional[bool] = None,
        backend: Union[None, str, ExecutionBackend] = None,
        resume: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if resume and artifact_dir is None:
            raise ValueError("resume requires an artifact_dir (nothing to resume from)")
        if resume and force:
            raise ValueError(
                "resume and force are contradictory: resume reuses completed "
                "artifacts, force discards them"
            )
        self.workers = workers
        self.store = ArtifactStore(artifact_dir) if artifact_dir is not None else None
        self.force = force
        self.progress = progress
        self.backend = resolve_backend(backend, workers=workers)
        self.resume = resume
        #: Cache hits / task executions of the most recent :meth:`run` call.
        #: Broker-side dedupe hits (distributed backend) count as cached.
        self.last_cached = 0
        self.last_executed = 0
        #: Per-config execution metadata of the most recent :meth:`run` call,
        #: in config order (``None`` for cache hits, which did not execute).
        self.last_metas: List[Optional[TaskMeta]] = []
        #: Journal path of the most recent :meth:`run` call (``None`` when
        #: persistence is disabled).
        self.last_journal_path: Optional[Path] = None
        #: Broker structured events of the most recent :meth:`run` call
        #: (empty for backends without an event log).
        self.last_events: List[Any] = []

    # ------------------------------------------------------------------ #
    def run(self, configs: Sequence[SweepConfig]) -> List[Any]:
        """Execute ``configs`` and return their results in config order."""
        results: List[Any] = [None] * len(configs)
        metas: List[Optional[TaskMeta]] = [None] * len(configs)
        pending: List[WorkItem] = []
        prefilled: List[int] = []
        for index, config in enumerate(configs):
            cached = self.store.load(config) if self.store and not self.force else MISSING
            if cached is not MISSING:
                results[index] = _canonical_result(cached)
                prefilled.append(index)
            else:
                # Resolving here (in the parent) both validates the task name
                # early and captures the registering module for workers that
                # start from a fresh interpreter.
                module = getattr(resolve_task(config.task), "__module__", None)
                pending.append((index, config.task, dict(config.params), module))
        self.last_cached = len(configs) - len(pending)
        self.last_executed = len(pending)

        journal = self._begin_journal(configs, prefilled)
        progress = _ProgressLine(
            total=len(configs),
            cached=self.last_cached,
            enabled=self._progress_enabled(len(pending)),
        )
        executed = 0
        try:
            for index, value, meta in self.backend.execute(
                pending, store=self.store, force=self.force
            ):
                value = _canonical_result(value)
                if meta is not None:
                    executed += 1
                    if self.store is not None and not self.backend.persists:
                        self.store.store(configs[index], value, meta=meta)
                results[index] = value
                metas[index] = meta
                if journal is not None:
                    journal.mark_done(index, cached=meta is None)
                progress.step(cached=meta is None)
        except BaseException as exc:
            if journal is not None:
                journal.abort(repr(exc))
            raise
        finally:
            progress.finish()
        self.last_events = list(getattr(self.backend, "last_events", []))
        if journal is not None:
            journal.finish(
                stats=getattr(self.backend, "last_stats", None),
                events=self.last_events,
                faults=getattr(self.backend, "last_faults", None),
            )
        # Broker-side dedupe may have served part of ``pending`` from the
        # shared artifact cache mid-sweep; recount so the cached/executed
        # split stays honest.
        self.last_cached = len(configs) - executed
        self.last_executed = executed
        self.last_metas = metas
        return results

    def _begin_journal(
        self, configs: Sequence[SweepConfig], prefilled: Sequence[int]
    ) -> Optional[SweepJournal]:
        """Open the sweep's crash-safe manifest (no-op without persistence)."""
        if self.store is None or not configs:
            self.last_journal_path = None
            return None
        journal = SweepJournal.for_configs(self.store.root, configs)
        prior = journal.begin(configs, resume=self.resume)
        journal.mark_many(prefilled, cached=True)
        self.last_journal_path = journal.path
        if self.resume:
            if prior is not None and not prior.get("complete"):
                recovered = len(prior.get("done", ()))
                detail = f"journal recorded {recovered}/{prior.get('total')} done"
            elif prior is not None:
                detail = "previous run completed cleanly"
            else:
                detail = "no journal found, starting fresh"
            sys.stderr.write(
                f"[sweep] resuming sweep {journal.sweep_id}: {detail}; "
                f"{len(prefilled)}/{len(configs)} task(s) already cached\n"
            )
            sys.stderr.flush()
        return journal

    def _progress_enabled(self, pending_count: int) -> bool:
        if self.progress is not None:
            return self.progress
        return (
            self.backend.parallel
            and pending_count > 1
            and hasattr(sys.stderr, "isatty")
            and sys.stderr.isatty()
        )

    # ------------------------------------------------------------------ #
    def run_experiment(self, name: str, **kwargs: Any):
        """Run experiment driver ``name`` ("e1".."e12") through this runner."""
        from repro.experiments import ALL_EXPERIMENTS

        key = name.lower()
        if key not in ALL_EXPERIMENTS:
            raise KeyError(
                f"unknown experiment {name!r}; options: {sorted(ALL_EXPERIMENTS)}"
            )
        return ALL_EXPERIMENTS[key].run_experiment(runner=self, **kwargs)
