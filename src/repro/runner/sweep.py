"""The parallel sweep runner.

``SweepRunner`` fans a list of :class:`~repro.runner.config.SweepConfig` out
over a ``multiprocessing`` pool (or runs them in-process for ``workers=1``),
persists each result as a JSON artifact keyed by the config's content hash,
and returns the results **in config order** regardless of completion order.

Determinism contract
--------------------
Every task derives all randomness from the seeds inside its params, so a
config's result is a pure function of the config.  The runner additionally
normalizes every result through a JSON round-trip before returning it, so a
row obtained fresh from a worker is the same Python object tree as the same
row re-read from the artifact cache -- ``workers=1``, ``workers>1``, and
cached re-runs all aggregate into byte-identical tables.
"""

from __future__ import annotations

import importlib
import json
import multiprocessing
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.runner.artifacts import MISSING, ArtifactStore
from repro.runner.config import SweepConfig
from repro.runner.registry import resolve_task, run_task

__all__ = ["SweepRunner"]

#: Work item shipped to a worker: (position in the config list, task name,
#: params, module that registers the task).  The module name lets a worker
#: started with the ``spawn`` method re-register tasks that live outside
#: ``repro.experiments`` (fork workers inherit the registry and ignore it).
_WorkItem = Tuple[int, str, Dict[str, Any], Optional[str]]

#: Per-task execution metadata produced by workers and persisted alongside
#: each artifact: {"wall_clock_s": float, "worker": pid}.
TaskMeta = Dict[str, Any]


def _canonical_result(value: Any) -> Any:
    """Normalize a task result through a JSON round-trip.

    This is what makes cached and freshly computed results indistinguishable;
    it also fails fast (``TypeError``) if a task returns something that could
    not have been persisted.
    """
    return json.loads(json.dumps(value, allow_nan=True))


def _execute(item: _WorkItem) -> Tuple[int, Any, TaskMeta]:
    """Worker entry point: run one config, tagging the result with its index
    and with execution metadata (wall-clock seconds, worker pid)."""
    index, task, params, module = item
    if module is not None:
        try:
            importlib.import_module(module)
        except ImportError:
            pass  # fork workers already hold the registration
    start = time.perf_counter()
    result = run_task(task, params)
    meta: TaskMeta = {
        "wall_clock_s": time.perf_counter() - start,
        "worker": os.getpid(),
    }
    return index, result, meta


class SweepRunner:
    """Execute a list of sweep configs, optionally in parallel and cached.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``1`` (the default) runs every config
        in-process -- the serial path used by the test suite and by drivers
        invoked without an explicit runner.
    artifact_dir:
        Root of the JSON artifact cache.  ``None`` disables persistence;
        results are then recomputed on every call.
    force:
        When true, ignore existing artifacts (but still overwrite them with
        the fresh results).
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        artifact_dir: Optional[Union[str, Path]] = None,
        force: bool = False,
        progress: Optional[bool] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.store = ArtifactStore(artifact_dir) if artifact_dir is not None else None
        self.force = force
        #: Progress reporting: ``None`` (default) shows a sweep-level progress
        #: line on stderr when ``workers > 1`` and stderr is a terminal;
        #: ``True``/``False`` force it on/off.
        self.progress = progress
        #: Cache hits / task executions of the most recent :meth:`run` call.
        self.last_cached = 0
        self.last_executed = 0
        #: Per-config execution metadata of the most recent :meth:`run` call,
        #: in config order (``None`` for cache hits, which did not execute).
        self.last_metas: List[Optional[TaskMeta]] = []

    # ------------------------------------------------------------------ #
    def run(self, configs: Sequence[SweepConfig]) -> List[Any]:
        """Execute ``configs`` and return their results in config order."""
        results: List[Any] = [None] * len(configs)
        metas: List[Optional[TaskMeta]] = [None] * len(configs)
        pending: List[_WorkItem] = []
        for index, config in enumerate(configs):
            cached = self.store.load(config) if self.store and not self.force else MISSING
            if cached is not MISSING:
                results[index] = _canonical_result(cached)
            else:
                # Resolving here (in the parent) both validates the task name
                # early and captures the registering module for spawn workers.
                module = getattr(resolve_task(config.task), "__module__", None)
                pending.append((index, config.task, dict(config.params), module))
        self.last_cached = len(configs) - len(pending)
        self.last_executed = len(pending)

        for index, value, meta in self._execute_pending(pending):
            value = _canonical_result(value)
            if self.store is not None:
                self.store.store(configs[index], value, meta=meta)
            results[index] = value
            metas[index] = meta
        self.last_metas = metas
        return results

    def _show_progress(self, pending_count: int) -> bool:
        if self.progress is not None:
            return self.progress and pending_count > 1
        return (
            self.workers > 1
            and pending_count > 1
            and hasattr(sys.stderr, "isatty")
            and sys.stderr.isatty()
        )

    def _execute_pending(
        self, pending: List[_WorkItem]
    ) -> List[Tuple[int, Any, TaskMeta]]:
        if not pending:
            return []
        if self.workers == 1 or len(pending) == 1:
            return [_execute(item) for item in pending]
        processes = min(self.workers, len(pending))
        # Prefer fork where available: workers then inherit the full task
        # registry outright.  Spawn platforms fall back to the module name
        # shipped with each work item.
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = multiprocessing.get_context()
        show_progress = self._show_progress(len(pending))
        total = len(pending)
        started = time.perf_counter()
        completed: List[Tuple[int, Any, TaskMeta]] = []
        with context.Pool(processes=processes) as pool:
            # Unordered: completion order does not matter because every
            # result carries its config index.
            for item in pool.imap_unordered(_execute, pending):
                completed.append(item)
                if show_progress:
                    done = len(completed)
                    elapsed = time.perf_counter() - started
                    eta = elapsed / done * (total - done)
                    sys.stderr.write(
                        f"\r[sweep] {done}/{total} tasks, ETA {eta:6.1f}s"
                    )
                    sys.stderr.flush()
        if show_progress:
            sys.stderr.write("\n")
            sys.stderr.flush()
        return completed

    # ------------------------------------------------------------------ #
    def run_experiment(self, name: str, **kwargs: Any):
        """Run experiment driver ``name`` ("e1".."e12") through this runner."""
        from repro.experiments import ALL_EXPERIMENTS

        key = name.lower()
        if key not in ALL_EXPERIMENTS:
            raise KeyError(
                f"unknown experiment {name!r}; options: {sorted(ALL_EXPERIMENTS)}"
            )
        return ALL_EXPERIMENTS[key].run_experiment(runner=self, **kwargs)
