"""Parallel sweep-runner subsystem.

Experiments express their sweeps as lists of JSON-serializable
:class:`SweepConfig` objects; :class:`SweepRunner` executes those lists over a
``multiprocessing`` worker pool (serial for ``workers=1``), caches every
result as a JSON artifact keyed by the config's content hash, and hands the
rows back in config order for aggregation into an
:class:`~repro.experiments.common.ExperimentResult`.  See RUNNER.md for the
architecture and the artifact/cache layout.
"""

from repro.runner.artifacts import MISSING, ArtifactStore
from repro.runner.config import SweepConfig, canonical_json
from repro.runner.registry import registered_tasks, resolve_task, run_task, sweep_task
from repro.runner.sweep import SweepRunner

__all__ = [
    "ArtifactStore",
    "MISSING",
    "SweepConfig",
    "SweepRunner",
    "canonical_json",
    "registered_tasks",
    "resolve_task",
    "run_task",
    "sweep_task",
]
