"""Parallel sweep-runner subsystem.

Experiments express their sweeps as lists of JSON-serializable
:class:`SweepConfig` objects; :class:`SweepRunner` executes those lists
through a pluggable :class:`ExecutionBackend` -- in-process (``serial``), a
``multiprocessing`` pool (``pool``), or a lease-based broker/worker cluster
(``distributed``, one machine or many) -- caches every result as a JSON
artifact keyed by the config's content hash, and hands the rows back in
config order for aggregation into an
:class:`~repro.experiments.common.ExperimentResult`.  See RUNNER.md for the
architecture, the artifact/cache layout, and the distributed wire protocol.
"""

from repro.runner.artifacts import MISSING, ArtifactStore
from repro.runner.backends import (
    ExecutionBackend,
    PoolBackend,
    SerialBackend,
    resolve_backend,
)
from repro.runner.config import SweepConfig, canonical_json
from repro.runner.distributed import (
    Broker,
    BrokerError,
    DistributedBackend,
    SweepQueue,
    WorkerDaemon,
)
from repro.runner.distributed.broker import InjectedBrokerCrash
from repro.runner.faults import Backoff, FaultInjector, FaultPlan, InjectedFault
from repro.runner.hub import DashboardServer, ResultsDB, SweepHub
from repro.runner.journal import SweepJournal
from repro.runner.registry import registered_tasks, resolve_task, run_task, sweep_task
from repro.runner.sweep import SweepRunner

__all__ = [
    "ArtifactStore",
    "Backoff",
    "Broker",
    "BrokerError",
    "DashboardServer",
    "DistributedBackend",
    "ExecutionBackend",
    "FaultInjector",
    "FaultPlan",
    "InjectedBrokerCrash",
    "InjectedFault",
    "MISSING",
    "PoolBackend",
    "ResultsDB",
    "SerialBackend",
    "SweepConfig",
    "SweepHub",
    "SweepJournal",
    "SweepQueue",
    "SweepRunner",
    "WorkerDaemon",
    "canonical_json",
    "registered_tasks",
    "resolve_backend",
    "resolve_task",
    "run_task",
    "sweep_task",
]
