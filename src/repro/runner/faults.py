"""Deterministic fault injection for the distributed sweep runner.

The paper's protocols tolerate Byzantine nodes *inside* the simulation; this
module gives the infrastructure that runs the experiments the same
discipline.  A :class:`FaultPlan` is a JSON-round-trippable schedule of
fault *rates* (plus a seed); a :class:`FaultInjector` turns it into concrete
injection decisions that the broker, the worker daemons, and the wire
protocol consult at well-defined sites:

===================  =======================================================
site                 effect when it fires
===================  =======================================================
``drop-connection``  close the socket instead of sending a protocol line
``truncate-line``    send a prefix of the line (no newline), then drop
``duplicate-line``   send the protocol line twice
``delay-line``       sleep ``delay_s`` before sending the line
``refuse-connect``   fail a worker's connect attempt without dialing
``crash-worker``     hard-exit the worker process mid-lease (``os._exit``)
``hang-worker``      suppress heartbeats and stall ``hang_s`` mid-lease
``slow-task``        sleep ``slow_s`` before reporting a task result
``artifact-write``   make one broker-side artifact store write raise
``crash-broker``     fail the sweep broker after accepting a result
``crash-hub``        kill the hub abruptly mid-stream (no sweep teardown)
``hang-hub``         stall a hub client stream ``hang_s`` (no heartbeats)
===================  =======================================================

Decisions are **deterministic**: the n-th consultation of a site draws a
unit value from ``sha256(seed | salt | site | n)`` and fires iff it is below
the site's rate.  The same plan therefore produces the same schedule per
(salt, site) stream -- the ``salt`` separates the broker from each spawned
worker, so a respawned worker does not deterministically re-crash at the
same decision and wedge the sweep.  With no plan (or an all-zero plan)
every hook short-circuits, so the production path pays one attribute check.

:class:`Backoff` lives here too: seedable exponential backoff with jitter,
used by the worker daemon's reconnect and poll loops (the flip side of
chaos tolerance -- a reconnect storm against a restarted broker is itself a
fault amplifier).
"""

from __future__ import annotations

import hashlib
import math
import random
import threading
import time
from dataclasses import dataclass, fields
from typing import Any, Dict, Optional

__all__ = ["FaultPlan", "FaultInjector", "InjectedFault", "Backoff"]

#: Exit code of a worker process killed by an injected ``crash-worker``
#: fault (distinguishable from real crashes in loopback-worker post-mortems).
CRASH_EXIT_CODE = 70

#: Rate fields of :class:`FaultPlan` (everything except the seed and the
#: duration knobs), mapped to their injection site names.
_RATE_SITES = {
    "drop_connection": "drop-connection",
    "truncate_line": "truncate-line",
    "duplicate_line": "duplicate-line",
    "delay_line": "delay-line",
    "refuse_connect": "refuse-connect",
    "crash_worker": "crash-worker",
    "hang_worker": "hang-worker",
    "slow_task": "slow-task",
    "fail_artifact_write": "artifact-write",
    "crash_broker": "crash-broker",
    "crash_hub": "crash-hub",
    "hang_hub": "hang-hub",
}

_DURATION_FIELDS = ("delay_s", "hang_s", "slow_s")


class InjectedFault(OSError):
    """An injected wire fault (subclasses ``OSError`` so every handler that
    already survives a real connection failure survives the injected one)."""


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, JSON-round-trippable fault schedule (all rates default 0).

    Rates are per-consultation probabilities in ``[0, 1]``; ``*_s`` fields
    are the durations the matching faults use when they fire.  A plan with
    every rate at zero is a valid "injector threaded but disabled"
    configuration -- the chaos bench entry uses exactly that to keep the
    hook overhead on the performance trajectory.
    """

    seed: int = 0
    # Wire faults, consulted once per protocol line sent (broker and worker).
    drop_connection: float = 0.0
    truncate_line: float = 0.0
    duplicate_line: float = 0.0
    delay_line: float = 0.0
    delay_s: float = 0.05
    # Connection faults, consulted per worker connect attempt.
    refuse_connect: float = 0.0
    # Worker faults, consulted per leased task.
    crash_worker: float = 0.0
    hang_worker: float = 0.0
    hang_s: float = 2.0
    slow_task: float = 0.0
    slow_s: float = 0.25
    # Broker faults: per artifact write / per accepted result.
    fail_artifact_write: float = 0.0
    crash_broker: float = 0.0
    # Hub faults, consulted per client-stream message: an abrupt hub death
    # (exercises journaled re-adoption + client reconnect) and a hub that
    # stalls without closing connections (exercises stream liveness).
    crash_hub: float = 0.0
    hang_hub: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(f"FaultPlan.seed must be an int, got {self.seed!r}")
        for name in _RATE_SITES:
            rate = getattr(self, name)
            if not isinstance(rate, (int, float)) or not 0.0 <= float(rate) <= 1.0:
                raise ValueError(
                    f"FaultPlan.{name} must be a probability in [0, 1], got {rate!r}"
                )
        for name in _DURATION_FIELDS:
            value = getattr(self, name)
            if (
                not isinstance(value, (int, float))
                or not math.isfinite(value)
                or value < 0
            ):
                raise ValueError(
                    f"FaultPlan.{name} must be a finite duration >= 0, got {value!r}"
                )

    @property
    def active(self) -> bool:
        """Whether any fault can ever fire (any rate > 0)."""
        return any(getattr(self, name) > 0 for name in _RATE_SITES)

    def to_dict(self) -> Dict[str, Any]:
        """The full plan as a JSON-compatible dict (stable field order)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, document: Any) -> "FaultPlan":
        """Parse a plan, rejecting unknown keys (typos must not silently
        disable the fault they meant to enable)."""
        if not isinstance(document, dict):
            raise ValueError(f"fault plan must be a JSON object, got {document!r}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(document) - known)
        if unknown:
            raise ValueError(
                f"unknown fault plan field(s) {unknown}; known: {sorted(known)}"
            )
        return cls(**document)


class FaultInjector:
    """Turn a :class:`FaultPlan` into deterministic injection decisions.

    Parameters
    ----------
    plan:
        The schedule.  ``None`` (or an all-zero plan) disables every hook.
    salt:
        Decision-stream separator: the broker uses ``"broker"``, each
        spawned loopback worker gets ``"worker-<ordinal>"``.  Streams with
        different salts are independent under the same seed.
    """

    def __init__(self, plan: Optional[FaultPlan] = None, salt: str = "") -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self.salt = salt
        self.enabled = self.plan.active
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}
        #: Per-site counts of faults actually injected so far.
        self.injected: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # The deterministic schedule
    # ------------------------------------------------------------------ #
    def fires(self, site: str, rate: float) -> bool:
        """Whether the next consultation of ``site`` injects (rate-gated)."""
        if rate <= 0.0:
            return False
        with self._lock:
            count = self._counts.get(site, 0) + 1
            self._counts[site] = count
            token = f"{self.plan.seed}|{self.salt}|{site}|{count}".encode("utf-8")
            digest = hashlib.sha256(token).digest()
            unit = int.from_bytes(digest[:8], "big") / 2.0**64
            fired = unit < rate
            if fired:
                self.injected[site] = self.injected.get(site, 0) + 1
            return fired

    # ------------------------------------------------------------------ #
    # Wire faults (used by protocol.send_message)
    # ------------------------------------------------------------------ #
    def send(self, sock: Any, data: bytes) -> None:
        """Send ``data`` on ``sock``, applying the plan's wire faults.

        May raise :class:`InjectedFault` (an ``OSError``) after closing the
        socket -- exactly what a dropped TCP connection looks like to the
        caller, so the surrounding retry/requeue machinery is exercised for
        real.
        """
        if not self.enabled:
            sock.sendall(data)
            return
        plan = self.plan
        if self.fires("drop-connection", plan.drop_connection):
            self._kill(sock)
            raise InjectedFault("injected fault: connection dropped before send")
        if self.fires("truncate-line", plan.truncate_line) and len(data) > 2:
            try:
                sock.sendall(data[: len(data) // 2])
            except OSError:
                pass
            self._kill(sock)
            raise InjectedFault("injected fault: line truncated mid-send")
        if self.fires("delay-line", plan.delay_line):
            time.sleep(plan.delay_s)
        if self.fires("duplicate-line", plan.duplicate_line):
            sock.sendall(data)
        sock.sendall(data)

    @staticmethod
    def _kill(sock: Any) -> None:
        try:
            sock.close()
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    # Point decisions (callers act on the verdict)
    # ------------------------------------------------------------------ #
    def refuse_connect(self) -> bool:
        return self.enabled and self.fires("refuse-connect", self.plan.refuse_connect)

    def crash_worker(self) -> bool:
        return self.enabled and self.fires("crash-worker", self.plan.crash_worker)

    def hang_worker(self) -> Optional[float]:
        if self.enabled and self.fires("hang-worker", self.plan.hang_worker):
            return self.plan.hang_s
        return None

    def slow_task(self) -> Optional[float]:
        if self.enabled and self.fires("slow-task", self.plan.slow_task):
            return self.plan.slow_s
        return None

    def fail_artifact_write(self) -> bool:
        return self.enabled and self.fires(
            "artifact-write", self.plan.fail_artifact_write
        )

    def crash_broker(self) -> bool:
        return self.enabled and self.fires("crash-broker", self.plan.crash_broker)

    def crash_hub(self) -> bool:
        return self.enabled and self.fires("crash-hub", self.plan.crash_hub)

    def hang_hub(self) -> Optional[float]:
        if self.enabled and self.fires("hang-hub", self.plan.hang_hub):
            return self.plan.hang_s
        return None


class Backoff:
    """Exponential backoff with jitter and a capped ceiling.

    The undjittered delay for attempt ``n`` (0-based) is
    ``min(cap_s, base_s * factor**n)``; :meth:`next_delay` multiplies it by
    a jitter factor uniform in ``[1 - jitter, 1 + jitter]`` and advances the
    attempt counter.  Jitter decorrelates a fleet of workers reconnecting
    to a restarted broker; pass a ``seed`` for a reproducible sequence in
    tests.
    """

    def __init__(
        self,
        *,
        base_s: float = 0.5,
        cap_s: float = 15.0,
        factor: float = 2.0,
        jitter: float = 0.25,
        seed: Optional[int] = None,
    ) -> None:
        if base_s <= 0 or cap_s < base_s:
            raise ValueError(
                f"need 0 < base_s <= cap_s, got base_s={base_s}, cap_s={cap_s}"
            )
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.base_s = base_s
        self.cap_s = cap_s
        self.factor = factor
        self.jitter = jitter
        self._rng = random.Random(seed)
        #: Consecutive failures so far (advanced by :meth:`next_delay`,
        #: cleared by :meth:`reset`).  Give-up guards count this.
        self.attempts = 0

    def peek(self) -> float:
        """The undjittered delay the next :meth:`next_delay` is based on."""
        return min(self.cap_s, self.base_s * self.factor**self.attempts)

    def next_delay(self) -> float:
        """Record one failure and return the jittered delay to wait."""
        delay = self.peek()
        self.attempts += 1
        if self.jitter:
            delay *= 1.0 + self._rng.uniform(-self.jitter, self.jitter)
        return delay

    def reset(self) -> None:
        """A success: clear the failure streak."""
        self.attempts = 0
