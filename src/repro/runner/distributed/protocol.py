"""Wire protocol of the distributed sweep backend.

One message = one JSON object on one ``\\n``-terminated UTF-8 line over a
plain TCP socket.  Line-delimited JSON keeps the protocol trivially
debuggable (``nc HOST PORT`` and type a hello) and reuses the exact
serialization the artifact cache already guarantees for configs and
results -- a task crosses the wire as the same canonical
``{"task": ..., "params": ...}`` document that names its artifact, so the
scenario seam (compiled ``scenario.run`` specs are plain JSON params)
ships for free.

Message flow (worker-initiated, request/response plus streamed results)::

    worker -> broker   {"type": "hello", "worker_id", "host", "pid",
                        "procs", "protocol"}
    broker -> worker   {"type": "welcome", "protocol", "lease_ttl_s"}
    worker -> broker   {"type": "lease", "capacity": k}
    broker -> worker   {"type": "tasks", "lease": id,
                        "tasks": [{"id", "task", "params", "module"}, ...]}
                     | {"type": "empty", "done": bool}
    worker -> broker   {"type": "result", "lease": id, "id": task_id,
                        "result": ..., "meta": {...}}          (streamed)
                     | {"type": "error", "lease": id, "id": task_id,
                        "error": "...", "traceback": "..."}
                     | {"type": "heartbeat", "lease": id}
                     | {"type": "abandon", "lease": id, "ids": [task_id, ...]}

Results and heartbeats are fire-and-forget (TCP ordering is enough); only
``hello`` and ``lease`` have replies.  ``empty`` with ``done=true`` means
the sweep has fully drained -- loopback workers started with
``--exit-when-drained`` terminate, persistent daemons disconnect and poll
for the next sweep.  ``abandon`` is a draining worker's graceful return
of the unstarted remainder of its lease (requeued at the front, uncharged
against the retry budget).

Client flow (Sweep Hub submissions share the same port; the first message
type tells a worker hello apart from a client request)::

    client -> hub      {"type": "submit", "protocol", "name", "priority",
                        "force", "tasks": [{"id", "task", "params",
                        "module"}, ...]}
    hub -> client      {"type": "accepted", "sweep": key, "total": n,
                        "identity": hash, "reattached": bool,
                        "heartbeat_s": s}
                     | {"type": "busy", "error": "...", "retry_after_s": s}
    hub -> client      {"type": "result", "id": client_id, "result": ...,
                        "meta": {...}|null}                    (streamed)
                     | {"type": "hub-heartbeat"}               (idle stream)
    hub -> client      {"type": "sweep-done", "sweep": key, "stats": {...}}
                     | {"type": "sweep-failed", "sweep": key, "error": "..."}

    client -> hub      {"type": "status", "protocol"}
    hub -> client      {"type": "status", ...Broker.snapshot()...}

A ``meta`` of ``null`` on a streamed result marks a hub-side cache hit
(dedupe against the shared artifact store), mirroring the local backends'
``(index, result, None)`` convention for cached completions.

High-availability additions (all hub-side; plain brokers never send
them): submissions are identified by ``identity`` -- the content hash of
the ordered task list -- and resubmitting an identity the hub already
holds re-attaches the stream to the live queue (``reattached: true``),
replaying completed results instead of duplicating work, which is what
makes client reconnect idempotent.  ``hub-heartbeat`` flows whenever a
``heartbeat_s`` interval passes with no result, so clients keep a read
timeout of a few intervals and detect a hung hub.  ``busy`` is the
admission-control rejection: the hub is at its pending-task capacity and
the client should back off ``retry_after_s`` seconds and resubmit.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Optional, TextIO, Tuple

__all__ = [
    "PROTOCOL_VERSION",
    "send_message",
    "read_message",
    "reader_for",
    "parse_address",
    "format_address",
]

PROTOCOL_VERSION = 1


def send_message(
    sock: socket.socket, message: Dict[str, Any], *, injector: Optional[Any] = None
) -> None:
    """Write one message as a JSON line.

    ``allow_nan=True`` mirrors the runner's result canonicalization: a task
    result that survives ``_canonical_result`` also survives the wire.

    ``injector`` (a :class:`~repro.runner.faults.FaultInjector`) routes the
    encoded line through the fault-injection hooks: the line may then be
    delayed, duplicated, truncated, or replaced by a dropped connection
    (an ``OSError``), exercising the exact recovery paths a flaky network
    would.  ``None`` -- the production default -- sends directly.
    """
    line = json.dumps(message, separators=(",", ":"), allow_nan=True) + "\n"
    data = line.encode("utf-8")
    if injector is not None:
        injector.send(sock, data)
    else:
        sock.sendall(data)


def reader_for(sock: socket.socket) -> TextIO:
    """A buffered line reader over ``sock`` (pair it with ``read_message``)."""
    return sock.makefile("r", encoding="utf-8", newline="\n")


def read_message(reader: TextIO) -> Optional[Dict[str, Any]]:
    """Read one message; ``None`` on EOF.  Raises ``ValueError`` on garbage."""
    line = reader.readline()
    if not line:
        return None
    message = json.loads(line)
    if not isinstance(message, dict) or "type" not in message:
        raise ValueError(f"malformed protocol message: {line!r}")
    return message


def parse_address(text: str) -> Tuple[str, int]:
    """Parse ``HOST:PORT`` (or bare ``:PORT`` for all interfaces)."""
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    return (host or "0.0.0.0", int(port))


def format_address(address: Tuple[str, int]) -> str:
    host, port = address
    return f"{host}:{port}"
