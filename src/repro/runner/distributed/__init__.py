"""Distributed sweep execution: broker / worker over line-delimited JSON TCP.

The subsystem behind ``SweepRunner(backend="distributed")`` (see RUNNER.md,
"Distributed backend"):

- :mod:`~repro.runner.distributed.protocol` -- the wire format (one JSON
  object per line; tasks cross as the same canonical ``{task, params}``
  documents that key the artifact cache).
- :mod:`~repro.runner.distributed.broker` -- the lease-based task queue:
  heartbeats, lease expiry, bounded retries, dispatch-time dedupe against
  the shared artifact cache, persistence through ``ArtifactStore``.
- :mod:`~repro.runner.distributed.worker` -- the daemon behind
  ``repro-byzantine-counting worker --connect HOST:PORT --workers N``.
- :mod:`~repro.runner.distributed.backend` -- the ``ExecutionBackend``
  gluing a per-sweep broker (plus optional spawned loopback workers) into
  the unchanged runner API, or -- in ``connect`` mode -- submitting to a
  standing multi-tenant :mod:`~repro.runner.hub` service built on the
  same broker core (:class:`SweepQueue` is the per-sweep unit it
  multiplexes).
"""

from repro.runner.distributed.backend import DistributedBackend, spawn_loopback_worker
from repro.runner.distributed.broker import Broker, BrokerError, SweepQueue
from repro.runner.distributed.protocol import (
    PROTOCOL_VERSION,
    format_address,
    parse_address,
)
from repro.runner.distributed.worker import WorkerDaemon

__all__ = [
    "Broker",
    "BrokerError",
    "DistributedBackend",
    "PROTOCOL_VERSION",
    "SweepQueue",
    "WorkerDaemon",
    "format_address",
    "parse_address",
    "spawn_loopback_worker",
]
