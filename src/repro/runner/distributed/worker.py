"""The worker daemon of the distributed sweep backend.

``repro-byzantine-counting worker --connect HOST:PORT --workers N`` runs a
:class:`WorkerDaemon`: it connects to a broker, leases chunks of tasks
(requesting one per local process), executes them through the ordinary
sweep-task registry -- fanning out over a local ``multiprocessing`` pool
when ``procs > 1`` -- and streams each result (plus its execution metadata:
wall-clock seconds, worker pid, host name, worker id) back as it completes.
A background thread heartbeats the active lease at a third of the broker's
lease TTL, so long tasks never expire while the worker is alive.

The daemon is persistent by default: when a sweep drains (or the broker
goes away between sweeps) it disconnects and keeps polling the address, so
one worker pool can serve many successive sweeps.  ``exit_when_drained``
flips it into one-shot mode for loopback helpers and demos: it exits after
the first drained sweep, or once the broker stays unreachable for
``giveup_after_s``.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import traceback
from typing import Any, Dict, List, Optional, Tuple

from repro.runner.backends import WorkItem, execute_work_item
from repro.runner.distributed.protocol import (
    PROTOCOL_VERSION,
    read_message,
    reader_for,
    send_message,
)

__all__ = ["WorkerDaemon", "execute_leased_item"]


def execute_leased_item(item: WorkItem) -> Tuple[int, Any, Optional[Dict[str, Any]], Optional[str], Optional[str]]:
    """Run one leased task, never raising: ``(id, result, meta, error, tb)``.

    Module-level (and therefore picklable) so the daemon's local
    ``multiprocessing`` pool can map it; errors are captured per task so one
    failing task costs one ``error`` message, not the whole lease.
    """
    try:
        index, result, meta = execute_work_item(item)
        return index, result, meta, None, None
    except Exception as exc:  # noqa: BLE001 - reported to the broker
        return item[0], None, None, f"{type(exc).__name__}: {exc}", traceback.format_exc()


class WorkerDaemon:
    """Lease tasks from a broker and stream results back.

    Parameters
    ----------
    host / port:
        The broker address to connect (and keep reconnecting) to.
    procs:
        Local worker processes; the daemon requests ``procs`` tasks per
        lease so its pool stays fed.
    exit_when_drained:
        One-shot mode: return after the first drained sweep instead of
        polling for the next one.
    reconnect_delay_s / poll_interval_s:
        Backoff while the broker is unreachable / while the queue is empty
        but the sweep is not drained.
    giveup_after_s:
        In one-shot mode only: exit (code 1) when no broker has been
        reachable for this long, so orphaned loopback workers cannot
        outlive a crashed parent.
    verbose:
        Log connection / lease events to ``log_stream`` (default stderr).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        procs: int = 1,
        worker_id: Optional[str] = None,
        exit_when_drained: bool = False,
        reconnect_delay_s: float = 0.5,
        poll_interval_s: float = 0.2,
        giveup_after_s: float = 30.0,
        verbose: bool = False,
        log_stream: Optional[Any] = None,
    ) -> None:
        if procs < 1:
            raise ValueError(f"procs must be >= 1, got {procs}")
        self.host = host
        self.port = port
        self.procs = procs
        self.worker_id = worker_id or f"{socket.gethostname()}:{os.getpid()}"
        self.exit_when_drained = exit_when_drained
        self.reconnect_delay_s = reconnect_delay_s
        self.poll_interval_s = poll_interval_s
        self.giveup_after_s = giveup_after_s
        self.verbose = verbose
        self.log_stream = log_stream
        self._stop = threading.Event()
        self._send_lock = threading.Lock()
        self._pool = None
        self._welcomed = False
        #: Tasks executed (including errored) since the daemon started.
        self.tasks_run = 0

    # ------------------------------------------------------------------ #
    def stop(self) -> None:
        """Ask the daemon loop to exit after the current lease."""
        self._stop.set()

    def run(self) -> int:
        """The daemon loop; returns a process exit code."""
        unreachable_since: Optional[float] = None
        try:
            while not self._stop.is_set():
                try:
                    sock = socket.create_connection((self.host, self.port), timeout=5.0)
                except OSError:
                    if self._give_up(unreachable_since):
                        return 1
                    if unreachable_since is None:
                        unreachable_since = time.monotonic()
                    self._stop.wait(self.reconnect_delay_s)
                    continue
                # Generous hello/welcome deadline; _session tightens it to a
                # multiple of the broker's lease TTL once known.  Without a
                # read timeout a broker host that dies silently (power loss,
                # partition -- no FIN/RST) would leave the daemon blocked in
                # readline forever instead of reconnecting.
                sock.settimeout(30.0)
                self._welcomed = False
                try:
                    drained = self._session(sock)
                except (OSError, ValueError):
                    drained = False
                finally:
                    try:
                        sock.close()
                    except OSError:
                        pass
                if self._welcomed:
                    # Only a broker that completed the handshake counts as
                    # "reachable": a TCP connect to some other service (or a
                    # protocol-mismatched broker) must not reset the give-up
                    # clock, or a one-shot worker would hammer it forever.
                    unreachable_since = None
                elif self._give_up(unreachable_since):
                    return 1
                elif unreachable_since is None:
                    unreachable_since = time.monotonic()
                if drained:
                    self._log("sweep drained")
                    if self.exit_when_drained:
                        return 0
                self._stop.wait(self.reconnect_delay_s)
            return 0
        finally:
            self._close_pool()

    def _give_up(self, unreachable_since: Optional[float]) -> bool:
        if not self.exit_when_drained or unreachable_since is None:
            return False
        if time.monotonic() - unreachable_since > self.giveup_after_s:
            self._log("no valid broker reachable, giving up")
            return True
        return False

    # ------------------------------------------------------------------ #
    def _session(self, sock: socket.socket) -> bool:
        """One broker connection; True when the sweep drained."""
        self._send(
            sock,
            {
                "type": "hello",
                "worker_id": self.worker_id,
                "host": socket.gethostname(),
                "pid": os.getpid(),
                "procs": self.procs,
                "protocol": PROTOCOL_VERSION,
            },
        )
        reader = reader_for(sock)
        welcome = read_message(reader)
        if welcome is None or welcome.get("type") != "welcome":
            return False
        self._welcomed = True
        lease_ttl_s = float(welcome.get("lease_ttl_s", 30.0))
        heartbeat_interval = max(0.1, lease_ttl_s / 3.0)
        # The broker replies to every lease request promptly (tasks or
        # empty), so a read stalling for several TTLs means the broker is
        # gone without a FIN; time out (socket.timeout is an OSError, so the
        # session aborts into the reconnect loop).
        sock.settimeout(max(10.0, 4.0 * lease_ttl_s))
        self._log(f"connected to {self.host}:{self.port}")
        while not self._stop.is_set():
            self._send(sock, {"type": "lease", "capacity": self.procs})
            message = read_message(reader)
            if message is None:
                return False
            kind = message.get("type")
            if kind == "empty":
                if message.get("done"):
                    return True
                self._stop.wait(self.poll_interval_s)
                continue
            if kind != "tasks":
                return False
            self._run_lease(sock, message, heartbeat_interval)
        return False

    def _run_lease(
        self, sock: socket.socket, message: Dict[str, Any], heartbeat_interval: float
    ) -> None:
        lease_id = message.get("lease")
        items: List[WorkItem] = [
            (task["id"], task["task"], dict(task["params"]), task.get("module"))
            for task in message.get("tasks", ())
        ]
        self._log(f"lease {lease_id}: {len(items)} task(s)")
        done = threading.Event()
        heartbeater = threading.Thread(
            target=self._heartbeat_loop,
            args=(sock, lease_id, heartbeat_interval, done),
            daemon=True,
        )
        heartbeater.start()
        try:
            for outcome in self._execute_items(items):
                index, result, meta, error, tb = outcome
                self.tasks_run += 1
                if error is not None:
                    self._send(
                        sock,
                        {
                            "type": "error",
                            "lease": lease_id,
                            "id": index,
                            "error": error,
                            "traceback": tb,
                        },
                    )
                    continue
                meta = dict(meta or {})
                meta["host"] = socket.gethostname()
                meta["worker_id"] = self.worker_id
                self._send(
                    sock,
                    {
                        "type": "result",
                        "lease": lease_id,
                        "id": index,
                        "result": result,
                        "meta": meta,
                    },
                )
        finally:
            done.set()
            heartbeater.join(timeout=1.0)

    def _execute_items(self, items: List[WorkItem]):
        if self.procs > 1 and len(items) > 1:
            pool = self._ensure_pool()
            yield from pool.imap_unordered(execute_leased_item, items)
        else:
            for item in items:
                yield execute_leased_item(item)

    def _heartbeat_loop(
        self,
        sock: socket.socket,
        lease_id: Any,
        interval: float,
        done: threading.Event,
    ) -> None:
        while not done.wait(interval):
            try:
                self._send(sock, {"type": "heartbeat", "lease": lease_id})
            except OSError:
                return

    # ------------------------------------------------------------------ #
    def _send(self, sock: socket.socket, message: Dict[str, Any]) -> None:
        # Results (main thread) and heartbeats (side thread) share the
        # socket; serialize the line writes.
        with self._send_lock:
            send_message(sock, message)

    def _ensure_pool(self):
        if self._pool is None:
            from repro.runner.backends import worker_context

            self._pool = worker_context().Pool(processes=self.procs)
        return self._pool

    def _close_pool(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def _log(self, text: str) -> None:
        if self.verbose:
            import sys

            stream = self.log_stream if self.log_stream is not None else sys.stderr
            stream.write(f"[worker {self.worker_id}] {text}\n")
            stream.flush()
