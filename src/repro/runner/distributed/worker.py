"""The worker daemon of the distributed sweep backend.

``repro-byzantine-counting worker --connect HOST:PORT --workers N`` runs a
:class:`WorkerDaemon`: it connects to a broker, leases chunks of tasks
(requesting one per local process), executes them through the ordinary
sweep-task registry -- fanning out over a local ``multiprocessing`` pool
when ``procs > 1`` -- and streams each result (plus its execution metadata:
wall-clock seconds, worker pid, host name, worker id) back as it completes.
A background thread heartbeats the active lease at a third of the broker's
lease TTL, so long tasks never expire while the worker is alive.

The daemon is persistent by default: when a sweep drains (or the broker
goes away between sweeps) it disconnects and keeps polling the address, so
one worker pool can serve many successive sweeps.  Reconnects and
empty-queue polls both use **exponential backoff with jitter and a capped
ceiling** (:class:`~repro.runner.faults.Backoff`): a fleet of workers
facing a restarted broker spreads its reconnect attempts instead of
stampeding it, while a drained-but-alive broker is still polled promptly.
``exit_when_drained`` flips the daemon into one-shot mode for loopback
helpers and demos: it exits after the first drained sweep, or after
``giveup_attempts`` consecutive failed connection attempts (counted on the
backoff, not on wall-clock), so orphaned loopback workers cannot outlive a
crashed parent.

A :class:`~repro.runner.faults.FaultInjector` (optional, off by default)
threads the chaos sites through the daemon: refused connects, wire faults
on every sent line, worker crashes (``os._exit``) and heartbeat-suppressed
hangs mid-lease, and slowed tasks.

**Graceful shutdown** (fleet scale-down): :meth:`WorkerDaemon.request_shutdown`
(wired to SIGTERM by the ``worker`` CLI) finishes the task currently
executing, sends an ``abandon`` message explicitly returning the rest of
the lease to the broker -- an uncharged front-of-queue requeue, so the
tasks are regranted immediately instead of waiting out lease expiry and
burning a retry -- and exits the daemon loop.  The multiprocessing-pool
path finishes its in-flight lease instead (results already fan out
unordered, so there is no single "current" task to stop after).
"""

from __future__ import annotations

import os
import socket
import threading
import time
import traceback
from typing import Any, Dict, List, Optional, Tuple

from repro.runner.backends import WorkItem, execute_work_item
from repro.runner.distributed.protocol import (
    PROTOCOL_VERSION,
    read_message,
    reader_for,
    send_message,
)
from repro.runner.faults import CRASH_EXIT_CODE, Backoff, FaultInjector

__all__ = ["WorkerDaemon", "execute_leased_item"]


def execute_leased_item(item: WorkItem) -> Tuple[int, Any, Optional[Dict[str, Any]], Optional[str], Optional[str]]:
    """Run one leased task, never raising: ``(id, result, meta, error, tb)``.

    Module-level (and therefore picklable) so the daemon's local
    ``multiprocessing`` pool can map it; errors are captured per task so one
    failing task costs one ``error`` message, not the whole lease.
    """
    try:
        index, result, meta = execute_work_item(item)
        return index, result, meta, None, None
    except Exception as exc:  # noqa: BLE001 - reported to the broker
        return item[0], None, None, f"{type(exc).__name__}: {exc}", traceback.format_exc()


class WorkerDaemon:
    """Lease tasks from a broker and stream results back.

    Parameters
    ----------
    host / port:
        The broker address to connect (and keep reconnecting) to.
    procs:
        Local worker processes; the daemon requests ``procs`` tasks per
        lease so its pool stays fed.
    lease_capacity:
        Tasks to request per lease (default ``procs``).  Tests and drain
        scenarios raise it so one lease carries several serially-executed
        tasks.
    exit_when_drained:
        One-shot mode: return after the first drained sweep instead of
        polling for the next one.
    reconnect_delay_s / reconnect_max_s:
        Base and ceiling of the exponential reconnect backoff while the
        broker is unreachable (a completed handshake resets the streak).
    poll_interval_s / poll_max_s:
        Base and ceiling of the poll backoff while the queue is empty but
        the sweep is not drained (a granted lease resets the streak).
    giveup_attempts:
        In one-shot mode only: exit (code 1) after this many consecutive
        failed connection attempts, so orphaned loopback workers cannot
        outlive a crashed parent.  Counted on the backoff's failure streak,
        not on wall iterations.
    injector:
        Optional :class:`~repro.runner.faults.FaultInjector` threading the
        worker-side chaos sites (refused connects, wire faults, crashes,
        hangs, slow tasks) through the daemon.
    verbose:
        Log connection / lease events to ``log_stream`` (default stderr).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        procs: int = 1,
        lease_capacity: Optional[int] = None,
        worker_id: Optional[str] = None,
        exit_when_drained: bool = False,
        reconnect_delay_s: float = 0.5,
        reconnect_max_s: float = 15.0,
        poll_interval_s: float = 0.2,
        poll_max_s: float = 2.0,
        giveup_attempts: int = 8,
        injector: Optional[FaultInjector] = None,
        verbose: bool = False,
        log_stream: Optional[Any] = None,
    ) -> None:
        if procs < 1:
            raise ValueError(f"procs must be >= 1, got {procs}")
        if lease_capacity is not None and lease_capacity < 1:
            raise ValueError(f"lease_capacity must be >= 1, got {lease_capacity}")
        if giveup_attempts < 1:
            raise ValueError(f"giveup_attempts must be >= 1, got {giveup_attempts}")
        self.host = host
        self.port = port
        self.procs = procs
        self.lease_capacity = lease_capacity if lease_capacity is not None else procs
        self.worker_id = worker_id or f"{socket.gethostname()}:{os.getpid()}"
        self.exit_when_drained = exit_when_drained
        self.reconnect_delay_s = reconnect_delay_s
        self.reconnect_max_s = max(reconnect_delay_s, reconnect_max_s)
        self.poll_interval_s = poll_interval_s
        self.poll_max_s = max(poll_interval_s, poll_max_s)
        self.giveup_attempts = giveup_attempts
        self.injector = injector
        self.verbose = verbose
        self.log_stream = log_stream
        self._stop = threading.Event()
        self._drain = threading.Event()
        self._abandoned: List[int] = []
        self._send_lock = threading.Lock()
        self._suppress_heartbeats = threading.Event()
        self._pool = None
        self._welcomed = False
        #: Tasks executed (including errored) since the daemon started.
        self.tasks_run = 0
        #: Consecutive failed connection attempts (mirrors the backoff
        #: streak; exposed for tests and post-mortems).
        self.connect_failures = 0

    # ------------------------------------------------------------------ #
    def stop(self) -> None:
        """Ask the daemon loop to exit after the current lease."""
        self._stop.set()

    def request_shutdown(self) -> None:
        """Graceful shutdown: finish the current *task*, abandon the rest.

        The serial execution path stops between tasks; the unstarted
        remainder of the lease is explicitly returned to the broker with an
        ``abandon`` message (uncharged, front-of-queue requeue) so another
        worker picks it up immediately.  The CLI wires SIGTERM here.
        """
        self._log("shutdown requested, draining current lease")
        self._drain.set()
        self._stop.set()

    def run(self) -> int:
        """The daemon loop; returns a process exit code."""
        backoff = Backoff(base_s=self.reconnect_delay_s, cap_s=self.reconnect_max_s)
        try:
            while not self._stop.is_set():
                sock = self._connect(backoff)
                if sock is None:
                    if self._backoff_or_give_up(backoff):
                        return 1
                    continue
                # Generous hello/welcome deadline; _session tightens it to a
                # multiple of the broker's lease TTL once known.  Without a
                # read timeout a broker host that dies silently (power loss,
                # partition -- no FIN/RST) would leave the daemon blocked in
                # readline forever instead of reconnecting.
                sock.settimeout(30.0)
                self._welcomed = False
                try:
                    drained = self._session(sock)
                except (OSError, ValueError):
                    drained = False
                finally:
                    try:
                        sock.close()
                    except OSError:
                        pass
                if self._welcomed:
                    # Only a broker that completed the handshake counts as
                    # "reachable": a TCP connect to some other service (or a
                    # protocol-mismatched broker) must not reset the give-up
                    # streak, or a one-shot worker would hammer it forever.
                    backoff.reset()
                    self.connect_failures = 0
                elif self._backoff_or_give_up(backoff):
                    return 1
                else:
                    continue
                if drained:
                    self._log("sweep drained")
                    if self.exit_when_drained:
                        return 0
                self._stop.wait(self.reconnect_delay_s)
            return 0
        finally:
            self._close_pool()

    def _connect(self, backoff: Backoff) -> Optional[socket.socket]:
        """One connection attempt; ``None`` on (possibly injected) failure."""
        if self.injector is not None and self.injector.refuse_connect():
            self._log("fault: connect refused by injector")
            return None
        # The connect timeout grows with the failure streak: a broker that
        # is merely slow to accept gets more patience on each retry, while
        # the first attempts stay snappy.
        timeout = min(10.0, 2.0 * (backoff.attempts + 1))
        try:
            sock = socket.create_connection((self.host, self.port), timeout=timeout)
        except OSError:
            return None
        # Loopback self-connect guard: retrying against a dead broker on an
        # ephemeral-range port can land source port == destination port (TCP
        # simultaneous open), a socket connected to *itself*.  Left alone it
        # would both wedge this worker (it reads back its own hello) and
        # squat the port against the broker's restart bind.
        try:
            if sock.getsockname() == sock.getpeername():
                self._log("self-connected (broker down); retrying")
                sock.close()
                return None
        except OSError:
            sock.close()
            return None
        return sock

    def _backoff_or_give_up(self, backoff: Backoff) -> bool:
        """Record one failed attempt; True when a one-shot worker gives up."""
        delay = backoff.next_delay()
        self.connect_failures = backoff.attempts
        if self.exit_when_drained and backoff.attempts >= self.giveup_attempts:
            self._log(
                f"no valid broker reachable after {backoff.attempts} "
                "attempt(s), giving up"
            )
            return True
        self._log(f"broker unreachable, retrying in {delay:.1f}s")
        self._stop.wait(delay)
        return False

    # ------------------------------------------------------------------ #
    def _session(self, sock: socket.socket) -> bool:
        """One broker connection; True when the sweep drained."""
        self._send(
            sock,
            {
                "type": "hello",
                "worker_id": self.worker_id,
                "host": socket.gethostname(),
                "pid": os.getpid(),
                "procs": self.procs,
                "protocol": PROTOCOL_VERSION,
            },
        )
        reader = reader_for(sock)
        welcome = read_message(reader)
        if welcome is None or welcome.get("type") != "welcome":
            return False
        self._welcomed = True
        lease_ttl_s = float(welcome.get("lease_ttl_s", 30.0))
        heartbeat_interval = max(0.1, lease_ttl_s / 3.0)
        # The broker replies to every lease request promptly (tasks or
        # empty), so a read stalling for several TTLs means the broker is
        # gone without a FIN; time out (socket.timeout is an OSError, so the
        # session aborts into the reconnect loop).
        sock.settimeout(max(10.0, 4.0 * lease_ttl_s))
        self._log(f"connected to {self.host}:{self.port}")
        poll = Backoff(base_s=self.poll_interval_s, cap_s=self.poll_max_s)
        while not self._stop.is_set():
            self._send(sock, {"type": "lease", "capacity": self.lease_capacity})
            message = read_message(reader)
            if message is None:
                return False
            kind = message.get("type")
            if kind == "empty":
                if message.get("done"):
                    return True
                self._stop.wait(poll.next_delay())
                continue
            if kind != "tasks":
                return False
            poll.reset()
            self._run_lease(sock, message, heartbeat_interval)
        return False

    def _run_lease(
        self, sock: socket.socket, message: Dict[str, Any], heartbeat_interval: float
    ) -> None:
        lease_id = message.get("lease")
        items: List[WorkItem] = [
            (task["id"], task["task"], dict(task["params"]), task.get("module"))
            for task in message.get("tasks", ())
        ]
        self._log(f"lease {lease_id}: {len(items)} task(s)")
        done = threading.Event()
        heartbeater = threading.Thread(
            target=self._heartbeat_loop,
            args=(sock, lease_id, heartbeat_interval, done),
            daemon=True,
        )
        heartbeater.start()
        try:
            for outcome in self._execute_items(items):
                index, result, meta, error, tb = outcome
                self.tasks_run += 1
                self._inject_task_faults(index)
                if error is not None:
                    self._send(
                        sock,
                        {
                            "type": "error",
                            "lease": lease_id,
                            "id": index,
                            "error": error,
                            "traceback": tb,
                        },
                    )
                    continue
                meta = dict(meta or {})
                meta["host"] = socket.gethostname()
                meta["worker_id"] = self.worker_id
                self._send(
                    sock,
                    {
                        "type": "result",
                        "lease": lease_id,
                        "id": index,
                        "result": result,
                        "meta": meta,
                    },
                )
        finally:
            done.set()
            heartbeater.join(timeout=1.0)
            if self._abandoned:
                try:
                    self._send(
                        sock,
                        {
                            "type": "abandon",
                            "lease": lease_id,
                            "ids": list(self._abandoned),
                        },
                    )
                    self._log(
                        f"lease {lease_id}: abandoned {len(self._abandoned)} task(s)"
                    )
                except OSError:
                    # Broker gone; lease expiry will requeue them anyway.
                    pass
                self._abandoned = []

    def _inject_task_faults(self, index: int) -> None:
        """Per-task chaos sites, applied between execution and reporting."""
        injector = self.injector
        if injector is None or not injector.enabled:
            return
        delay = injector.slow_task()
        if delay:
            time.sleep(delay)
        if injector.crash_worker():
            # A real crash: no goodbye, no result.  The broker sees the
            # dropped connection and requeues the lease.
            self._log(f"fault: crashing before reporting task {index}")
            os._exit(CRASH_EXIT_CODE)
        hang = injector.hang_worker()
        if hang:
            # A hung (but alive) worker: heartbeats stop, the lease is left
            # to expire, and the eventually-reported result arrives as a
            # zombie duplicate the broker must ignore.
            self._log(f"fault: hanging {hang:.1f}s on task {index}")
            self._suppress_heartbeats.set()
            try:
                time.sleep(hang)
            finally:
                self._suppress_heartbeats.clear()

    def _execute_items(self, items: List[WorkItem]):
        if self.procs > 1 and len(items) > 1:
            # The pool has the whole lease in flight; finish it.  Graceful
            # drain only short-circuits the serial path below.
            pool = self._ensure_pool()
            yield from pool.imap_unordered(execute_leased_item, items)
        else:
            for position, item in enumerate(items):
                if self._drain.is_set():
                    self._abandoned.extend(entry[0] for entry in items[position:])
                    return
                yield execute_leased_item(item)

    def _heartbeat_loop(
        self,
        sock: socket.socket,
        lease_id: Any,
        interval: float,
        done: threading.Event,
    ) -> None:
        while not done.wait(interval):
            if self._suppress_heartbeats.is_set():
                continue
            try:
                self._send(sock, {"type": "heartbeat", "lease": lease_id})
            except OSError:
                return

    # ------------------------------------------------------------------ #
    def _send(self, sock: socket.socket, message: Dict[str, Any]) -> None:
        # Results (main thread) and heartbeats (side thread) share the
        # socket; serialize the line writes.
        with self._send_lock:
            send_message(sock, message, injector=self.injector)

    def _ensure_pool(self):
        if self._pool is None:
            from repro.runner.backends import worker_context

            self._pool = worker_context().Pool(processes=self.procs)
        return self._pool

    def _close_pool(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def _log(self, text: str) -> None:
        if self.verbose:
            import sys

            stream = self.log_stream if self.log_stream is not None else sys.stderr
            stream.write(f"[worker {self.worker_id}] {text}\n")
            stream.flush()
