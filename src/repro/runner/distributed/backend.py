"""The ``distributed`` execution backend: a broker behind the runner API.

``SweepRunner(backend=DistributedBackend(...))`` executes its pending work
items by starting a :class:`~repro.runner.distributed.broker.Broker` for
the duration of the sweep and yielding completions as workers stream them
in.  Two modes:

Loopback (``spawn_workers > 0``)
    The backend spawns that many local worker-daemon processes
    (``python -m repro.cli worker --connect ... --exit-when-drained``),
    watches them while the sweep runs (a crashed worker is respawned, up to
    a bounded budget), and terminates them when the sweep finishes.  This
    is the one-machine fan-out path -- and what the fault-tolerance tests
    and ``make dist-demo`` exercise.

Listen (``spawn_workers == 0``)
    The backend binds ``listen`` and waits for externally started workers
    (any host that can reach the address).  The broker address and the
    exact ``worker`` command to paste on remote machines are announced on
    stderr.

Connect (``connect=(host, port)``)
    No private broker at all: the backend submits the sweep to a standing
    :class:`~repro.runner.hub.service.SweepHub` at that address and
    streams its results back.  The hub owns the worker fleet and the
    artifact persistence; many clients can submit concurrently and the
    hub fair-shares the fleet across them.  ``--connect HOST:PORT`` on
    the runner CLIs selects this mode.
"""

from __future__ import annotations

import itertools
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.runner.backends import CompletedItem, ExecutionBackend, WorkItem
from repro.runner.distributed.broker import Broker, BrokerError
from repro.runner.distributed.protocol import format_address
from repro.runner.faults import FaultInjector, FaultPlan

__all__ = ["DistributedBackend", "spawn_loopback_worker"]


def spawn_loopback_worker(
    address: Tuple[str, int],
    *,
    procs: int = 1,
    exit_when_drained: bool = True,
    verbose: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    fault_salt: str = "",
) -> "subprocess.Popen[bytes]":
    """Start a worker-daemon process connected to ``address``.

    The child runs ``python -m repro.cli worker`` with ``PYTHONPATH``
    extended to wherever this ``repro`` package was imported from, so the
    loopback path works from a source checkout without installation.
    ``fault_plan`` (with its stream-separating ``fault_salt``) is forwarded
    on the command line so the child builds the same deterministic
    :class:`~repro.runner.faults.FaultInjector` schedule.
    """
    import repro

    source_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        source_root if not existing else source_root + os.pathsep + existing
    )
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "worker",
        "--connect",
        format_address(address),
        "--workers",
        str(procs),
    ]
    if exit_when_drained:
        command.append("--exit-when-drained")
    if verbose:
        command.append("--verbose")
    if fault_plan is not None:
        command.extend(["--fault-plan", json.dumps(fault_plan.to_dict())])
        if fault_salt:
            command.extend(["--fault-salt", fault_salt])
    return subprocess.Popen(
        command, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
    )


class DistributedBackend(ExecutionBackend):
    """Broker/worker execution behind the unchanged ``SweepRunner`` API.

    Parameters
    ----------
    listen:
        ``(host, port)`` for the broker socket.  Port ``0`` (the default)
        picks a free port -- the natural choice for loopback mode.
    spawn_workers:
        Local worker daemons to spawn per sweep (0 = listen-only).
    worker_procs:
        Local processes per spawned worker daemon.
    lease_ttl_s / max_retries / chunk_size:
        Broker lease semantics (see :class:`Broker`).
    fault_plan:
        Optional :class:`~repro.runner.faults.FaultPlan` to thread through
        the whole backend: the broker consults it under the ``"broker"``
        salt, and every spawned loopback worker receives it (with a
        per-spawn ``worker-<ordinal>`` salt, so a respawned worker draws a
        fresh decision stream instead of deterministically re-crashing).
        ``None`` -- the production default -- injects nothing.
    respawn_factor:
        Respawn budget for crashed loopback workers, as a multiple of
        ``spawn_workers`` (beyond it the sweep fails rather than stalls).
        Chaos tests raise it so injected crash storms stay survivable.
    quiet:
        Suppress the stderr announcement of the broker address.
    connect:
        ``(host, port)`` of a standing Sweep Hub to submit to instead of
        running a private broker.  Mutually exclusive with the
        broker-owning knobs (``spawn_workers``, ``lease_ttl_s``,
        ``max_retries``, ``chunk_size``, ``fault_plan``): those belong to
        the hub's own configuration, and silently ignoring them here would
        mislead.
    priority / submit_name:
        Hub-submission metadata (connect mode only): fair-share priority
        and the display name shown by ``hub status`` and the dashboard.
    reconnect_attempts:
        Connect mode only: consecutive failed hub-reconnect attempts the
        submission tolerates before giving up (see
        :class:`~repro.runner.hub.client.HubSubmission`).  ``0`` restores
        fail-fast; the default rides out hub restarts.
    """

    name = "distributed"
    parallel = True
    #: The broker persists fresh results through the ArtifactStore itself
    #: (before publishing them), so dispatch-time dedupe of duplicate
    #: configs never races the runner; the runner therefore skips its own
    #: store step for this backend.
    persists = True

    #: Default ``respawn_factor`` (see above).
    RESPAWN_FACTOR = 2

    def __init__(
        self,
        *,
        listen: Tuple[str, int] = ("127.0.0.1", 0),
        spawn_workers: int = 0,
        worker_procs: int = 1,
        lease_ttl_s: float = 30.0,
        max_retries: int = 2,
        chunk_size: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
        respawn_factor: Optional[int] = None,
        quiet: bool = False,
        connect: Optional[Tuple[str, int]] = None,
        priority: int = 0,
        submit_name: str = "",
        reconnect_attempts: int = 8,
    ) -> None:
        if spawn_workers < 0:
            raise ValueError(f"spawn_workers must be >= 0, got {spawn_workers}")
        if worker_procs < 1:
            raise ValueError(f"worker_procs must be >= 1, got {worker_procs}")
        if respawn_factor is not None and respawn_factor < 0:
            raise ValueError(f"respawn_factor must be >= 0, got {respawn_factor}")
        if connect is not None:
            conflicts = []
            if spawn_workers:
                conflicts.append("spawn_workers")
            if lease_ttl_s != 30.0:
                conflicts.append("lease_ttl_s")
            if max_retries != 2:
                conflicts.append("max_retries")
            if chunk_size is not None:
                conflicts.append("chunk_size")
            if fault_plan is not None:
                conflicts.append("fault_plan")
            if conflicts:
                raise ValueError(
                    "connect mode submits to a standing hub, which owns "
                    f"{', '.join(conflicts)}; configure them on `hub serve`"
                )
        elif priority:
            raise ValueError("priority only applies with connect (hub submission)")
        if reconnect_attempts < 0:
            raise ValueError(
                f"reconnect_attempts must be >= 0, got {reconnect_attempts}"
            )
        self.connect = connect
        self.priority = priority
        self.submit_name = submit_name
        self.reconnect_attempts = reconnect_attempts
        self.listen = listen
        self.spawn_workers = spawn_workers
        self.worker_procs = worker_procs
        self.lease_ttl_s = lease_ttl_s
        self.max_retries = max_retries
        self.chunk_size = chunk_size
        self.fault_plan = fault_plan
        self.respawn_factor = (
            self.RESPAWN_FACTOR if respawn_factor is None else respawn_factor
        )
        self.quiet = quiet
        #: Broker stats of the most recent sweep (retries, cache hits, ...).
        self.last_stats: dict = {}
        #: Broker structured event log of the most recent sweep.
        self.last_events: List[Dict[str, Any]] = []
        #: Broker-side injected-fault counts of the most recent sweep.
        self.last_faults: Dict[str, int] = {}

    def describe(self) -> str:
        if self.connect is not None:
            return f"distributed(hub {format_address(self.connect)})"
        if self.spawn_workers:
            return f"distributed(loopback x{self.spawn_workers})"
        return f"distributed(listen {format_address(self.listen)})"

    # ------------------------------------------------------------------ #
    def execute(
        self,
        pending: Sequence[WorkItem],
        *,
        store: Optional[Any] = None,
        force: bool = False,
    ) -> Iterator[CompletedItem]:
        if not pending:
            return
        if self.connect is not None:
            yield from self._execute_remote(pending, force=force)
            return
        host, port = self.listen
        broker_injector = (
            FaultInjector(self.fault_plan, salt="broker")
            if self.fault_plan is not None
            else None
        )
        broker = Broker(
            pending,
            store=store,
            force=force,
            host=host,
            port=port,
            lease_ttl_s=self.lease_ttl_s,
            max_retries=self.max_retries,
            chunk_size=self.chunk_size,
            injector=broker_injector,
        )
        address = broker.start()
        workers: List["subprocess.Popen[bytes]"] = []
        respawns_left = self.respawn_factor * self.spawn_workers
        # Every spawn (initial or respawn) gets the next ordinal, so each
        # worker process draws an independent deterministic fault stream.
        spawn_ordinals = itertools.count()

        def spawn_one() -> "subprocess.Popen[bytes]":
            return spawn_loopback_worker(
                address,
                procs=self.worker_procs,
                exit_when_drained=True,
                fault_plan=self.fault_plan,
                fault_salt=f"worker-{next(spawn_ordinals)}",
            )

        def watch_workers() -> None:
            # Replace loopback workers that died mid-sweep; a bounded budget
            # turns a crash loop into a failed sweep instead of a stall.
            nonlocal respawns_left
            for i, process in enumerate(workers):
                if process.poll() is None or broker.drained:
                    continue
                if respawns_left <= 0:
                    raise BrokerError(
                        f"loopback workers keep dying (respawn budget of "
                        f"{self.respawn_factor * self.spawn_workers} exhausted); "
                        "see the broker retry stats for the failing task"
                    )
                respawns_left -= 1
                workers[i] = spawn_one()

        try:
            if self.spawn_workers:
                workers.extend(spawn_one() for _ in range(self.spawn_workers))
            elif not self.quiet:
                # A wildcard bind (0.0.0.0 / ::) is not a connectable
                # address; substitute this machine's hostname so the
                # announced worker command is paste-able on remote hosts.
                host_part, port_part = address
                if host_part in ("0.0.0.0", "::", ""):
                    import socket as _socket

                    host_part = _socket.gethostname()
                connect_to = format_address((host_part, port_part))
                sys.stderr.write(
                    f"[sweep] broker listening on {format_address(address)} -- "
                    f"start workers with: repro-byzantine-counting worker "
                    f"--connect {connect_to}\n"
                )
                sys.stderr.flush()
            yield from broker.results(poll=watch_workers if workers else None)
        finally:
            self.last_stats = dict(broker.stats)
            self.last_stats["events_dropped"] = broker.events_dropped
            self.last_events = list(broker.events)
            self.last_faults = dict(broker.fault_counts)
            broker.stop()
            for process in workers:
                if process.poll() is None:
                    process.terminate()
            for process in workers:
                try:
                    process.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait(timeout=5.0)

    def _execute_remote(
        self, pending: Sequence[WorkItem], *, force: bool
    ) -> Iterator[CompletedItem]:
        """Submit ``pending`` to the standing hub and stream its results.

        The hub persists fresh results into *its* artifact store, so
        ``persists=True`` still holds; point the runner's ``--artifact-dir``
        at the same root the hub serves and the client-side journal, cache
        prefill, and ``--resume`` all compose exactly as with a private
        broker.  The runner's ``store`` argument is intentionally unused
        here -- persistence is the hub's job, and a second writer would
        only race it.
        """
        # Imported lazily: repro.runner.hub imports this module for the
        # backend seam, so a top-level import would be circular.
        from repro.runner.hub.client import HubSubmission

        if not self.quiet:
            sys.stderr.write(
                f"[sweep] submitting {len(pending)} task(s) to hub at "
                f"{format_address(self.connect)}\n"
            )
            sys.stderr.flush()
        submission = HubSubmission(
            self.connect,
            pending,
            name=self.submit_name,
            priority=self.priority,
            force=force,
            reconnect_attempts=self.reconnect_attempts,
            quiet=self.quiet,
        )
        try:
            yield from submission
        finally:
            self.last_stats = dict(submission.stats)
            self.last_stats["reconnects"] = submission.reconnects
            self.last_events = []
            self.last_faults = {}
