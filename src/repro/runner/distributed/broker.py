"""The lease-based task broker of the distributed sweep backend.

A :class:`Broker` owns one sweep's pending work items and serves them to
worker daemons over the line-delimited-JSON TCP protocol
(:mod:`repro.runner.distributed.protocol`).  Dispatch is **lease-based**:

- a worker's ``lease`` request is granted a chunk of tasks with a deadline
  (``lease_ttl_s`` from now);
- every streamed result and every explicit heartbeat renews the deadline;
- a lease whose deadline passes -- or whose connection drops, the fast
  path for a killed worker -- returns its unfinished tasks to the front of
  the queue for re-dispatch;
- a task is re-dispatched at most ``max_retries`` times beyond its first
  attempt; exhausting that budget fails the sweep with the worker's error.

Duplicate results (a zombie worker finishing an expired lease) are ignored
after the first; since tasks are pure functions of their configs, whichever
copy arrives first is *the* result.

Before dispatching a task the broker re-checks the shared artifact cache
(``store``): a hit -- typically a duplicate config completed earlier in the
same sweep, or a sibling sweep writing to the same artifact dir -- is
completed with the cached result instead of shipped.  Fresh results are
persisted through :class:`~repro.runner.artifacts.ArtifactStore` exactly
as the pool path does, *before* entering the completion queue, so dedupe
never races persistence.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from collections import deque
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.runner.artifacts import MISSING, ArtifactStore
from repro.runner.backends import CompletedItem, WorkItem
from repro.runner.config import SweepConfig
from repro.runner.distributed.protocol import (
    PROTOCOL_VERSION,
    read_message,
    reader_for,
    send_message,
)
from repro.runner.faults import FaultInjector

__all__ = ["Broker", "BrokerError", "InjectedBrokerCrash"]

#: Sentinel pushed on the completion queue when the sweep fails.
_FAILED = object()

#: Structured event-log cap; beyond it events are counted, not stored.
EVENTS_CAP = 500

#: Attempts (first try included) for persisting one artifact before the
#: failure is declared sweep-fatal.  Transient filesystem errors -- a busy
#: network mount, an injected ``artifact-write`` fault -- should cost a
#: short retry, not the sweep.
PERSIST_ATTEMPTS = 5


class BrokerError(RuntimeError):
    """A sweep-fatal broker condition (task retries exhausted, ...)."""


class InjectedBrokerCrash(BrokerError):
    """The fault injector's ``crash-broker`` site fired: the broker dies
    mid-sweep (after persisting, before publishing).  Recovery is the
    ordinary resume path: re-run the sweep with ``--resume``."""


class _TaskState:
    """One work item's broker-side lifecycle."""

    __slots__ = ("index", "task", "params", "module", "dispatches", "done")

    def __init__(self, item: WorkItem) -> None:
        self.index, self.task, self.params, self.module = item
        self.dispatches = 0
        self.done = False

    def config(self) -> SweepConfig:
        return SweepConfig(self.task, self.params)


class _Lease:
    __slots__ = ("lease_id", "worker_id", "pending", "deadline")

    def __init__(self, lease_id: int, worker_id: str, ids: Set[int], deadline: float):
        self.lease_id = lease_id
        self.worker_id = worker_id
        self.pending = ids
        self.deadline = deadline


class Broker:
    """Serve one sweep's work items to TCP workers, lease by lease.

    Parameters
    ----------
    items:
        The runner's pending work items (config index, task, params, module).
    store / force:
        The runner's artifact cache settings.  With a store and
        ``force=False`` the broker dedupes against the cache at dispatch
        time and persists every fresh result through it.
    host / port:
        Bind address (port ``0`` picks a free port; see :attr:`address`).
    lease_ttl_s:
        Lease lifetime without a result or heartbeat.  Workers heartbeat at
        a third of this, so only a hung or killed worker ever expires.
    max_retries:
        Re-dispatch budget per task beyond its first attempt.
    chunk_size:
        Hard cap on tasks per lease (``None``: honor the worker's requested
        capacity, which defaults to its local process count).
    injector:
        Optional :class:`~repro.runner.faults.FaultInjector` for the
        broker-side fault sites (wire faults on broker sends, artifact-write
        failures, broker crashes).  ``None`` disables injection.
    """

    def __init__(
        self,
        items: Sequence[WorkItem],
        *,
        store: Optional[ArtifactStore] = None,
        force: bool = False,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_ttl_s: float = 30.0,
        max_retries: int = 2,
        chunk_size: Optional[int] = None,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        if lease_ttl_s <= 0:
            raise ValueError(f"lease_ttl_s must be > 0, got {lease_ttl_s}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.store = store
        self.force = force
        self.lease_ttl_s = lease_ttl_s
        self.max_retries = max_retries
        self.chunk_size = chunk_size
        self.injector = injector
        self._bind = (host, port)
        self.address: Optional[Tuple[str, int]] = None
        #: Structured event log (lease grants, expiries, retries, dedupe
        #: hits, ...), capped at :data:`EVENTS_CAP`; surfaced in the sweep
        #: journal and on ``DistributedBackend.last_events``.
        self.events: List[Dict[str, Any]] = []
        self._events_dropped = 0
        self._t0 = time.monotonic()

        self._tasks: Dict[int, _TaskState] = {}
        self._queue: deque = deque()
        for item in items:
            state = _TaskState(item)
            if state.index in self._tasks:
                raise ValueError(f"duplicate work item index {state.index}")
            self._tasks[state.index] = state
            self._queue.append(state.index)
        self._outstanding = len(self._tasks)

        self._lock = threading.Lock()
        self._completed: "queue.Queue" = queue.Queue()
        self._leases: Dict[int, _Lease] = {}
        self._next_lease_id = 0
        self._failure: Optional[BaseException] = None
        self._stop = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._connections: List[socket.socket] = []
        self.stats: Dict[str, int] = {
            "connections": 0,
            "leases": 0,
            "dispatched": 0,
            "completed": 0,
            "cache_hits": 0,
            "retries": 0,
            "expired_leases": 0,
            "worker_errors": 0,
            "duplicate_results": 0,
        }

    # ------------------------------------------------------------------ #
    # Structured event log
    # ------------------------------------------------------------------ #
    def _event_locked(self, kind: str, **fields: Any) -> None:
        """Append one event (callers hold ``self._lock``)."""
        if len(self.events) >= EVENTS_CAP:
            self._events_dropped += 1
            return
        event = {"t": round(time.monotonic() - self._t0, 3), "event": kind}
        event.update(fields)
        self.events.append(event)

    def _event(self, kind: str, **fields: Any) -> None:
        with self._lock:
            self._event_locked(kind, **fields)

    @property
    def events_dropped(self) -> int:
        """Events beyond the cap (counted so the log is honest about it)."""
        return self._events_dropped

    @property
    def fault_counts(self) -> Dict[str, int]:
        """Broker-side injected-fault counts (empty without an injector)."""
        return dict(self.injector.injected) if self.injector is not None else {}

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> Tuple[str, int]:
        """Bind, start the accept/reaper threads, return the bound address."""
        self._t0 = time.monotonic()
        self._listener = socket.create_server(self._bind)
        self._listener.settimeout(0.2)
        self.address = self._listener.getsockname()[:2]
        for target in (self._accept_loop, self._reaper_loop):
            thread = threading.Thread(target=target, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self.address

    def stop(self) -> None:
        """Stop serving; close the listener and every worker connection."""
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=2.0)

    def __enter__(self) -> "Broker":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Consumption (the backend side)
    # ------------------------------------------------------------------ #
    def results(
        self, *, poll: Optional[Any] = None, poll_interval: float = 0.25
    ) -> Iterator[CompletedItem]:
        """Yield ``(index, result, meta)`` as tasks complete, any order.

        ``poll`` (optional zero-arg callable) runs every ``poll_interval``
        while waiting -- the loopback backend uses it to watch its spawned
        worker processes.  Raises :class:`BrokerError` if the sweep fails.
        """
        delivered = 0
        total = len(self._tasks)
        while delivered < total:
            try:
                item = self._completed.get(timeout=poll_interval)
            except queue.Empty:
                if self._failure is not None:
                    raise self._failure
                if poll is not None:
                    poll()
                continue
            if item is _FAILED:
                raise self._failure  # type: ignore[misc]
            yield item
            delivered += 1

    @property
    def drained(self) -> bool:
        with self._lock:
            return self._outstanding == 0

    # ------------------------------------------------------------------ #
    # Accept / reap threads
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._lock:
                self._connections.append(conn)
                self.stats["connections"] += 1
            thread = threading.Thread(target=self._serve, args=(conn,), daemon=True)
            thread.start()

    def _reaper_loop(self) -> None:
        interval = max(0.05, self.lease_ttl_s / 4.0)
        while not self._stop.wait(interval):
            now = time.monotonic()
            with self._lock:
                expired = [
                    lease for lease in self._leases.values() if lease.deadline < now
                ]
                for lease in expired:
                    self.stats["expired_leases"] += 1
                    self._event_locked(
                        "lease-expired",
                        lease=lease.lease_id,
                        worker=lease.worker_id,
                        tasks=sorted(lease.pending),
                    )
                    self._requeue_lease_locked(
                        lease, reason=f"lease expired after {self.lease_ttl_s:.1f}s"
                    )

    # ------------------------------------------------------------------ #
    # Per-connection handler
    # ------------------------------------------------------------------ #
    def _serve(self, conn: socket.socket) -> None:
        worker_id = "?"
        conn_leases: Set[int] = set()
        try:
            reader = reader_for(conn)
            hello = read_message(reader)
            if (
                hello is None
                or hello.get("type") != "hello"
                or hello.get("protocol") != PROTOCOL_VERSION
            ):
                send_message(
                    conn,
                    {
                        "type": "goodbye",
                        "error": f"expected hello with protocol {PROTOCOL_VERSION}",
                    },
                    injector=self.injector,
                )
                return
            worker_id = str(hello.get("worker_id", "?"))
            self._event("worker-connect", worker=worker_id)
            send_message(
                conn,
                {
                    "type": "welcome",
                    "protocol": PROTOCOL_VERSION,
                    "lease_ttl_s": self.lease_ttl_s,
                },
                injector=self.injector,
            )
            while not self._stop.is_set():
                message = read_message(reader)
                if message is None:
                    return
                kind = message.get("type")
                if kind == "lease":
                    self._grant(conn, worker_id, message, conn_leases)
                elif kind == "result":
                    self._on_result(message)
                elif kind == "error":
                    self._on_error(message, worker_id)
                elif kind == "heartbeat":
                    self._renew(message.get("lease"))
                else:
                    return  # protocol violation: drop the connection
        except (OSError, ValueError):
            pass  # connection lost / garbage on the wire: clean up below
        finally:
            with self._lock:
                # Fast path for a killed worker: its unfinished leases are
                # requeued the moment the connection drops, without waiting
                # for the TTL reaper.
                for lease_id in conn_leases:
                    lease = self._leases.get(lease_id)
                    if lease is not None:
                        self._event_locked(
                            "requeue-on-disconnect",
                            lease=lease_id,
                            worker=worker_id,
                            tasks=sorted(lease.pending),
                        )
                        self._requeue_lease_locked(
                            lease, reason=f"worker {worker_id} disconnected"
                        )
                self._event_locked("worker-disconnect", worker=worker_id)
                if conn in self._connections:
                    self._connections.remove(conn)
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    # Message handling
    # ------------------------------------------------------------------ #
    def _grant(
        self,
        conn: socket.socket,
        worker_id: str,
        message: Dict[str, Any],
        conn_leases: Set[int],
    ) -> None:
        capacity = max(1, int(message.get("capacity", 1)))
        if self.chunk_size is not None:
            capacity = min(capacity, self.chunk_size)
        # Pop candidates under the lock, but probe the artifact cache (disk,
        # possibly a network mount) outside it: blocking I/O under the global
        # lock would stall heartbeat renewal and could expire healthy leases.
        with self._lock:
            candidates: List[_TaskState] = []
            while self._queue and len(candidates) < capacity:
                state = self._tasks[self._queue.popleft()]
                if not state.done:
                    candidates.append(state)
        hits: Dict[int, Any] = {}
        if self.store is not None and not self.force:
            for state in candidates:
                cached = self.store.load(state.config())
                if cached is not MISSING:
                    hits[state.index] = cached
        publish: List[CompletedItem] = []
        granted: List[_TaskState] = []
        with self._lock:
            for state in candidates:
                if state.done:  # a zombie result landed while we probed
                    continue
                if state.index in hits:
                    self._mark_done_locked(state, cache_hit=True)
                    self._event_locked("dedupe-hit", task=state.index)
                    publish.append((state.index, hits[state.index], None))
                    continue
                state.dispatches += 1
                granted.append(state)
            if not granted:
                done = self._outstanding == 0 or self._failure is not None
                reply: Dict[str, Any] = {"type": "empty", "done": done}
            else:
                lease_id = self._next_lease_id
                self._next_lease_id += 1
                lease = _Lease(
                    lease_id,
                    worker_id,
                    {state.index for state in granted},
                    time.monotonic() + self.lease_ttl_s,
                )
                self._leases[lease_id] = lease
                conn_leases.add(lease_id)
                self.stats["leases"] += 1
                self.stats["dispatched"] += len(granted)
                self._event_locked(
                    "lease-grant",
                    lease=lease_id,
                    worker=worker_id,
                    tasks=[state.index for state in granted],
                )
                reply = {
                    "type": "tasks",
                    "lease": lease_id,
                    "tasks": [
                        {
                            "id": state.index,
                            "task": state.task,
                            "params": state.params,
                            "module": state.module,
                        }
                        for state in granted
                    ],
                }
        for item in publish:
            self._completed.put(item)
        send_message(conn, reply, injector=self.injector)

    def _on_result(self, message: Dict[str, Any]) -> None:
        index = message.get("id")
        result = message.get("result")
        meta = message.get("meta")
        with self._lock:
            self._settle_lease_member_locked(message.get("lease"), index)
            state = self._tasks.get(index)  # type: ignore[arg-type]
            if state is None:
                return
            if state.done:
                self.stats["duplicate_results"] += 1
                self._event_locked("duplicate-result", task=index)
                return
            self._mark_done_locked(state)
        # Persist (disk I/O, so outside the lock) *before* publication:
        # dispatch-time dedupe of a duplicate config later in this sweep
        # must find the artifact already on disk.  Transient write failures
        # get a short bounded retry; an exhausted budget is sweep-fatal --
        # the task is already marked done, so swallowing the error would
        # leave its completion unpublished and the consumer waiting forever.
        if self.store is not None and not self._persist_with_retry(state, result, meta):
            return
        if self.injector is not None and self.injector.crash_broker():
            # The nastiest crash point: the artifact is on disk but the
            # completion never reaches the consumer.  Resume must recover
            # purely from the artifact cache.
            self._event("fault-broker-crash", task=state.index)
            with self._lock:
                self._fail_locked(
                    InjectedBrokerCrash(
                        "injected fault: broker crashed after persisting task "
                        f"{state.index}; re-run with --resume to recover"
                    )
                )
            return
        self._completed.put((state.index, result, meta if isinstance(meta, dict) else {}))

    def _persist_with_retry(self, state: _TaskState, result: Any, meta: Any) -> bool:
        """Store one artifact, retrying transient failures; False = fatal."""
        assert self.store is not None
        error: Optional[Exception] = None
        for attempt in range(1, PERSIST_ATTEMPTS + 1):
            try:
                if self.injector is not None and self.injector.fail_artifact_write():
                    raise OSError("injected fault: artifact write failed")
                self.store.store(
                    state.config(), result, meta=meta if isinstance(meta, dict) else {}
                )
                return True
            except Exception as exc:  # noqa: BLE001 - surfaced via results()
                error = exc
                self._event("persist-retry", task=state.index, attempt=attempt,
                            error=str(exc))
                if attempt < PERSIST_ATTEMPTS:
                    time.sleep(0.05 * attempt)
        with self._lock:
            self._fail_locked(
                BrokerError(
                    f"failed to persist artifact for task {state.task!r} "
                    f"(config index {state.index}) after {PERSIST_ATTEMPTS} "
                    f"attempt(s): {error}"
                )
            )
        return False

    def _on_error(self, message: Dict[str, Any], worker_id: str) -> None:
        index = message.get("id")
        with self._lock:
            live = self._settle_lease_member_locked(message.get("lease"), index)
            if not live:
                # A zombie error from an already-expired/requeued lease: the
                # task is owned elsewhere by now.  Acting on it would put a
                # duplicate entry in the queue and burn retry budget the
                # live copy never consumed.  (Zombie *results* are accepted
                # -- tasks are pure, so any copy is the result -- but zombie
                # errors are dropped.)
                return
            state = self._tasks.get(index)  # type: ignore[arg-type]
            if state is None or state.done:
                return
            self.stats["worker_errors"] += 1
            detail = message.get("error", "worker error")
            self._event_locked(
                "worker-error", task=index, worker=worker_id, error=str(detail)[:200]
            )
            self._retry_or_fail_locked(state, f"worker {worker_id}: {detail}")

    def _renew(self, lease_id: Any) -> None:
        with self._lock:
            lease = self._leases.get(lease_id)
            if lease is not None:
                lease.deadline = time.monotonic() + self.lease_ttl_s

    # ------------------------------------------------------------------ #
    # Locked helpers
    # ------------------------------------------------------------------ #
    def _settle_lease_member_locked(self, lease_id: Any, index: Any) -> bool:
        """Record ``index`` as reported under ``lease_id``; renew the lease.

        Returns whether the lease was live and actually held the task --
        i.e. whether the report came from the task's current owner rather
        than a zombie whose lease already expired.
        """
        lease = self._leases.get(lease_id)
        if lease is None:
            return False
        lease.deadline = time.monotonic() + self.lease_ttl_s
        held = index in lease.pending
        lease.pending.discard(index)
        if not lease.pending:
            del self._leases[lease.lease_id]
        return held

    def _requeue_lease_locked(self, lease: _Lease, *, reason: str) -> None:
        self._leases.pop(lease.lease_id, None)
        for index in lease.pending:
            state = self._tasks.get(index)
            if state is None or state.done:
                continue
            self._retry_or_fail_locked(state, reason)

    def _retry_or_fail_locked(self, state: _TaskState, reason: str) -> None:
        if state.dispatches > self.max_retries:
            self._event_locked(
                "retries-exhausted", task=state.index, attempts=state.dispatches
            )
            self._fail_locked(
                BrokerError(
                    f"task {state.task!r} (config index {state.index}) failed "
                    f"after {state.dispatches} attempt(s) "
                    f"(max_retries={self.max_retries}): {reason}"
                )
            )
            return
        self.stats["retries"] += 1
        self._event_locked(
            "retry", task=state.index, attempt=state.dispatches, reason=reason[:200]
        )
        # Front of the queue: a recovered task should not wait behind the
        # whole remaining sweep.
        self._queue.appendleft(state.index)

    def _mark_done_locked(self, state: _TaskState, *, cache_hit: bool = False) -> None:
        state.done = True
        self._outstanding -= 1
        self.stats["cache_hits" if cache_hit else "completed"] += 1

    def _fail_locked(self, error: BaseException) -> None:
        if self._failure is None:
            self._failure = error
            self._completed.put(_FAILED)
