"""The lease-based task queue core of the distributed sweep backend.

Two layers live here:

- :class:`SweepQueue` -- ONE sweep's task states, pending deque, retry
  budget, and completion stream.  It is the sweep-scoped queue core: pure
  bookkeeping, no sockets.
- :class:`Broker` -- the TCP service that multiplexes any number of
  SweepQueues over one shared worker fleet.  Constructed with ``items`` it
  behaves exactly like the historical per-sweep broker (one primary queue,
  ``results()`` delegates to it); constructed without items it is the
  long-lived core the Sweep Hub (:mod:`repro.runner.hub`) builds on, with
  :meth:`Broker.submit` accepting new sweeps while serving.

Dispatch is **lease-based**:

- a worker's ``lease`` request is granted a chunk of tasks with a deadline
  (``lease_ttl_s`` from now);
- every streamed result and every explicit heartbeat renews the deadline;
- a lease whose deadline passes -- or whose connection drops, the fast
  path for a killed worker -- returns its unfinished tasks to the front of
  its sweep's queue for re-dispatch;
- a task is re-dispatched at most ``max_retries`` times beyond its first
  attempt; exhausting that budget fails *its sweep* (other sweeps on the
  same broker keep running);
- a worker draining for shutdown may ``abandon`` unstarted lease members:
  they are requeued at the front without charging the retry budget.

**Fair-share dispatch** across sweeps: each lease is filled from a single
sweep, chosen as the highest-priority queue with work, ties broken by the
least-recently-granted queue.  Two same-priority sweeps therefore
interleave lease-by-lease -- a giant sweep cannot starve a small one --
while a higher priority always preempts at the next grant.

Tasks cross the wire under broker-global ids (``gid``), so concurrent
sweeps with overlapping config indices never collide; completions are
published back under the submitting client's own indices.

Duplicate results (a zombie worker finishing an expired lease) are ignored
after the first; since tasks are pure functions of their configs, whichever
copy arrives first is *the* result.

Before dispatching a task the broker re-checks the shared artifact cache
(``store``): a hit -- a duplicate config completed earlier in the same
sweep, or *another sweep on the same broker* -- is completed with the
cached result instead of shipped.  Fresh results are persisted through
:class:`~repro.runner.artifacts.ArtifactStore` exactly as the pool path
does, *before* entering the completion queue, so dedupe never races
persistence.
"""

from __future__ import annotations

import errno
import queue
import socket
import threading
import time
from collections import deque
from datetime import datetime, timezone
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.runner.artifacts import MISSING, ArtifactStore
from repro.runner.backends import CompletedItem, WorkItem
from repro.runner.config import SweepConfig
from repro.runner.distributed.protocol import (
    PROTOCOL_VERSION,
    read_message,
    reader_for,
    send_message,
)
from repro.runner.faults import FaultInjector

__all__ = ["Broker", "BrokerError", "InjectedBrokerCrash", "SweepQueue"]

#: Sentinel pushed on a sweep's completion queue when that sweep fails.
_FAILED = object()

#: Structured event-log cap; beyond it events are counted, not stored.
EVENTS_CAP = 500

#: Attempts (first try included) for persisting one artifact before the
#: failure is declared sweep-fatal.  Transient filesystem errors -- a busy
#: network mount, an injected ``artifact-write`` fault -- should cost a
#: short retry, not the sweep.
PERSIST_ATTEMPTS = 5

#: Finished (done or failed) sweeps kept registered for status/history on a
#: long-lived broker; beyond it the oldest finished sweeps are evicted so a
#: standing hub's memory stays bounded.  Zombie results for an evicted
#: sweep are dropped like results for an unknown task.
HISTORY_CAP = 50


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


class BrokerError(RuntimeError):
    """A sweep-fatal broker condition (task retries exhausted, ...)."""


class InjectedBrokerCrash(BrokerError):
    """The fault injector's ``crash-broker`` site fired: the broker dies
    mid-sweep (after persisting, before publishing).  Recovery is the
    ordinary resume path: re-run the sweep with ``--resume``."""


class _TaskState:
    """One work item's broker-side lifecycle."""

    __slots__ = ("index", "task", "params", "module", "dispatches", "done", "gid", "sweep")

    def __init__(self, item: WorkItem, gid: int, sweep: "SweepQueue") -> None:
        self.index, self.task, self.params, self.module = item
        self.dispatches = 0
        self.done = False
        #: Broker-global wire id -- what workers see.  The submitting
        #: client's own ``index`` is only used when publishing completions.
        self.gid = gid
        self.sweep = sweep

    def config(self) -> SweepConfig:
        return SweepConfig(self.task, self.params)


class _Lease:
    __slots__ = ("lease_id", "worker_id", "pending", "deadline")

    def __init__(self, lease_id: int, worker_id: str, ids: Set[int], deadline: float):
        self.lease_id = lease_id
        self.worker_id = worker_id
        self.pending = ids
        self.deadline = deadline


class SweepQueue:
    """One sweep's task states, pending queue, and completion stream.

    Created by :meth:`Broker.submit`; all mutation happens under the
    broker's lock.  The submitting side consumes :meth:`results` -- the
    same ``(index, result, meta)`` stream the historical per-sweep broker
    produced, failures included -- while the broker fills ``_completed``
    as leases settle.
    """

    def __init__(
        self,
        key: str,
        *,
        name: str = "",
        priority: int = 0,
        force: bool = False,
        max_retries: int = 2,
        submit_seq: int = 0,
        identity: Optional[str] = None,
    ) -> None:
        self.key = key
        self.name = name or key
        self.priority = priority
        self.force = force
        self.max_retries = max_retries
        self.submit_seq = submit_seq
        #: Content-hash identity of the submitted task list (hub mode).
        #: The hub dedupes resubmissions by it; ``None`` on plain brokers.
        self.identity = identity
        self.tasks: Dict[int, _TaskState] = {}
        self.pending: deque = deque()
        self.total = 0
        self.outstanding = 0
        self.completed = 0
        self.cached = 0
        self.retries = 0
        self.worker_errors = 0
        self.failure: Optional[BaseException] = None
        #: Global grant sequence number of this queue's most recent lease;
        #: the fair-share tie-breaker (least recently granted wins).
        self.last_grant = 0
        self.started = False
        self.submitted_at = _utc_now()
        self.finished_at: Optional[str] = None
        self._completed: "queue.Queue" = queue.Queue()
        #: Completed items retained for replay to listeners that attach (or
        #: re-attach) after publication started; bounded by ``total`` and
        #: dropped with the queue at history eviction.
        self.history: List[CompletedItem] = []
        self._listeners: List["queue.Queue"] = []
        self._pub_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def publish(self, item: Any) -> None:
        """Hand one completion (or the failure sentinel) to every consumer.

        The classic ``results()`` consumer reads ``_completed``; attached
        listeners (hub client streams, including clients re-attaching
        after a reconnect) get the same item, and completions are also
        retained in :attr:`history` so a listener attached later can
        replay what it missed.
        """
        with self._pub_lock:
            if item is not _FAILED:
                self.history.append(item)
            self._completed.put(item)
            for listener in self._listeners:
                listener.put(item)

    def attach_listener(self) -> Tuple["queue.Queue", List[CompletedItem]]:
        """Register a live completion listener; returns ``(queue, replay)``.

        Atomic with :meth:`publish`: the replay snapshot plus the live
        queue together carry every completion exactly once.  If the sweep
        already failed, the failure sentinel is re-delivered on the fresh
        queue so a late listener still observes it.
        """
        listener: "queue.Queue" = queue.Queue()
        with self._pub_lock:
            replay = list(self.history)
            self._listeners.append(listener)
            if self.failure is not None:
                listener.put(_FAILED)
        return listener, replay

    def detach_listener(self, listener: "queue.Queue") -> None:
        with self._pub_lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    def results(
        self, *, poll: Optional[Any] = None, poll_interval: float = 0.25
    ) -> Iterator[CompletedItem]:
        """Yield ``(index, result, meta)`` as tasks complete, any order.

        ``poll`` (optional zero-arg callable) runs every ``poll_interval``
        while waiting.  Raises :class:`BrokerError` if the sweep fails.
        """
        delivered = 0
        while delivered < self.total:
            try:
                item = self._completed.get(timeout=poll_interval)
            except queue.Empty:
                if self.failure is not None:
                    raise self.failure
                if poll is not None:
                    poll()
                continue
            if item is _FAILED:
                raise self.failure  # type: ignore[misc]
            yield item
            delivered += 1

    # ------------------------------------------------------------------ #
    def counters(self) -> Dict[str, int]:
        """Per-sweep progress counters (the hub's ``sweep-done`` stats)."""
        return {
            "total": self.total,
            "completed": self.completed,
            "cached": self.cached,
            "retries": self.retries,
            "worker_errors": self.worker_errors,
        }

    def status(self) -> str:
        if self.failure is not None:
            return "failed"
        if self.outstanding == 0:
            return "done"
        if self.started:
            return "active"
        return "queued"

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe progress summary (callers hold the broker lock)."""
        return {
            "sweep": self.key,
            "name": self.name,
            "identity": self.identity,
            "priority": self.priority,
            "status": self.status(),
            "total": self.total,
            "done": self.total - self.outstanding,
            "cached": self.cached,
            "retries": self.retries,
            "submitted": self.submitted_at,
            "finished": self.finished_at,
            "error": str(self.failure) if self.failure is not None else None,
        }


class Broker:
    """Serve sweep work items to TCP workers, lease by lease.

    Parameters
    ----------
    items:
        The runner's pending work items (config index, task, params,
        module) for the classic one-sweep-per-broker mode: they become the
        *primary* :class:`SweepQueue`, and :meth:`results` / :attr:`drained`
        keep their historical semantics.  ``None`` starts an empty
        multi-sweep broker (hub mode); sweeps then arrive via
        :meth:`submit`.
    store / force:
        The artifact cache settings.  With a store and ``force=False`` the
        broker dedupes against the cache at dispatch time (across *all*
        sweeps sharing it) and persists every fresh result through it.
        ``force`` is the default for submissions; :meth:`submit` can
        override it per sweep.
    host / port:
        Bind address (port ``0`` picks a free port; see :attr:`address`).
    lease_ttl_s:
        Lease lifetime without a result or heartbeat.  Workers heartbeat at
        a third of this, so only a hung or killed worker ever expires.
    max_retries:
        Default re-dispatch budget per task beyond its first attempt
        (per-sweep overridable via :meth:`submit`).
    chunk_size:
        Hard cap on tasks per lease (``None``: honor the worker's requested
        capacity, which defaults to its local process count).
    injector:
        Optional :class:`~repro.runner.faults.FaultInjector` for the
        broker-side fault sites (wire faults on broker sends, artifact-write
        failures, broker crashes).  ``None`` disables injection.
    """

    def __init__(
        self,
        items: Optional[Sequence[WorkItem]] = None,
        *,
        store: Optional[ArtifactStore] = None,
        force: bool = False,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_ttl_s: float = 30.0,
        max_retries: int = 2,
        chunk_size: Optional[int] = None,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        if lease_ttl_s <= 0:
            raise ValueError(f"lease_ttl_s must be > 0, got {lease_ttl_s}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.store = store
        self.force = force
        self.lease_ttl_s = lease_ttl_s
        self.max_retries = max_retries
        self.chunk_size = chunk_size
        self.injector = injector
        self._bind = (host, port)
        self.address: Optional[Tuple[str, int]] = None
        #: Structured event log (lease grants, expiries, retries, dedupe
        #: hits, sweep lifecycle, ...), capped at :data:`EVENTS_CAP`;
        #: surfaced in the sweep journal and on
        #: ``DistributedBackend.last_events``.
        self.events: List[Dict[str, Any]] = []
        self._events_dropped = 0
        self._t0 = time.monotonic()

        self._lock = threading.Lock()
        #: Registered sweeps by key, insertion-ordered (= submission order).
        self._queues: Dict[str, SweepQueue] = {}
        #: Broker-global wire id -> task state, across every live sweep.
        self._states: Dict[int, _TaskState] = {}
        self._next_gid = 0
        self._submit_seq = 0
        self._grant_seq = 0
        #: Connected worker fleet (by worker id), for hub status.
        self._workers: Dict[str, Dict[str, Any]] = {}
        self._leases: Dict[int, _Lease] = {}
        self._next_lease_id = 0
        self._stop = threading.Event()
        #: Set by :meth:`crash` (injected hub crash / tests): the broker
        #: died abruptly without failing its sweeps.
        self.crashed = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._connections: List[socket.socket] = []
        self.stats: Dict[str, int] = {
            "connections": 0,
            "leases": 0,
            "dispatched": 0,
            "completed": 0,
            "cache_hits": 0,
            "retries": 0,
            "expired_leases": 0,
            "worker_errors": 0,
            "duplicate_results": 0,
            "abandoned": 0,
        }
        self._primary: Optional[SweepQueue] = (
            self.submit(items) if items is not None else None
        )

    # ------------------------------------------------------------------ #
    # Structured event log
    # ------------------------------------------------------------------ #
    def _event_locked(self, kind: str, **fields: Any) -> None:
        """Append one event (callers hold ``self._lock``)."""
        if len(self.events) >= EVENTS_CAP:
            self._events_dropped += 1
            return
        event = {"t": round(time.monotonic() - self._t0, 3), "event": kind}
        event.update(fields)
        self.events.append(event)

    def _event(self, kind: str, **fields: Any) -> None:
        with self._lock:
            self._event_locked(kind, **fields)

    @property
    def events_dropped(self) -> int:
        """Events beyond the cap (counted so the log is honest about it)."""
        return self._events_dropped

    @property
    def fault_counts(self) -> Dict[str, int]:
        """Broker-side injected-fault counts (empty without an injector)."""
        return dict(self.injector.injected) if self.injector is not None else {}

    # ------------------------------------------------------------------ #
    # Sweep registration
    # ------------------------------------------------------------------ #
    def submit(
        self,
        items: Sequence[WorkItem],
        *,
        name: str = "",
        priority: int = 0,
        force: Optional[bool] = None,
        max_retries: Optional[int] = None,
    ) -> SweepQueue:
        """Register a new sweep; safe to call while the broker is serving.

        Returns the sweep's :class:`SweepQueue`; consume its ``results()``
        for the completion stream.  ``force`` / ``max_retries`` default to
        the broker-level settings.
        """
        item_list = list(items)
        seen: Set[int] = set()
        for item in item_list:
            if item[0] in seen:
                raise ValueError(f"duplicate work item index {item[0]}")
            seen.add(item[0])
        with self._lock:
            return self._submit_locked(
                item_list,
                name=name,
                priority=priority,
                force=force,
                max_retries=max_retries,
            )

    def _submit_locked(
        self,
        item_list: Sequence[WorkItem],
        *,
        name: str = "",
        priority: int = 0,
        force: Optional[bool] = None,
        max_retries: Optional[int] = None,
        identity: Optional[str] = None,
    ) -> SweepQueue:
        """Register a sweep under ``self._lock`` (held by the caller).

        Split out of :meth:`submit` so the hub can make its
        identity-dedupe check and the registration one atomic step.
        """
        if self._stop.is_set():
            raise BrokerError("broker is stopping; submission rejected")
        key = f"s{self._submit_seq}"
        sweep = SweepQueue(
            key,
            name=name,
            priority=priority,
            force=self.force if force is None else force,
            max_retries=self.max_retries if max_retries is None else max_retries,
            submit_seq=self._submit_seq,
            identity=identity,
        )
        self._submit_seq += 1
        for item in item_list:
            state = _TaskState(item, self._next_gid, sweep)
            self._next_gid += 1
            sweep.tasks[state.gid] = state
            sweep.pending.append(state.gid)
            self._states[state.gid] = state
        sweep.total = sweep.outstanding = len(sweep.tasks)
        self._queues[key] = sweep
        self._event_locked(
            "sweep-submitted",
            sweep=key,
            name=sweep.name,
            tasks=sweep.total,
            priority=priority,
        )
        return sweep

    def prefill_from_store(self, sweep: SweepQueue) -> int:
        """Complete ``sweep``'s pending tasks already backed by artifacts.

        The re-adoption half of hub restart: probes the shared artifact
        store for every pending task (outside the lock, same discipline as
        :meth:`_grant`), completes hits as cache hits, publishes their
        results, and leaves only artifact-less tasks queued for the fleet.
        Returns the number of tasks completed from cache.
        """
        if self.store is None or sweep.force:
            return 0
        with self._lock:
            candidates = [sweep.tasks[gid] for gid in sweep.pending]
        hits: Dict[int, Any] = {}
        for state in candidates:
            if state.done:
                continue
            cached = self.store.load(state.config())
            if cached is not MISSING:
                hits[state.gid] = cached
        if not hits:
            return 0
        publish: List[Tuple[_TaskState, CompletedItem]] = []
        with self._lock:
            for state in candidates:
                if state.done or state.gid not in hits:
                    continue
                self._mark_done_locked(state, cache_hit=True)
                self._event_locked("dedupe-hit", task=state.gid, sweep=sweep.key)
                publish.append((state, (state.index, hits[state.gid], None)))
            done_gids = {state.gid for state, _ in publish}
            remaining = deque(gid for gid in sweep.pending if gid not in done_gids)
            sweep.pending.clear()
            sweep.pending.extend(remaining)
        for state, item in publish:
            state.sweep.publish(item)
            self._task_completed(state, cached=True)
        return len(publish)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self, *, bind_retry_s: float = 0.0) -> Tuple[str, int]:
        """Bind, start the accept/reaper threads, return the bound address.

        ``bind_retry_s`` keeps retrying an ``EADDRINUSE`` bind for that
        long: a restarted hub re-binding its fixed port can transiently
        lose the address to lingering connection state or a reconnecting
        peer's loopback self-connect.
        """
        self._t0 = time.monotonic()
        deadline = time.monotonic() + bind_retry_s
        while True:
            try:
                self._listener = socket.create_server(self._bind)
                break
            except OSError as exc:
                if exc.errno != errno.EADDRINUSE or time.monotonic() >= deadline:
                    raise
                time.sleep(0.2)
        self._listener.settimeout(0.2)
        self.address = self._listener.getsockname()[:2]
        for target in (self._accept_loop, self._reaper_loop):
            thread = threading.Thread(target=target, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self.address

    def stop(self) -> None:
        """Stop serving; close the listener and every connection.

        Unfinished sweeps are failed (their consumers' ``results()``
        streams raise instead of blocking forever) -- relevant only for a
        hub stopped mid-submission; the classic backend consumes the
        primary queue before stopping.
        """
        self._stop.set()
        with self._lock:
            for sweep in self._queues.values():
                if sweep.outstanding > 0 and sweep.failure is None:
                    self._fail_queue_locked(
                        sweep, BrokerError("broker stopped with sweep incomplete")
                    )
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=2.0)

    def crash(self) -> None:
        """Die abruptly, the way a SIGKILLed process would.

        Unlike :meth:`stop`, live sweeps are **not** failed: in-process
        consumers of a crashed broker lose their stream exactly like
        remote clients of a killed hub, and recover the same way --
        reconnect and resubmit against the restarted (re-adopting) hub.
        Used by the injected ``crash-hub`` fault site and by tests.
        """
        self.crashed.set()
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.close()
            except OSError:
                pass
        current = threading.current_thread()
        for thread in self._threads:
            if thread is not current:
                thread.join(timeout=2.0)

    def __enter__(self) -> "Broker":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Consumption (the backend side)
    # ------------------------------------------------------------------ #
    def results(
        self, *, poll: Optional[Any] = None, poll_interval: float = 0.25
    ) -> Iterator[CompletedItem]:
        """The primary sweep's completion stream (classic one-sweep mode)."""
        if self._primary is None:
            raise RuntimeError(
                "results() needs a broker constructed with items; hub-mode "
                "consumers iterate SweepQueue.results() per submission"
            )
        return self._primary.results(poll=poll, poll_interval=poll_interval)

    @property
    def drained(self) -> bool:
        with self._lock:
            return all(q.outstanding == 0 for q in self._queues.values())

    # ------------------------------------------------------------------ #
    # Status (the hub side)
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe live view: sweeps, fleet, leases, stats."""
        with self._lock:
            return {
                "address": list(self.address) if self.address else None,
                "uptime_s": round(time.monotonic() - self._t0, 1),
                "sweeps": [q.snapshot() for q in self._queues.values()],
                "workers": [dict(info) for info in self._workers.values()],
                "active_leases": len(self._leases),
                "stats": dict(self.stats),
                "events_dropped": self._events_dropped,
            }

    # ------------------------------------------------------------------ #
    # Accept / reap threads
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._lock:
                self._connections.append(conn)
                self.stats["connections"] += 1
            thread = threading.Thread(target=self._serve, args=(conn,), daemon=True)
            thread.start()

    def _reaper_loop(self) -> None:
        interval = max(0.05, self.lease_ttl_s / 4.0)
        while not self._stop.wait(interval):
            now = time.monotonic()
            with self._lock:
                expired = [
                    lease for lease in self._leases.values() if lease.deadline < now
                ]
                for lease in expired:
                    self.stats["expired_leases"] += 1
                    self._event_locked(
                        "lease-expired",
                        lease=lease.lease_id,
                        worker=lease.worker_id,
                        tasks=sorted(lease.pending),
                    )
                    self._requeue_lease_locked(
                        lease, reason=f"lease expired after {self.lease_ttl_s:.1f}s"
                    )

    # ------------------------------------------------------------------ #
    # Per-connection handler
    # ------------------------------------------------------------------ #
    def _serve(self, conn: socket.socket) -> None:
        worker_id = "?"
        conn_leases: Set[int] = set()
        is_worker = False
        try:
            reader = reader_for(conn)
            first = read_message(reader)
            if first is None:
                return
            if first.get("type") != "hello":
                # Not a worker handshake: hand the connection to the client
                # protocol (sweep submissions / status on a hub; a polite
                # goodbye on a plain broker).
                self._serve_client(conn, reader, first)
                return
            if first.get("protocol") != PROTOCOL_VERSION:
                send_message(
                    conn,
                    {
                        "type": "goodbye",
                        "error": f"expected hello with protocol {PROTOCOL_VERSION}",
                    },
                    injector=self.injector,
                )
                return
            is_worker = True
            worker_id = str(first.get("worker_id", "?"))
            with self._lock:
                self._event_locked("worker-connect", worker=worker_id)
                entry = self._workers.setdefault(
                    worker_id,
                    {
                        "worker": worker_id,
                        "host": str(first.get("host", "?")),
                        "pid": first.get("pid"),
                        "procs": first.get("procs", 1),
                        "connected": _utc_now(),
                    },
                )
                entry["connections"] = entry.get("connections", 0) + 1
            send_message(
                conn,
                {
                    "type": "welcome",
                    "protocol": PROTOCOL_VERSION,
                    "lease_ttl_s": self.lease_ttl_s,
                },
                injector=self.injector,
            )
            while not self._stop.is_set():
                message = read_message(reader)
                if message is None:
                    return
                kind = message.get("type")
                if kind == "lease":
                    self._grant(conn, worker_id, message, conn_leases)
                elif kind == "result":
                    self._on_result(message)
                elif kind == "error":
                    self._on_error(message, worker_id)
                elif kind == "heartbeat":
                    self._renew(message.get("lease"))
                elif kind == "abandon":
                    self._on_abandon(message, worker_id)
                else:
                    return  # protocol violation: drop the connection
        except (OSError, ValueError):
            pass  # connection lost / garbage on the wire: clean up below
        finally:
            with self._lock:
                if is_worker:
                    # Fast path for a killed worker: its unfinished leases
                    # are requeued the moment the connection drops, without
                    # waiting for the TTL reaper.
                    for lease_id in conn_leases:
                        lease = self._leases.get(lease_id)
                        if lease is not None:
                            self._event_locked(
                                "requeue-on-disconnect",
                                lease=lease_id,
                                worker=worker_id,
                                tasks=sorted(lease.pending),
                            )
                            self._requeue_lease_locked(
                                lease, reason=f"worker {worker_id} disconnected"
                            )
                    self._event_locked("worker-disconnect", worker=worker_id)
                    entry = self._workers.get(worker_id)
                    if entry is not None:
                        entry["connections"] = entry.get("connections", 1) - 1
                        if entry["connections"] <= 0:
                            del self._workers[worker_id]
                if conn in self._connections:
                    self._connections.remove(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _serve_client(self, conn: socket.socket, reader: Any, message: Dict[str, Any]) -> None:
        """A connection whose first message is not a worker hello.

        The base broker speaks no client protocol; the Sweep Hub overrides
        this with submission/status handling.
        """
        del reader
        send_message(
            conn,
            {
                "type": "goodbye",
                "error": f"expected hello with protocol {PROTOCOL_VERSION}",
            },
            injector=self.injector,
        )
        del message

    # ------------------------------------------------------------------ #
    # Message handling
    # ------------------------------------------------------------------ #
    def _pop_candidates_locked(
        self, capacity: int
    ) -> Tuple[Optional[SweepQueue], List[_TaskState]]:
        """Pick the fair-share sweep and pop up to ``capacity`` candidates.

        Eligible queues rank by ``(-priority, last_grant, submit_seq)``:
        strictly higher priority first, then the queue granted least
        recently -- so same-priority sweeps alternate lease-by-lease.  One
        lease never mixes sweeps.
        """
        ranked = sorted(
            (
                q
                for q in self._queues.values()
                if q.failure is None and q.pending
            ),
            key=lambda q: (-q.priority, q.last_grant, q.submit_seq),
        )
        for sweep in ranked:
            candidates: List[_TaskState] = []
            while sweep.pending and len(candidates) < capacity:
                state = sweep.tasks[sweep.pending.popleft()]
                if not state.done:
                    candidates.append(state)
            if candidates:
                self._grant_seq += 1
                sweep.last_grant = self._grant_seq
                sweep.started = True
                return sweep, candidates
        return None, []

    def _empty_done_locked(self) -> bool:
        """The ``done`` flag of an ``empty`` reply.

        Classic one-sweep mode: the primary sweep drained or failed, so
        one-shot workers may exit.  Hub mode: never -- the fleet is
        persistent and more sweeps can arrive at any time.
        """
        if self._primary is not None:
            return self._primary.outstanding == 0 or self._primary.failure is not None
        return False

    def _grant(
        self,
        conn: socket.socket,
        worker_id: str,
        message: Dict[str, Any],
        conn_leases: Set[int],
    ) -> None:
        capacity = max(1, int(message.get("capacity", 1)))
        if self.chunk_size is not None:
            capacity = min(capacity, self.chunk_size)
        # Pop candidates under the lock, but probe the artifact cache (disk,
        # possibly a network mount) outside it: blocking I/O under the global
        # lock would stall heartbeat renewal and could expire healthy leases.
        with self._lock:
            sweep, candidates = self._pop_candidates_locked(capacity)
        hits: Dict[int, Any] = {}
        if sweep is not None and self.store is not None and not sweep.force:
            for state in candidates:
                cached = self.store.load(state.config())
                if cached is not MISSING:
                    hits[state.gid] = cached
        publish: List[Tuple[_TaskState, CompletedItem]] = []
        granted: List[_TaskState] = []
        with self._lock:
            for state in candidates:
                if state.done:  # a zombie result landed while we probed
                    continue
                if state.gid in hits:
                    self._mark_done_locked(state, cache_hit=True)
                    self._event_locked(
                        "dedupe-hit", task=state.gid, sweep=state.sweep.key
                    )
                    publish.append(
                        (state, (state.index, hits[state.gid], None))
                    )
                    continue
                state.dispatches += 1
                granted.append(state)
            if not granted:
                reply: Dict[str, Any] = {
                    "type": "empty",
                    "done": self._empty_done_locked(),
                }
            else:
                lease_id = self._next_lease_id
                self._next_lease_id += 1
                lease = _Lease(
                    lease_id,
                    worker_id,
                    {state.gid for state in granted},
                    time.monotonic() + self.lease_ttl_s,
                )
                self._leases[lease_id] = lease
                conn_leases.add(lease_id)
                self.stats["leases"] += 1
                self.stats["dispatched"] += len(granted)
                self._event_locked(
                    "lease-grant",
                    lease=lease_id,
                    worker=worker_id,
                    tasks=[state.gid for state in granted],
                    sweep=sweep.key if sweep is not None else None,
                )
                reply = {
                    "type": "tasks",
                    "lease": lease_id,
                    "tasks": [
                        {
                            "id": state.gid,
                            "task": state.task,
                            "params": state.params,
                            "module": state.module,
                        }
                        for state in granted
                    ],
                }
        for state, item in publish:
            state.sweep.publish(item)
            self._task_completed(state, cached=True)
        send_message(conn, reply, injector=self.injector)

    def _on_result(self, message: Dict[str, Any]) -> None:
        gid = message.get("id")
        result = message.get("result")
        meta = message.get("meta")
        with self._lock:
            self._settle_lease_member_locked(message.get("lease"), gid)
            state = self._states.get(gid)  # type: ignore[arg-type]
            if state is None:
                return
            if state.done:
                self.stats["duplicate_results"] += 1
                self._event_locked("duplicate-result", task=gid)
                return
            self._mark_done_locked(state)
        # Persist (disk I/O, so outside the lock) *before* publication:
        # dispatch-time dedupe of a duplicate config later in this sweep --
        # or in any concurrent sweep -- must find the artifact already on
        # disk.  Transient write failures get a short bounded retry; an
        # exhausted budget is sweep-fatal -- the task is already marked
        # done, so swallowing the error would leave its completion
        # unpublished and the consumer waiting forever.
        if self.store is not None and not self._persist_with_retry(state, result, meta):
            return
        if self.injector is not None and self.injector.crash_broker():
            # The nastiest crash point: the artifact is on disk but the
            # completion never reaches the consumer.  Resume must recover
            # purely from the artifact cache.
            self._event("fault-broker-crash", task=state.gid)
            with self._lock:
                self._fail_all_locked(
                    InjectedBrokerCrash(
                        "injected fault: broker crashed after persisting task "
                        f"{state.index}; re-run with --resume to recover"
                    )
                )
            return
        state.sweep.publish(
            (state.index, result, meta if isinstance(meta, dict) else {})
        )
        self._task_completed(state, cached=False)

    def _persist_with_retry(self, state: _TaskState, result: Any, meta: Any) -> bool:
        """Store one artifact, retrying transient failures; False = fatal."""
        assert self.store is not None
        error: Optional[Exception] = None
        for attempt in range(1, PERSIST_ATTEMPTS + 1):
            try:
                if self.injector is not None and self.injector.fail_artifact_write():
                    raise OSError("injected fault: artifact write failed")
                self.store.store(
                    state.config(), result, meta=meta if isinstance(meta, dict) else {}
                )
                return True
            except Exception as exc:  # noqa: BLE001 - surfaced via results()
                error = exc
                self._event("persist-retry", task=state.gid, attempt=attempt,
                            error=str(exc))
                if attempt < PERSIST_ATTEMPTS:
                    time.sleep(0.05 * attempt)
        with self._lock:
            self._fail_queue_locked(
                state.sweep,
                BrokerError(
                    f"failed to persist artifact for task {state.task!r} "
                    f"(config index {state.index}) after {PERSIST_ATTEMPTS} "
                    f"attempt(s): {error}"
                ),
            )
        return False

    def _on_error(self, message: Dict[str, Any], worker_id: str) -> None:
        gid = message.get("id")
        with self._lock:
            live = self._settle_lease_member_locked(message.get("lease"), gid)
            if not live:
                # A zombie error from an already-expired/requeued lease: the
                # task is owned elsewhere by now.  Acting on it would put a
                # duplicate entry in the queue and burn retry budget the
                # live copy never consumed.  (Zombie *results* are accepted
                # -- tasks are pure, so any copy is the result -- but zombie
                # errors are dropped.)
                return
            state = self._states.get(gid)  # type: ignore[arg-type]
            if state is None or state.done:
                return
            self.stats["worker_errors"] += 1
            state.sweep.worker_errors += 1
            detail = message.get("error", "worker error")
            self._event_locked(
                "worker-error", task=gid, worker=worker_id, error=str(detail)[:200]
            )
            self._retry_or_fail_locked(state, f"worker {worker_id}: {detail}")

    def _on_abandon(self, message: Dict[str, Any], worker_id: str) -> None:
        """A draining worker explicitly returns unstarted lease members.

        Unlike expiry or disconnect requeues, abandoned tasks go back to
        the front of their sweep's queue *without* charging the retry
        budget -- a graceful fleet scale-down must not eat into the budget
        that guards against genuinely failing tasks.
        """
        lease_id = message.get("lease")
        gids = message.get("ids") or ()
        with self._lock:
            lease = self._leases.get(lease_id)
            if lease is None:
                return
            returned: List[int] = []
            for gid in gids:
                if gid not in lease.pending:
                    continue
                lease.pending.discard(gid)
                state = self._states.get(gid)
                if state is None or state.done:
                    continue
                state.dispatches = max(0, state.dispatches - 1)
                state.sweep.pending.appendleft(gid)
                returned.append(gid)
            if not lease.pending:
                self._leases.pop(lease_id, None)
            if returned:
                self.stats["abandoned"] += len(returned)
                self._event_locked(
                    "abandon",
                    lease=lease_id,
                    worker=worker_id,
                    tasks=returned,
                    sweep=self._states[returned[0]].sweep.key,
                )

    def _renew(self, lease_id: Any) -> None:
        with self._lock:
            lease = self._leases.get(lease_id)
            if lease is not None:
                lease.deadline = time.monotonic() + self.lease_ttl_s

    # ------------------------------------------------------------------ #
    # Locked helpers
    # ------------------------------------------------------------------ #
    def _settle_lease_member_locked(self, lease_id: Any, gid: Any) -> bool:
        """Record ``gid`` as reported under ``lease_id``; renew the lease.

        Returns whether the lease was live and actually held the task --
        i.e. whether the report came from the task's current owner rather
        than a zombie whose lease already expired.
        """
        lease = self._leases.get(lease_id)
        if lease is None:
            return False
        lease.deadline = time.monotonic() + self.lease_ttl_s
        held = gid in lease.pending
        lease.pending.discard(gid)
        if not lease.pending:
            del self._leases[lease.lease_id]
        return held

    def _requeue_lease_locked(self, lease: _Lease, *, reason: str) -> None:
        self._leases.pop(lease.lease_id, None)
        for gid in lease.pending:
            state = self._states.get(gid)
            if state is None or state.done:
                continue
            self._retry_or_fail_locked(state, reason)

    def _retry_or_fail_locked(self, state: _TaskState, reason: str) -> None:
        sweep = state.sweep
        if sweep.failure is not None:
            return
        if state.dispatches > sweep.max_retries:
            self._event_locked(
                "retries-exhausted", task=state.gid, attempts=state.dispatches
            )
            self._fail_queue_locked(
                sweep,
                BrokerError(
                    f"task {state.task!r} (config index {state.index}) failed "
                    f"after {state.dispatches} attempt(s) "
                    f"(max_retries={sweep.max_retries}): {reason}"
                ),
            )
            return
        self.stats["retries"] += 1
        sweep.retries += 1
        self._event_locked(
            "retry",
            task=state.gid,
            attempt=state.dispatches,
            reason=reason[:200],
            sweep=sweep.key,
        )
        # Front of the queue: a recovered task should not wait behind the
        # whole remaining sweep.
        sweep.pending.appendleft(state.gid)

    def _mark_done_locked(self, state: _TaskState, *, cache_hit: bool = False) -> None:
        state.done = True
        sweep = state.sweep
        sweep.outstanding -= 1
        if cache_hit:
            sweep.cached += 1
            self.stats["cache_hits"] += 1
        else:
            sweep.completed += 1
            self.stats["completed"] += 1
        if sweep.outstanding == 0 and sweep.failure is None:
            sweep.finished_at = _utc_now()
            self._event_locked(
                "sweep-done",
                sweep=sweep.key,
                completed=sweep.completed,
                cached=sweep.cached,
            )
            self._evict_history_locked()

    def _fail_queue_locked(self, sweep: SweepQueue, error: BaseException) -> None:
        """Fail ONE sweep; its siblings on the same broker keep running."""
        if sweep.failure is not None:
            return
        sweep.failure = error
        sweep.finished_at = _utc_now()
        self._event_locked("sweep-failed", sweep=sweep.key, error=str(error)[:200])
        sweep.publish(_FAILED)
        self._sweep_failed_locked(sweep)

    # ------------------------------------------------------------------ #
    # Subclass hooks (the hub's journaling seam)
    # ------------------------------------------------------------------ #
    def _task_completed(self, state: _TaskState, *, cached: bool) -> None:
        """Hook: ``state`` completed and its result was published.

        Called OUTSIDE the lock (file I/O is allowed here) for every
        completion -- fresh result, dispatch-time dedupe hit, or
        re-adoption prefill.  The base broker does nothing; the hub
        journals the completion.
        """

    def _sweep_failed_locked(self, sweep: SweepQueue) -> None:
        """Hook: ``sweep`` just failed (called under the lock)."""

    def _sweep_evicted_locked(self, sweep: SweepQueue) -> None:
        """Hook: ``sweep`` left the finished-history (called under the
        lock); the hub drops its identity mapping here."""

    def _fail_all_locked(self, error: BaseException) -> None:
        """A broker-global failure (injected crash): every live sweep dies."""
        for sweep in list(self._queues.values()):
            if sweep.failure is None and sweep.outstanding > 0:
                self._fail_queue_locked(sweep, error)

    def _evict_history_locked(self) -> None:
        finished = [
            q
            for q in self._queues.values()
            if q.outstanding == 0 or q.failure is not None
        ]
        while len(finished) > HISTORY_CAP:
            oldest = finished.pop(0)
            for gid in oldest.tasks:
                self._states.pop(gid, None)
            self._queues.pop(oldest.key, None)
            self._sweep_evicted_locked(oldest)
