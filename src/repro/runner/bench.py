"""Persistent performance-benchmark harness (``bench`` CLI subcommand).

The harness runs a *pinned* list of scenario configs -- Algorithm 1 and
Algorithm 2 workloads mirroring the E2 (Byzantine beacon flood), E3 (benign
CONGEST) and E12 (scaling) experiment drivers at several ``n`` -- through the
parallel sweep runner, collects each task's wall-clock from the runner's
per-task execution metadata, and records wall-clock + rounds + messages into
a ``BENCH_<date>.json`` trajectory file.  A comparison mode diffs a fresh run
against the previous file and fails on a >10% wall-clock regression (or on
any change in the deterministic rounds/messages counters, which would mean
the optimization changed semantics).

See RUNNER.md ("Performance") for the JSON schema and how to read a diff.
"""

from __future__ import annotations

import json
import math
import sys
from dataclasses import dataclass
from datetime import date, datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.runner.config import SweepConfig
from repro.runner.registry import sweep_task
from repro.runner.sweep import SweepRunner

__all__ = [
    "BenchScenario",
    "SCENARIOS",
    "SMOKE_SCENARIOS",
    "run_bench",
    "write_report",
    "find_previous_report",
    "load_report",
    "compare_reports",
    "render_report",
    "render_comparison",
]

BENCH_SCHEMA_VERSION = 1
BENCH_PREFIX = "BENCH_"


# --------------------------------------------------------------------------- #
# Bench tasks (registered sweep tasks so they ride the runner/artifact layer)
# --------------------------------------------------------------------------- #
@sweep_task("bench.local")
def _bench_local(*, n: int, degree: int, seed: int) -> Dict[str, Any]:
    """One Algorithm 1 run (benign), parameterized like the E12 local sweep."""
    from repro.core.local_counting import run_local_counting
    from repro.core.parameters import LocalParameters
    from repro.graphs.hnd import hnd_random_regular_graph

    graph = hnd_random_regular_graph(n, degree, seed=seed + n)
    run = run_local_counting(graph, params=LocalParameters(max_degree=degree), seed=seed)
    outcome = run.outcome
    return {
        "rounds": outcome.max_decision_round(over_evaluation_set=False)
        or outcome.rounds_executed,
        "messages": outcome.total_messages,
        "bits": outcome.total_bits,
        "decided_fraction": outcome.decided_fraction(over_evaluation_set=False),
    }


@sweep_task("bench.congest")
def _bench_congest(
    *, n: int, degree: int, num_byz: int, behaviour: str, seed: int
) -> Dict[str, Any]:
    """One Algorithm 2 run, parameterized like the E2/E3 congest sweeps."""
    from repro.adversary.placement import spread_placement
    from repro.adversary.strategies import BeaconFloodAdversary
    from repro.core.congest_counting import run_congest_counting
    from repro.core.parameters import CongestParameters
    from repro.graphs.hnd import hnd_random_regular_graph
    from repro.simulator.byzantine import SilentAdversary

    params = CongestParameters(d=degree)
    graph = hnd_random_regular_graph(n, degree, seed=seed + n + num_byz)
    byz = spread_placement(graph, num_byz, seed=seed + num_byz) if num_byz else set()
    if behaviour == "beacon-flood":
        adversary = BeaconFloodAdversary(params)
    elif behaviour == "silent":
        adversary = SilentAdversary()
    else:
        raise ValueError(f"unknown bench behaviour {behaviour!r}")
    budget = params.rounds_through_phase(int(math.ceil(math.log(n))) + 1)
    run = run_congest_counting(
        graph,
        byzantine=byz,
        adversary=adversary,
        params=params,
        seed=seed,
        max_rounds=budget,
    )
    outcome = run.outcome
    return {
        "rounds": outcome.max_decision_round(over_evaluation_set=False)
        or outcome.rounds_executed,
        "messages": outcome.total_messages,
        "bits": outcome.total_bits,
        "decided_fraction": outcome.decided_fraction(over_evaluation_set=False),
    }


@sweep_task("bench.local_churn")
def _bench_local_churn(
    *, n: int, degree: int, count: int, start: int, absence: int, seed: int
) -> Dict[str, Any]:
    """One Algorithm 1 run under a seeded leave/re-join churn schedule.

    Exercises the dynamics seam end to end: departures cut a node out
    mid-run, re-joins spawn fresh protocol instances, and every surviving
    node's ``LocalView`` re-converges through the dynamic integrate path.
    The deterministic counters therefore cover the churn delta application
    and the view-rebuild fallback, not just the static hot path.
    """
    from repro.core.local_counting import run_local_counting
    from repro.core.parameters import LocalParameters
    from repro.graphs.hnd import hnd_random_regular_graph
    from repro.scenarios.churn import build_churn

    graph = hnd_random_regular_graph(n, degree, seed=seed + n)
    churn = build_churn(
        "node-leave-join", graph, seed=seed, count=count, start=start, absence=absence
    )
    run = run_local_counting(
        graph, params=LocalParameters(max_degree=degree), seed=seed, churn=churn
    )
    outcome = run.outcome
    return {
        "rounds": outcome.rounds_executed,
        "messages": outcome.total_messages,
        "bits": outcome.total_bits,
        "decided_fraction": outcome.decided_fraction(over_evaluation_set=False),
        "churn_events": run.result.metrics.churn_events,
    }


@sweep_task("bench.dist_loopback")
def _bench_dist_loopback(
    *, n: int, degree: int, seeds: Sequence[int], workers: int
) -> Dict[str, Any]:
    """An E3-style scenario suite executed through the distributed backend.

    Runs a benign congest scenario (compiled through the declarative
    scenario path, like every E3 cell) over a loopback broker with
    ``workers`` spawned worker daemons, and returns the summed deterministic
    counters.  The individual cells are deliberately small: the wall-clock
    the outer bench harness records is dominated by worker spawn + dispatch,
    i.e. this scenario puts the *distributed dispatch overhead* on the
    trajectory, not the simulation itself.
    """
    from repro.runner.distributed import DistributedBackend
    from repro.runner.sweep import SweepRunner
    from repro.scenarios.spec import Scenario

    scenario = Scenario.from_dict(
        {
            "name": f"dist-loopback-e3-n{n}",
            "graph": {"name": "hnd", "params": {"n": n, "degree": degree}, "seed_offset": 0},
            "adversary": {"name": "silent", "params": {}, "seed_offset": 0},
            "placement": {"name": "random", "params": {"count": 0}, "seed_offset": 0},
            "protocol": {"name": "congest", "params": {"d": degree}, "seed_offset": 0},
            "params": {},
            "seeds": list(seeds),
        }
    )
    runner = SweepRunner(
        backend=DistributedBackend(spawn_workers=workers, quiet=True)
    )
    rows = runner.run(scenario.compile())
    return {
        "rounds": sum(row["rounds"] for row in rows),
        "messages": sum(row["messages"] for row in rows),
        "bits": sum(row["bits"] for row in rows),
        "cells": len(rows),
    }


@sweep_task("bench.chaos_loopback")
def _bench_chaos_loopback(
    *, n: int, degree: int, seeds: Sequence[int], workers: int
) -> Dict[str, Any]:
    """``bench.dist_loopback`` with the fault-injection hooks threaded.

    Identical workload, but the backend carries an **all-zero**
    :class:`~repro.runner.faults.FaultPlan`: every injection hook is
    constructed, threaded through broker and workers, and consulted on every
    protocol line -- and never fires.  The wall-clock delta against
    ``scenario-e3-dist-loopback`` is therefore the chaos machinery's
    injector-off overhead, pinned on the trajectory so the hooks stay free
    when disabled.
    """
    from repro.runner.distributed import DistributedBackend
    from repro.runner.faults import FaultPlan
    from repro.runner.sweep import SweepRunner
    from repro.scenarios.spec import Scenario

    scenario = Scenario.from_dict(
        {
            "name": f"chaos-loopback-e3-n{n}",
            "graph": {"name": "hnd", "params": {"n": n, "degree": degree}, "seed_offset": 0},
            "adversary": {"name": "silent", "params": {}, "seed_offset": 0},
            "placement": {"name": "random", "params": {"count": 0}, "seed_offset": 0},
            "protocol": {"name": "congest", "params": {"d": degree}, "seed_offset": 0},
            "params": {},
            "seeds": list(seeds),
        }
    )
    runner = SweepRunner(
        backend=DistributedBackend(
            spawn_workers=workers, fault_plan=FaultPlan(seed=0), quiet=True
        )
    )
    rows = runner.run(scenario.compile())
    return {
        "rounds": sum(row["rounds"] for row in rows),
        "messages": sum(row["messages"] for row in rows),
        "bits": sum(row["bits"] for row in rows),
        "cells": len(rows),
    }


@sweep_task("bench.hub_loopback")
def _bench_hub_loopback(
    *, n: int, degree: int, seeds: Sequence[int], workers: int
) -> Dict[str, Any]:
    """The ``bench.dist_loopback`` workload submitted through a Sweep Hub.

    Same E3-style scenario suite, but executed via the full hub path: an
    in-process :class:`~repro.runner.hub.service.SweepHub`, ``workers``
    persistent worker daemons connected to it, and a
    ``DistributedBackend(connect=...)`` client submitting over TCP.  The
    wall-clock delta against ``scenario-e3-dist-loopback`` is therefore
    the hub's submission/multiplexing overhead (client protocol, fair-share
    ranking, per-sweep queues), pinned on the trajectory.
    """
    import subprocess

    from repro.runner.distributed import DistributedBackend, spawn_loopback_worker
    from repro.runner.hub import SweepHub
    from repro.runner.sweep import SweepRunner
    from repro.scenarios.spec import Scenario

    scenario = Scenario.from_dict(
        {
            "name": f"hub-loopback-e3-n{n}",
            "graph": {"name": "hnd", "params": {"n": n, "degree": degree}, "seed_offset": 0},
            "adversary": {"name": "silent", "params": {}, "seed_offset": 0},
            "placement": {"name": "random", "params": {"count": 0}, "seed_offset": 0},
            "protocol": {"name": "congest", "params": {"d": degree}, "seed_offset": 0},
            "params": {},
            "seeds": list(seeds),
        }
    )
    hub = SweepHub(host="127.0.0.1", port=0)
    address = hub.start()
    procs: List["subprocess.Popen[bytes]"] = []
    try:
        procs.extend(
            spawn_loopback_worker(address, exit_when_drained=False)
            for _ in range(workers)
        )
        runner = SweepRunner(backend=DistributedBackend(connect=address, quiet=True))
        rows = runner.run(scenario.compile())
    finally:
        for process in procs:
            if process.poll() is None:
                process.terminate()
        for process in procs:
            try:
                process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=5.0)
        hub.stop()
    return {
        "rounds": sum(row["rounds"] for row in rows),
        "messages": sum(row["messages"] for row in rows),
        "bits": sum(row["bits"] for row in rows),
        "cells": len(rows),
    }


@sweep_task("bench.hub_ha_loopback")
def _bench_hub_ha_loopback(
    *, n: int, degree: int, seeds: Sequence[int], workers: int
) -> Dict[str, Any]:
    """``bench.hub_loopback`` with the high-availability layer active.

    Identical workload and topology, but the hub runs with a crash-safe
    state journal (``state_dir``), admission control, and heartbeat-bearing
    client streams -- every completion lands an atomic hub-journal write
    and every submit passes the capacity check.  The wall-clock delta
    against ``scenario-e3-hub-loopback`` is therefore the HA machinery's
    steady-state overhead (no fault ever fires), pinned on the trajectory
    so durability stays cheap.
    """
    import subprocess
    import tempfile

    from repro.runner.distributed import DistributedBackend, spawn_loopback_worker
    from repro.runner.hub import SweepHub
    from repro.runner.sweep import SweepRunner
    from repro.scenarios.spec import Scenario

    scenario = Scenario.from_dict(
        {
            "name": f"hub-ha-loopback-e3-n{n}",
            "graph": {"name": "hnd", "params": {"n": n, "degree": degree}, "seed_offset": 0},
            "adversary": {"name": "silent", "params": {}, "seed_offset": 0},
            "placement": {"name": "random", "params": {"count": 0}, "seed_offset": 0},
            "protocol": {"name": "congest", "params": {"d": degree}, "seed_offset": 0},
            "params": {},
            "seeds": list(seeds),
        }
    )
    rows = None
    with tempfile.TemporaryDirectory(prefix="bench-hub-ha-") as state_dir:
        hub = SweepHub(
            host="127.0.0.1",
            port=0,
            state_dir=state_dir,
            max_pending=10_000,
        )
        address = hub.start()
        procs: List["subprocess.Popen[bytes]"] = []
        try:
            procs.extend(
                spawn_loopback_worker(address, exit_when_drained=False)
                for _ in range(workers)
            )
            runner = SweepRunner(
                backend=DistributedBackend(connect=address, quiet=True)
            )
            rows = runner.run(scenario.compile())
        finally:
            for process in procs:
                if process.poll() is None:
                    process.terminate()
            for process in procs:
                try:
                    process.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait(timeout=5.0)
            hub.stop()
    return {
        "rounds": sum(row["rounds"] for row in rows),
        "messages": sum(row["messages"] for row in rows),
        "bits": sum(row["bits"] for row in rows),
        "cells": len(rows),
    }


# --------------------------------------------------------------------------- #
# Pinned scenarios
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class BenchScenario:
    """One named, pinned benchmark configuration."""

    name: str
    task: str
    params: Dict[str, Any]

    def config(self) -> SweepConfig:
        return SweepConfig(self.task, dict(self.params))


#: The full trajectory suite: E12-style Algorithm 1 runs, E3-style benign
#: Algorithm 2 runs, and E2-style Byzantine beacon-flood runs, at several n.
#: These parameterizations are pinned -- changing them breaks comparability
#: of the BENCH_*.json trajectory, so add new scenarios instead.
SCENARIOS: Tuple[BenchScenario, ...] = (
    BenchScenario("e12-local-n256", "bench.local", {"n": 256, "degree": 8, "seed": 0}),
    BenchScenario("e12-local-n512", "bench.local", {"n": 512, "degree": 8, "seed": 0}),
    BenchScenario(
        "e3-congest-n128",
        "bench.congest",
        {"n": 128, "degree": 8, "num_byz": 0, "behaviour": "silent", "seed": 0},
    ),
    BenchScenario(
        "e3-congest-n256",
        "bench.congest",
        {"n": 256, "degree": 8, "num_byz": 0, "behaviour": "silent", "seed": 0},
    ),
    BenchScenario(
        "e2-congest-n128",
        "bench.congest",
        {"n": 128, "degree": 8, "num_byz": 4, "behaviour": "beacon-flood", "seed": 0},
    ),
    BenchScenario(
        "e2-congest-n256",
        "bench.congest",
        {"n": 256, "degree": 8, "num_byz": 5, "behaviour": "beacon-flood", "seed": 0},
    ),
    # Appended with the scenario API (PR 3): the same E2-style beacon-flood
    # workload expressed as a declarative scenario spec and executed through
    # the generic ``scenario.run`` task, so the declarative path itself stays
    # on the perf trajectory.  The spec literal is pinned like every other
    # scenario parameterization above.
    BenchScenario(
        "scenario-e2-congest-n128",
        "scenario.run",
        {
            "spec": {
                "graph": {
                    "name": "hnd",
                    "params": {"n": 128, "degree": 8},
                    "seed_offset": 0,
                },
                "adversary": {"name": "beacon-flood", "params": {}, "seed_offset": 0},
                "placement": {
                    "name": "spread",
                    "params": {"count": 4},
                    "seed_offset": 0,
                },
                "protocol": {
                    "name": "congest",
                    "params": {"gamma": 0.5, "d": 8, "max_rounds": 738},
                    "seed_offset": 0,
                },
                "params": {
                    "evaluation": {"kind": "far", "radius": 1},
                    "check": {"name": "theorem2", "beta": 0.25},
                },
            },
            "seed": 128,
        },
    ),
    # Appended with the columnar hot-path rewrite (PR 4): a larger E2-style
    # beacon-flood run (the Algorithm 2 engine/delivery hot path at 512
    # nodes; num_byz follows the E2 driver's B(n) = n^0.3 budget) and one E9
    # adversary-grid cell (Algorithm 1's LocalView under the fake-topology
    # attack schedule, through the declarative scenario path).  Both
    # parameterizations are pinned -- append new scenarios, never edit.
    BenchScenario(
        "e2-congest-n512",
        "bench.congest",
        {"n": 512, "degree": 8, "num_byz": 6, "behaviour": "beacon-flood", "seed": 0},
    ),
    BenchScenario(
        "scenario-e9-grid-small",
        "scenario.run",
        {
            "spec": {
                "graph": {
                    "name": "hnd",
                    "params": {"n": 128, "degree": 8},
                    "seed_offset": 128,
                },
                "adversary": {
                    "name": "fake-topology",
                    "params": {},
                    "seed_offset": 0,
                },
                "placement": {
                    "name": "spread",
                    "params": {"count": 4},
                    "seed_offset": 1,
                },
                "protocol": {
                    "name": "local",
                    "params": {"gamma": 0.7, "max_degree": 8},
                    "seed_offset": 0,
                },
                "params": {"evaluation": {"kind": "good", "gamma": 0.7}},
            },
            "seed": 0,
        },
    ),
    # Appended with the distributed backend (PR 5): a small E3-style benign
    # scenario suite executed over a loopback broker with two spawned worker
    # daemons.  The cells are tiny on purpose -- the recorded wall-clock
    # measures worker spawn + lease/dispatch/result overhead, so broker or
    # protocol regressions show up on the trajectory even when simulation
    # speed is unchanged.  Pinned like every parameterization above.
    BenchScenario(
        "scenario-e3-dist-loopback",
        "bench.dist_loopback",
        {"n": 48, "degree": 8, "seeds": [0, 1, 2, 3], "workers": 2},
    ),
    # Appended with the dynamic-topology subsystem (PR 6): an E12-style
    # Algorithm 1 run under a seeded leave/re-join schedule (the dynamic
    # integrate + view-rebuild path at 256 nodes), and an E2-style congest
    # scenario under seeded edge flips through the declarative path with an
    # explicit round bound (Algorithm 2 does not adapt to churn; the bound
    # keeps the degradation measurement finite).  Pinned like every
    # parameterization above -- append new scenarios, never edit.
    BenchScenario(
        "e12-local-churn-n256",
        "bench.local_churn",
        {"n": 256, "degree": 8, "count": 4, "start": 6, "absence": 3, "seed": 0},
    ),
    BenchScenario(
        "scenario-e2-churn-n128",
        "scenario.run",
        {
            "spec": {
                "graph": {
                    "name": "hnd",
                    "params": {"n": 128, "degree": 8},
                    "seed_offset": 0,
                },
                "adversary": {"name": "beacon-flood", "params": {}, "seed_offset": 0},
                "placement": {
                    "name": "spread",
                    "params": {"count": 4},
                    "seed_offset": 0,
                },
                "protocol": {
                    "name": "congest",
                    "params": {"gamma": 0.5, "d": 8, "max_rounds": 300},
                    "seed_offset": 0,
                },
                "churn": {
                    "name": "edge-flip",
                    "params": {"flips": 4, "start": 40, "duration": 20},
                    "seed_offset": 0,
                },
                "params": {
                    "evaluation": {"kind": "far", "radius": 1},
                },
            },
            "seed": 128,
        },
    ),
    # Appended with chaos hardening (PR 7): the PR-5 loopback workload with
    # the fault-injection machinery threaded through broker and workers but
    # every rate at zero.  The delta against ``scenario-e3-dist-loopback``
    # is the injector-off overhead of the chaos hooks (per-line injector
    # checks, journal writes, event log), pinned so "disabled" keeps meaning
    # "free".  Pinned like every parameterization above -- append, never edit.
    BenchScenario(
        "scenario-e3-chaos-loopback",
        "bench.chaos_loopback",
        {"n": 48, "degree": 8, "seeds": [0, 1, 2, 3], "workers": 2},
    ),
    # Appended with the Sweep Hub (PR 8): the PR-5 loopback workload
    # submitted to a standing hub over the client protocol instead of a
    # private broker.  The delta against ``scenario-e3-dist-loopback`` is
    # the hub's submission/multiplexing overhead (submit handshake,
    # fair-share ranking, per-sweep queue routing), pinned so the
    # multi-tenant path stays on the trajectory.  Pinned like every
    # parameterization above -- append, never edit.
    BenchScenario(
        "scenario-e3-hub-loopback",
        "bench.hub_loopback",
        {"n": 48, "degree": 8, "seeds": [0, 1, 2, 3], "workers": 2},
    ),
    # Appended with hub high availability (PR 9): the PR-8 hub workload
    # with the HA layer on -- crash-safe hub journal, admission control,
    # heartbeat-bearing client streams -- and no fault ever firing.  The
    # delta against ``scenario-e3-hub-loopback`` is the steady-state cost
    # of durability (per-completion atomic journal writes, per-submit
    # capacity checks), pinned so it stays near zero.  Pinned like every
    # parameterization above -- append, never edit.
    BenchScenario(
        "scenario-e3-hub-ha-loopback",
        "bench.hub_ha_loopback",
        {"n": 48, "degree": 8, "seeds": [0, 1, 2, 3], "workers": 2},
    ),
    # Appended with the protocol zoo (PR 10): one consensus run per new
    # family through the declarative ``scenario.run`` path at n=64.  The
    # Ben-Or cell exercises the coin-stream/phase machinery (quadratic
    # message volume, few rounds); the grouped-BFT cell exercises the
    # consistent-hash grouping + flood-relayed OM(m) cascade (many dedup
    # checks per round).  Both put the zoo's per-round hot paths on the
    # trajectory.  Pinned like every parameterization above -- append,
    # never edit.
    BenchScenario(
        "scenario-zoo-benor-n64",
        "scenario.run",
        {
            "spec": {
                "graph": {
                    "name": "hnd",
                    "params": {"n": 64, "degree": 8},
                    "seed_offset": 0,
                },
                "adversary": {"name": "silent", "params": {}, "seed_offset": 0},
                "placement": {
                    "name": "spread",
                    "params": {"count": 3},
                    "seed_offset": 0,
                },
                "protocol": {
                    "name": "benor",
                    "params": {"f": 3, "max_phases": 60},
                    "seed_offset": 0,
                },
                "params": {},
            },
            "seed": 64,
        },
    ),
    BenchScenario(
        "scenario-zoo-groupedbft-n64",
        "scenario.run",
        {
            "spec": {
                "graph": {
                    "name": "hnd",
                    "params": {"n": 64, "degree": 8},
                    "seed_offset": 0,
                },
                "adversary": {"name": "silent", "params": {}, "seed_offset": 0},
                "placement": {
                    "name": "spread",
                    "params": {"count": 3},
                    "seed_offset": 0,
                },
                "protocol": {
                    "name": "grouped-bft",
                    "params": {"f": 1, "groups": 3},
                    "seed_offset": 0,
                },
                "params": {},
            },
            "seed": 64,
        },
    ),
)

#: Reduced suite for ``make bench-smoke`` (sub-minute end to end).
SMOKE_SCENARIOS: Tuple[BenchScenario, ...] = (
    BenchScenario("e12-local-n128", "bench.local", {"n": 128, "degree": 8, "seed": 0}),
    BenchScenario(
        "e3-congest-n64",
        "bench.congest",
        {"n": 64, "degree": 8, "num_byz": 0, "behaviour": "silent", "seed": 0},
    ),
    BenchScenario(
        "e2-congest-n64",
        "bench.congest",
        {"n": 64, "degree": 8, "num_byz": 3, "behaviour": "beacon-flood", "seed": 0},
    ),
)


# --------------------------------------------------------------------------- #
# Harness
# --------------------------------------------------------------------------- #
def run_bench(
    scenarios: Optional[Sequence[BenchScenario]] = None,
    *,
    workers: int = 1,
    repeats: int = 3,
    artifact_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Execute the scenarios ``repeats`` times each and build a report dict.

    Wall-clocks come from the sweep runner's per-task execution metadata
    (the runner times every task it executes); the recorded figure is the
    minimum over the repeats, which is the stablest point estimate on a
    shared machine.  The deterministic counters (rounds/messages/bits) must
    agree across repeats -- a mismatch raises, because it would mean a task
    is not the pure function of its config the runner contract requires.
    """
    chosen = list(scenarios if scenarios is not None else SCENARIOS)
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    configs = [scenario.config() for scenario in chosen for _ in range(repeats)]
    runner = SweepRunner(workers=workers, artifact_dir=artifact_dir, force=True)
    results = runner.run(configs)
    metas = runner.last_metas

    rows: List[Dict[str, Any]] = []
    for i, scenario in enumerate(chosen):
        base = i * repeats
        repeat_results = results[base : base + repeats]
        for other in repeat_results[1:]:
            if other != repeat_results[0]:
                raise RuntimeError(
                    f"bench scenario {scenario.name!r} is not deterministic "
                    f"across repeats: {repeat_results[0]!r} != {other!r}"
                )
        walls = [
            meta["wall_clock_s"]
            for meta in metas[base : base + repeats]
            if meta is not None
        ]
        rows.append(
            {
                "name": scenario.name,
                "task": scenario.task,
                "params": dict(scenario.params),
                "wall_clock_s": round(min(walls), 4),
                "wall_clock_all": [round(w, 4) for w in walls],
                "result": repeat_results[0],
            }
        )
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": sys.version.split()[0],
        "workers": workers,
        "repeats": repeats,
        "scenarios": rows,
    }


def write_report(
    report: Dict[str, Any], directory: Union[str, Path], *, filename: Optional[str] = None
) -> Path:
    """Write ``report`` as ``BENCH_<date>.json`` in ``directory``."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    name = filename if filename is not None else f"{BENCH_PREFIX}{date.today().isoformat()}.json"
    path = root / name
    with path.open("w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_report(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a BENCH json file."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)


def find_previous_report(
    directory: Union[str, Path], *, exclude: Optional[Union[str, Path]] = None
) -> Optional[Path]:
    """Latest ``BENCH_*.json`` in ``directory`` (dates sort lexicographically)."""
    root = Path(directory)
    excluded = Path(exclude).resolve() if exclude is not None else None
    candidates = [
        path
        for path in sorted(root.glob(f"{BENCH_PREFIX}*.json"))
        if excluded is None or path.resolve() != excluded
    ]
    return candidates[-1] if candidates else None


def compare_reports(
    current: Dict[str, Any], previous: Dict[str, Any], *, threshold: float = 0.10
) -> List[Dict[str, Any]]:
    """Per-scenario diff of two reports, most recent first argument.

    Each row carries a ``status``:

    - ``ok``          within ±threshold of the previous wall-clock
    - ``faster``      improved by more than the threshold
    - ``regression``  slower by more than the threshold (a failure)
    - ``result-drift`` rounds/messages changed (a failure: determinism broke)
    - ``new``         scenario absent from the previous report
    """
    previous_by_name = {row["name"]: row for row in previous.get("scenarios", [])}
    rows: List[Dict[str, Any]] = []
    for row in current.get("scenarios", []):
        name = row["name"]
        prev = previous_by_name.get(name)
        if prev is None:
            rows.append(
                {
                    "scenario": name,
                    "previous_s": None,
                    "current_s": row["wall_clock_s"],
                    "ratio": None,
                    "status": "new",
                }
            )
            continue
        ratio = row["wall_clock_s"] / prev["wall_clock_s"] if prev["wall_clock_s"] else None
        if prev.get("result") != row.get("result"):
            status = "result-drift"
        elif ratio is not None and ratio > 1.0 + threshold:
            status = "regression"
        elif ratio is not None and ratio < 1.0 - threshold:
            status = "faster"
        else:
            status = "ok"
        rows.append(
            {
                "scenario": name,
                "previous_s": prev["wall_clock_s"],
                "current_s": row["wall_clock_s"],
                "ratio": round(ratio, 3) if ratio is not None else None,
                "status": status,
            }
        )
    return rows


def comparison_failed(rows: Sequence[Dict[str, Any]]) -> bool:
    """Whether any diff row is a failure (regression or determinism drift)."""
    return any(row["status"] in ("regression", "result-drift") for row in rows)


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable table of one bench report."""
    from repro.analysis.tables import render_table

    rows = [
        {
            "scenario": row["name"],
            "wall_clock_s": row["wall_clock_s"],
            "rounds": row["result"].get("rounds"),
            "messages": row["result"].get("messages"),
            "bits": row["result"].get("bits"),
        }
        for row in report["scenarios"]
    ]
    header = (
        f"bench ({report['repeats']} repeats, {report['workers']} workers, "
        f"created {report['created']})"
    )
    return header + "\n" + render_table(rows)


def render_comparison(rows: Sequence[Dict[str, Any]]) -> str:
    """Human-readable table of a comparison diff."""
    from repro.analysis.tables import render_table

    return render_table(list(rows))
