"""Network wrapper binding a graph to node identifiers and Byzantine roles."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.graphs.graph import Graph

__all__ = ["Network"]


@dataclass
class Network:
    """A graph together with the set of Byzantine nodes.

    The network object is what the engine executes on; it knows which nodes
    are Byzantine (the protocols themselves never do).
    """

    graph: Graph
    byzantine: FrozenSet[int] = frozenset()

    def __post_init__(self) -> None:
        self.byzantine = frozenset(self.byzantine)
        for b in self.byzantine:
            if not (0 <= b < self.graph.n):
                raise ValueError(f"Byzantine node {b} is not a node of the graph")

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.graph.n

    @property
    def honest(self) -> Tuple[int, ...]:
        """Indices of honest (good) nodes in increasing order."""
        return tuple(u for u in range(self.graph.n) if u not in self.byzantine)

    @property
    def num_byzantine(self) -> int:
        """Number of Byzantine nodes."""
        return len(self.byzantine)

    def is_byzantine(self, node: int) -> bool:
        """Whether ``node`` is Byzantine."""
        return node in self.byzantine

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """Neighbors of ``node``."""
        return self.graph.neighbors(node)

    def node_id(self, node: int) -> int:
        """Protocol-visible identifier of ``node``."""
        return self.graph.node_id(node)

    def honest_fraction(self) -> float:
        """Fraction of nodes that are honest."""
        if self.graph.n == 0:
            return 1.0
        return len(self.honest) / self.graph.n

    @classmethod
    def fully_honest(cls, graph: Graph) -> "Network":
        """Network with no Byzantine nodes (the benign case of Corollary 1)."""
        return cls(graph=graph, byzantine=frozenset())
