"""Churn schedules: declarative mid-run topology deltas.

A :class:`ChurnSchedule` maps round numbers to :class:`TopologyDelta`
instances.  The engine applies the delta for round ``r`` *before* the honest
phase of round ``r`` (and after the stop-condition check), so protocols
observe the new topology via their contexts for the whole round.

Deltas are purely structural: edge arrivals/departures plus node
leaves/joins.  A leaving node's incident edges are cut implicitly; a joining
node re-enters with whatever edges the delta (or later deltas) add for it.
Schedules are data, not behaviour -- they are built once per run from a
seeded generator (see :mod:`repro.scenarios.churn`) and are therefore
reproducible and JSON-round-trippable at the scenario layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

__all__ = ["TopologyDelta", "ChurnSchedule"]


@dataclass(frozen=True)
class TopologyDelta:
    """One round's worth of topology changes.

    Attributes
    ----------
    add_edges / remove_edges:
        Undirected edges as ``(u, v)`` index pairs.  Removal of an absent
        edge and addition of a present edge are ignored (idempotent), so
        generators need not track exact engine state.
    join_nodes:
        Node indices re-entering the network this round.  Only nodes that
        previously *left* may join (the index space is fixed at graph
        construction); a joining honest node gets a fresh protocol instance
        and context slot.
    leave_nodes:
        Node indices leaving the network this round.  All incident edges are
        cut; a leaving honest node's protocol is discarded and its
        in-flight messages are dropped (departed, not halted).
    """

    add_edges: Tuple[Tuple[int, int], ...] = ()
    remove_edges: Tuple[Tuple[int, int], ...] = ()
    join_nodes: Tuple[int, ...] = ()
    leave_nodes: Tuple[int, ...] = ()

    def __bool__(self) -> bool:
        return bool(
            self.add_edges or self.remove_edges or self.join_nodes or self.leave_nodes
        )


def _normalize_edges(edges: Iterable[Iterable[int]]) -> Tuple[Tuple[int, int], ...]:
    """Canonicalize an edge list to sorted int pairs (order-stable)."""
    out = []
    for edge in edges:
        a, b = edge
        a, b = int(a), int(b)
        if a == b:
            raise ValueError(f"churn edge ({a}, {b}) is a self-loop")
        out.append((a, b) if a < b else (b, a))
    return tuple(out)


@dataclass(frozen=True)
class ChurnSchedule:
    """Map from round number (>= 1) to the delta applied before that round."""

    deltas: Mapping[int, TopologyDelta] = field(default_factory=dict)

    def __post_init__(self) -> None:
        cleaned: Dict[int, TopologyDelta] = {}
        for round_number, delta in self.deltas.items():
            round_number = int(round_number)
            if round_number < 1:
                raise ValueError(
                    f"churn deltas apply from round 1 on; got round {round_number}"
                )
            if delta:
                cleaned[round_number] = delta
        object.__setattr__(self, "deltas", cleaned)

    @staticmethod
    def from_events(
        events: Mapping[int, Mapping[str, Iterable]],
    ) -> "ChurnSchedule":
        """Build a schedule from plain ``{round: {field: [...]}}`` data."""
        deltas: Dict[int, TopologyDelta] = {}
        for round_number, fields in events.items():
            deltas[int(round_number)] = TopologyDelta(
                add_edges=_normalize_edges(fields.get("add_edges", ())),
                remove_edges=_normalize_edges(fields.get("remove_edges", ())),
                join_nodes=tuple(int(u) for u in fields.get("join_nodes", ())),
                leave_nodes=tuple(int(u) for u in fields.get("leave_nodes", ())),
            )
        return ChurnSchedule(deltas)

    def delta_for_round(self, round_number: int) -> Optional[TopologyDelta]:
        """The delta to apply before ``round_number``, if any."""
        return self.deltas.get(round_number)

    @property
    def last_round(self) -> int:
        """The last round with a scheduled delta (0 when empty)."""
        return max(self.deltas, default=0)

    def rounds(self) -> Tuple[int, ...]:
        """Sorted rounds that carry a delta."""
        return tuple(sorted(self.deltas))

    def node_indices(self) -> Tuple[int, ...]:
        """Every node index referenced anywhere in the schedule (sorted)."""
        seen = set()
        for delta in self.deltas.values():
            for a, b in delta.add_edges:
                seen.add(a)
                seen.add(b)
            for a, b in delta.remove_edges:
                seen.add(a)
                seen.add(b)
            seen.update(delta.join_nodes)
            seen.update(delta.leave_nodes)
        return tuple(sorted(seen))

    def __bool__(self) -> bool:
        return bool(self.deltas)
