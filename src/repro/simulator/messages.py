"""Message objects and size accounting.

The paper distinguishes the LOCAL model (unbounded message size, Algorithm 1)
from the CONGEST-style "small message" regime of Algorithm 2, where a small
message carries ``O(log n)`` bits plus at most a constant number of node IDs
(footnote 1).  Because node IDs are drawn from a space whose size is
independent of ``n``, their length must be accounted separately from the
``O(log n)``-bit payload -- hence every :class:`Message` tracks both
``size_bits`` (non-ID payload bits) and ``num_ids`` (embedded identifiers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

__all__ = ["Message", "DeliveredMessage", "estimate_payload_bits"]


def estimate_payload_bits(payload: Any) -> int:
    """Conservative bit-size estimate of a structured payload.

    Integers cost their bit length (at least 1), floats 64 bits, booleans and
    ``None`` 1 bit, strings 8 bits per character, and containers the sum of
    their elements plus a small per-element framing cost.  Node IDs should be
    excluded from the payload passed here and counted via ``num_ids`` instead.
    """
    if payload is None or isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, payload.bit_length())
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        return max(1, 8 * len(payload))
    if isinstance(payload, (list, tuple, set, frozenset)):
        return max(1, sum(estimate_payload_bits(item) + 2 for item in payload))
    if isinstance(payload, dict):
        return max(
            1,
            sum(
                estimate_payload_bits(k) + estimate_payload_bits(v) + 2
                for k, v in payload.items()
            ),
        )
    # Fallback for dataclasses / arbitrary objects: use their repr length.
    return max(1, 8 * len(repr(payload)))


@dataclass(slots=True)
class Message:
    """A single message traveling over one edge in one round.

    Attributes
    ----------
    kind:
        Protocol-level tag (e.g. ``"beacon"``, ``"continue"``, ``"topology"``).
    payload:
        Arbitrary protocol data.  Honest protocols only place well-formed
        payloads here; Byzantine senders may place anything.
    size_bits:
        Number of non-ID payload bits (see :func:`estimate_payload_bits`).
    num_ids:
        Number of node identifiers embedded in the payload (e.g. the length
        of a beacon's path field).
    sender:
        Filled in by the engine upon delivery with the *true* index of the
        adjacent sender; protocols must rely on this rather than on any
        sender claim inside ``payload`` (the unforgeable-edge-ID assumption
        of Section 2).
    sender_id:
        The true protocol-visible identifier of the sender, also filled in by
        the engine at delivery time.
    """

    kind: str
    payload: Any = None
    size_bits: int = 0
    num_ids: int = 0
    sender: Optional[int] = None
    sender_id: Optional[int] = None

    @classmethod
    def make(cls, kind: str, payload: Any = None, *, num_ids: int = 0) -> "Message":
        """Construct a message, computing ``size_bits`` from the payload."""
        return cls(
            kind=kind,
            payload=payload,
            size_bits=estimate_payload_bits(payload),
            num_ids=num_ids,
        )

    def total_footprint(self, id_bits: int = 64) -> int:
        """Total size in bits if each embedded ID costs ``id_bits`` bits."""
        return self.size_bits + self.num_ids * id_bits

    def is_small(
        self, n: int, *, c_bits: float = 64.0, max_ids: Optional[int] = None
    ) -> bool:
        """Whether this message is "small" for network size ``n``.

        A small message contains ``O(log n)`` payload bits plus ``O(log n)``
        node IDs.  (The paper's footnote 1 says "a constant number of node
        IDs", but Algorithm 2's beacon path fields hold up to ``i + 2 =
        O(log n)`` identifiers, so the operative bound for the reproduction is
        logarithmically many IDs -- still polylogarithmic bits overall and in
        sharp contrast with Algorithm 1's poly(n)-sized views; see
        EXPERIMENTS.md.)  ``max_ids`` defaults to ``max(8, 2·log2 n)``.
        """
        import math

        log_n = math.log2(max(n, 2))
        id_budget = max_ids if max_ids is not None else max(8, int(math.ceil(2 * log_n)))
        return self.size_bits <= c_bits * log_n and self.num_ids <= id_budget

    def clone(self) -> "Message":
        """Shallow copy (payload shared) used when broadcasting one message to many neighbors."""
        return Message(
            kind=self.kind,
            payload=self.payload,
            size_bits=self.size_bits,
            num_ids=self.num_ids,
            sender=self.sender,
            sender_id=self.sender_id,
        )


class DeliveredMessage(Message):
    """Lightweight delivery envelope the engine hands to receiving protocols.

    Wraps a sender's outbox message without copying anything: the payload (and
    the size accounting derived from it) is shared with the original, and the
    true sender identity is stamped on the envelope itself.  One envelope is
    created per (sender, outbox message) pair and shared by every inbox it is
    delivered to, so a degree-``d`` broadcast costs one envelope instead of
    ``d`` clones.  Receivers must treat delivered messages as immutable.
    """

    __slots__ = ()

    def __init__(self, template: Message, sender: int, sender_id: int) -> None:
        self.kind = template.kind
        self.payload = template.payload
        self.size_bits = template.size_bits
        self.num_ids = template.num_ids
        self.sender = sender
        self.sender_id = sender_id
