"""Run metrics: per-round and per-node message statistics.

These feed experiments E2 and E10 (message-size claims) and the round
complexity analyses of E1/E12.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.simulator.messages import Message

__all__ = ["NodeMessageStats", "SimulationMetrics"]


@dataclass
class NodeMessageStats:
    """Aggregate statistics of the messages *sent* by one node."""

    messages_sent: int = 0
    bits_sent: int = 0
    ids_sent: int = 0
    max_message_bits: int = 0
    max_message_ids: int = 0

    def record(self, message: Message) -> None:
        """Account one sent message."""
        self.record_many(message, 1)

    def record_many(self, message: Message, copies: int) -> None:
        """Account ``copies`` identical sent messages (a broadcast)."""
        bits = message.size_bits
        ids = message.num_ids
        self.messages_sent += copies
        self.bits_sent += bits * copies
        self.ids_sent += ids * copies
        if bits > self.max_message_bits:
            self.max_message_bits = bits
        if ids > self.max_message_ids:
            self.max_message_ids = ids

    def sent_only_small_messages(
        self, n: int, *, c_bits: float = 64.0, max_ids: Optional[int] = None
    ) -> bool:
        """True if every message this node sent was small (see ``Message.is_small``)."""
        log_n = math.log2(max(n, 2))
        id_budget = max_ids if max_ids is not None else max(8, int(math.ceil(2 * log_n)))
        return (
            self.max_message_bits <= c_bits * log_n
            and self.max_message_ids <= id_budget
        )


@dataclass
class SimulationMetrics:
    """Metrics collected by the engine across a run."""

    rounds_executed: int = 0
    total_messages: int = 0
    total_bits: int = 0
    messages_per_round: List[int] = field(default_factory=list)
    per_node: Dict[int, NodeMessageStats] = field(default_factory=dict)
    decision_rounds: Dict[int, int] = field(default_factory=dict)
    # Churn accounting (all zero/empty for static runs): total topology
    # events applied, the rounds at which deltas fired, and the last such
    # round -- the anchor for the reconvergence metrics at the scenario tier.
    churn_events: int = 0
    churn_rounds: List[int] = field(default_factory=list)
    last_churn_round: Optional[int] = None

    def node_stats(self, node: int) -> NodeMessageStats:
        """Per-node stats record, created lazily."""
        if node not in self.per_node:
            self.per_node[node] = NodeMessageStats()
        return self.per_node[node]

    def record_send(self, node: int, message: Message) -> None:
        """Account one message sent by ``node`` in the current round.

        Raises
        ------
        RuntimeError
            If no round has been opened with :meth:`start_round` yet.  The
            per-round counter would otherwise silently drop the message and
            ``messages_per_round`` could under-report (experiments use its
            last entry to detect quiescence).
        """
        self.record_broadcast(node, message, 1)

    def record_broadcast(self, node: int, message: Message, copies: int) -> None:
        """Account ``copies`` deliveries of one message sent by ``node``.

        The engine calls this once per (sender, outbox message) pair with the
        number of edges the message crossed; it is equivalent to ``copies``
        individual :meth:`record_send` calls.  Raises ``RuntimeError`` before
        the first :meth:`start_round` (see :meth:`record_send`).
        """
        if not self.messages_per_round:
            raise RuntimeError(
                "record_send called before start_round(); open a round first "
                "so the per-round message count cannot under-report"
            )
        bits = message.size_bits
        ids = message.num_ids
        self.total_messages += copies
        self.total_bits += bits * copies
        self.messages_per_round[-1] += copies
        stats = self.per_node.get(node)
        if stats is None:
            stats = self.per_node[node] = NodeMessageStats()
        # ``NodeMessageStats.record_many``, inlined (this is called once per
        # (sender, outbox message) pair on the delivery hot path).
        stats.messages_sent += copies
        stats.bits_sent += bits * copies
        stats.ids_sent += ids * copies
        if bits > stats.max_message_bits:
            stats.max_message_bits = bits
        if ids > stats.max_message_ids:
            stats.max_message_ids = ids

    def start_round(self) -> None:
        """Open the accounting bucket of a new round."""
        self.messages_per_round.append(0)
        self.rounds_executed += 1

    def record_churn(self, round_number: int, events: int) -> None:
        """Account ``events`` topology changes applied before ``round_number``."""
        if events <= 0:
            return
        self.churn_events += events
        if not self.churn_rounds or self.churn_rounds[-1] != round_number:
            self.churn_rounds.append(round_number)
        self.last_churn_round = round_number

    def record_decision(self, node: int, round_number: int) -> None:
        """Record the first round at which ``node`` reported a decision."""
        self.decision_rounds.setdefault(node, round_number)

    def small_message_fraction(
        self,
        n: int,
        nodes: Optional[List[int]] = None,
        *,
        c_bits: float = 64.0,
        max_ids: Optional[int] = None,
    ) -> float:
        """Fraction of the given nodes that sent *only* small messages.

        Nodes that never sent a message count as small-message senders.
        """
        candidates = nodes if nodes is not None else sorted(self.per_node)
        if not candidates:
            return 1.0
        small = 0
        for node in candidates:
            stats = self.per_node.get(node)
            if stats is None or stats.sent_only_small_messages(
                n, c_bits=c_bits, max_ids=max_ids
            ):
                small += 1
        return small / len(candidates)

    def max_message_bits_over(self, nodes: Optional[List[int]] = None) -> int:
        """Largest single-message payload (bits) sent by any of the given nodes."""
        candidates = nodes if nodes is not None else sorted(self.per_node)
        best = 0
        for node in candidates:
            stats = self.per_node.get(node)
            if stats is not None:
                best = max(best, stats.max_message_bits)
        return best
