"""The synchronous round engine.

Execution of one round proceeds in the order required by the full-information
adversary model (Section 2):

1. every honest node's protocol is invoked with the messages delivered at the
   end of the previous round and produces its outbox (thereby fixing the
   honest random choices of the round);
2. the adversary observes all honest states and all honest outboxes and then
   produces the Byzantine outboxes;
3. all messages are delivered, each stamped with the true index and ID of the
   adjacent sender (unforgeable edge identity);
4. metrics are updated and the termination condition is evaluated.

The engine is protocol-agnostic: Algorithm 1, Algorithm 2, and every baseline
run on it unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.simulator.byzantine import Adversary, AdversaryView, ByzantineOutbox, SilentAdversary
from repro.simulator.messages import DeliveredMessage, Message
from repro.simulator.metrics import SimulationMetrics
from repro.simulator.network import Network
from repro.simulator.node import Broadcast, NodeContext, Outbox, Protocol
from repro.simulator.rng import split_seed

__all__ = ["SynchronousEngine", "RunResult"]

#: Factory producing a fresh protocol instance for an honest node.
ProtocolFactory = Callable[[NodeContext], Protocol]


@dataclass
class RunResult:
    """Outcome of a simulation run."""

    network: Network
    rounds_executed: int
    protocols: Dict[int, Protocol]
    metrics: SimulationMetrics
    completed: bool

    @property
    def honest_nodes(self) -> Tuple[int, ...]:
        """Indices of honest nodes."""
        return self.network.honest

    def estimates(self) -> Dict[int, Optional[float]]:
        """Map from honest node to its decided estimate (None if undecided)."""
        return {u: p.estimate if p.decided else None for u, p in self.protocols.items()}

    def decided_fraction(self) -> float:
        """Fraction of honest nodes that decided."""
        if not self.protocols:
            return 0.0
        decided = sum(1 for p in self.protocols.values() if p.decided)
        return decided / len(self.protocols)


class SynchronousEngine:
    """Round-synchronous executor for one protocol over one network."""

    def __init__(
        self,
        network: Network,
        protocol_factory: ProtocolFactory,
        *,
        adversary: Optional[Adversary] = None,
        seed: int = 0,
        max_rounds: int = 100_000,
        stop_condition: Optional[Callable[[Dict[int, Protocol], int], bool]] = None,
    ) -> None:
        """Create an engine.

        Parameters
        ----------
        network:
            The network (graph + Byzantine set) to execute on.
        protocol_factory:
            Called once per honest node with that node's :class:`NodeContext`
            to build its protocol instance.
        adversary:
            Byzantine behaviour; defaults to :class:`SilentAdversary`.
        seed:
            Master seed; per-node and adversary randomness is derived from it.
        max_rounds:
            Hard cap on the number of rounds (safety net).
        stop_condition:
            Optional predicate ``(protocols, round) -> bool``; when true the
            run stops.  The default stops when every honest node reports
            ``halted``.
        """
        self.network = network
        self.protocol_factory = protocol_factory
        self.adversary = adversary if adversary is not None else SilentAdversary()
        self.seed = seed
        self.max_rounds = max_rounds
        self.stop_condition = stop_condition

        graph = network.graph
        self._contexts: Dict[int, NodeContext] = {}
        self._protocols: Dict[int, Protocol] = {}
        for u in network.honest:
            ctx = NodeContext(
                index=u,
                node_id=graph.node_id(u),
                neighbors=graph.neighbors(u),
                neighbor_ids={v: graph.node_id(v) for v in graph.neighbors(u)},
                rng=random.Random(split_seed(seed, "node", u)),
                round=0,
            )
            self._contexts[u] = ctx
            self._protocols[u] = protocol_factory(ctx)
        self._adversary_rng = random.Random(split_seed(seed, "adversary"))
        self.adversary.setup(graph, network.byzantine, self._adversary_rng)
        self.metrics = SimulationMetrics()
        # Neighbor sets are immutable for the lifetime of a run; cache them
        # lazily instead of rebuilding a set per node per round.
        self._neighbor_sets: Dict[int, frozenset] = {}

    def _neighbor_set(self, node: int) -> frozenset:
        """Cached set of ``node``'s neighbors (outbox/adversary validation)."""
        cached = self._neighbor_sets.get(node)
        if cached is None:
            cached = frozenset(self.network.graph.neighbors(node))
            self._neighbor_sets[node] = cached
        return cached

    # ------------------------------------------------------------------ #
    @property
    def protocols(self) -> Dict[int, Protocol]:
        """Live honest protocol objects (read access, also used by adversaries)."""
        return self._protocols

    def _default_stop(self, protocols: Dict[int, Protocol], round_number: int) -> bool:
        return all(p.halted for p in protocols.values())

    def _validate_outbox(self, sender: int, outbox: Outbox) -> Outbox:
        """Drop messages addressed to non-neighbors (protocol bug guard)."""
        if not outbox:
            return outbox
        if isinstance(outbox, Broadcast):
            # The common fast path: a broadcast built straight from
            # ``ctx.neighbors`` is valid by construction (the tuple is the
            # engine's own); anything else is filtered per target.
            if outbox.targets is self._contexts[sender].neighbors:
                return outbox
            valid_targets = self._neighbor_set(sender)
            targets = tuple(t for t in outbox.targets if t in valid_targets)
            return Broadcast(outbox.message, targets) if targets else {}
        valid_targets = self._neighbor_set(sender)
        cleaned: Dict[int, List[Message]] = {}
        for target, msgs in outbox.items():
            if target in valid_targets and msgs:
                cleaned[target] = list(msgs)
        return cleaned

    def run(self, max_rounds: Optional[int] = None) -> RunResult:
        """Execute the protocol until termination and return the result."""
        graph = self.network.graph
        limit = max_rounds if max_rounds is not None else self.max_rounds
        stop = self.stop_condition if self.stop_condition is not None else self._default_stop

        # Inboxes to be delivered at the *start* of the next honest step.
        pending_inboxes: Dict[int, List[Message]] = {u: [] for u in range(graph.n)}

        # Round 0: on_start.
        self.metrics.start_round()
        honest_outboxes: Dict[int, Outbox] = {}
        for u, protocol in self._protocols.items():
            ctx = self._contexts[u]
            ctx.round = 0
            outbox = self._validate_outbox(u, protocol.on_start(ctx) or {})
            honest_outboxes[u] = outbox
        byz_outboxes = self._adversary_step(0, honest_outboxes, pending_inboxes)
        pending_inboxes = self._deliver(honest_outboxes, byz_outboxes)
        self._record_decisions(0)

        # ``executed`` is the last fully executed round (round 0 ran above);
        # the stop condition is always evaluated with it, whether the run ends
        # by stopping early, by exhausting the round budget, or immediately
        # when ``limit == 0``.
        completed = False
        executed = 0
        for round_number in range(1, limit + 1):
            if stop(self._protocols, executed):
                completed = True
                break
            self.metrics.start_round()
            honest_outboxes = {}
            for u, protocol in self._protocols.items():
                if protocol.halted:
                    honest_outboxes[u] = {}
                    continue
                ctx = self._contexts[u]
                ctx.round = round_number
                inbox = pending_inboxes.get(u, [])
                outbox = self._validate_outbox(u, protocol.on_round(ctx, inbox) or {})
                honest_outboxes[u] = outbox
            byz_outboxes = self._adversary_step(
                round_number, honest_outboxes, pending_inboxes
            )
            pending_inboxes = self._deliver(honest_outboxes, byz_outboxes)
            self._record_decisions(round_number)
            executed = round_number
        else:
            completed = stop(self._protocols, executed)

        return RunResult(
            network=self.network,
            rounds_executed=self.metrics.rounds_executed,
            protocols=self._protocols,
            metrics=self.metrics,
            completed=completed,
        )

    # ------------------------------------------------------------------ #
    def _adversary_step(
        self,
        round_number: int,
        honest_outboxes: Dict[int, Outbox],
        pending_inboxes: Dict[int, List[Message]],
    ) -> ByzantineOutbox:
        if not self.network.byzantine:
            return {}
        view = AdversaryView(
            round=round_number,
            graph=self.network.graph,
            byzantine=self.network.byzantine,
            honest_protocols=self._protocols,
            honest_outboxes=honest_outboxes,
            byzantine_inboxes={
                b: pending_inboxes.get(b, []) for b in self.network.byzantine
            },
            rng=self._adversary_rng,
        )
        raw = self.adversary.act(view) or {}
        # Byzantine nodes may only use their own incident edges.
        cleaned: ByzantineOutbox = {}
        for b, per_target in raw.items():
            if b not in self.network.byzantine:
                continue
            valid_targets = self._neighbor_set(b)
            cleaned[b] = {
                t: list(msgs)
                for t, msgs in per_target.items()
                if t in valid_targets and msgs
            }
        return cleaned

    def _deliver(
        self,
        honest_outboxes: Dict[int, Outbox],
        byz_outboxes: ByzantineOutbox,
    ) -> Dict[int, List[Message]]:
        graph = self.network.graph
        inboxes: Dict[int, List[Message]] = {}
        record_broadcast = self.metrics.record_broadcast

        def deliver_from(sender: int, outbox: Mapping[int, List[Message]]) -> None:
            sender_id = graph.node_id(sender)
            # One envelope per distinct outbox message: a broadcast that puts
            # the same Message object in every target's list is delivered as a
            # single shared, sender-stamped envelope instead of one clone per
            # edge, and is accounted once with its delivery count.  Delivered
            # messages are read-only by contract.
            if isinstance(outbox, Broadcast):
                targets = outbox.targets
                if not targets:
                    return
                stamped = DeliveredMessage(outbox.message, sender, sender_id)
                for target in targets:
                    bucket = inboxes.get(target)
                    if bucket is None:
                        bucket = inboxes[target] = []
                    bucket.append(stamped)
                record_broadcast(sender, stamped, len(targets))
                return
            envelopes: Dict[int, List] = {}
            for target, msgs in outbox.items():
                bucket = inboxes.get(target)
                if bucket is None:
                    bucket = inboxes[target] = []
                for msg in msgs:
                    entry = envelopes.get(id(msg))
                    if entry is None:
                        entry = envelopes[id(msg)] = [
                            DeliveredMessage(msg, sender, sender_id),
                            0,
                        ]
                    entry[1] += 1
                    bucket.append(entry[0])
            for stamped, copies in envelopes.values():
                record_broadcast(sender, stamped, copies)

        for sender, outbox in honest_outboxes.items():
            if outbox:
                deliver_from(sender, outbox)
        for sender, outbox in byz_outboxes.items():
            if outbox:
                deliver_from(sender, outbox)
        return inboxes

    def _record_decisions(self, round_number: int) -> None:
        for u, protocol in self._protocols.items():
            if protocol.decided and u not in self.metrics.decision_rounds:
                self.metrics.record_decision(u, round_number)
