"""The synchronous round engine.

Execution of one round proceeds in the order required by the full-information
adversary model (Section 2):

1. every honest node's protocol is invoked with the messages delivered at the
   end of the previous round and produces its outbox (thereby fixing the
   honest random choices of the round);
2. the adversary observes all honest states and all honest outboxes and then
   produces the Byzantine outboxes;
3. all messages are delivered, each stamped with the true index and ID of the
   adjacent sender (unforgeable edge identity);
4. metrics are updated and the termination condition is evaluated.

The engine is protocol-agnostic: Algorithm 1, Algorithm 2, and every baseline
run on it unchanged.

Hot-path layout
---------------
The run loop is *array-slotted*: protocols and contexts live in dense lists
indexed by node, an **active list** of non-halted nodes shrinks as protocols
halt (halting is permanent -- see :attr:`Protocol.halted` -- so halted nodes
are never re-tested), and decisions are recorded incrementally as each
protocol runs instead of re-scanning every protocol every round.

Delivery is *inverted* for the dominant all-broadcast case: instead of
appending one envelope per edge into per-target dict buckets, the engine
stores each sender's single shared envelope in a dense per-sender array and
each receiver materializes its inbox with one pass over its (sorted) neighbor
tuple.  Targeted sends -- Byzantine outboxes, or rounds in which some honest
node produced a non-broadcast outbox -- fall back to the classic per-target
delivery, preserving exact delivery order (ascending honest senders first,
then Byzantine senders).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.simulator.byzantine import Adversary, AdversaryView, ByzantineOutbox, SilentAdversary
from repro.simulator.messages import DeliveredMessage, Message
from repro.simulator.metrics import NodeMessageStats, SimulationMetrics
from repro.simulator.network import Network
from repro.simulator.node import Broadcast, NodeContext, Outbox, Protocol
from repro.simulator.rng import split_seed

__all__ = ["SynchronousEngine", "RunResult"]

#: Factory producing a fresh protocol instance for an honest node.
ProtocolFactory = Callable[[NodeContext], Protocol]


@dataclass
class RunResult:
    """Outcome of a simulation run."""

    network: Network
    rounds_executed: int
    protocols: Dict[int, Protocol]
    metrics: SimulationMetrics
    completed: bool

    @property
    def honest_nodes(self) -> Tuple[int, ...]:
        """Indices of honest nodes."""
        return self.network.honest

    def estimates(self) -> Dict[int, Optional[float]]:
        """Map from honest node to its decided estimate (None if undecided)."""
        return {u: p.estimate if p.decided else None for u, p in self.protocols.items()}

    def decided_fraction(self) -> float:
        """Fraction of honest nodes that decided."""
        if not self.protocols:
            return 0.0
        decided = sum(1 for p in self.protocols.values() if p.decided)
        return decided / len(self.protocols)


class SynchronousEngine:
    """Round-synchronous executor for one protocol over one network."""

    def __init__(
        self,
        network: Network,
        protocol_factory: ProtocolFactory,
        *,
        adversary: Optional[Adversary] = None,
        seed: int = 0,
        max_rounds: int = 100_000,
        stop_condition: Optional[Callable[[Dict[int, Protocol], int], bool]] = None,
    ) -> None:
        """Create an engine.

        Parameters
        ----------
        network:
            The network (graph + Byzantine set) to execute on.
        protocol_factory:
            Called once per honest node with that node's :class:`NodeContext`
            to build its protocol instance.
        adversary:
            Byzantine behaviour; defaults to :class:`SilentAdversary`.
        seed:
            Master seed; per-node and adversary randomness is derived from it.
        max_rounds:
            Hard cap on the number of rounds (safety net).
        stop_condition:
            Optional predicate ``(protocols, round) -> bool``; when true the
            run stops.  The default stops when every honest node reports
            ``halted``.
        """
        self.network = network
        self.protocol_factory = protocol_factory
        self.adversary = adversary if adversary is not None else SilentAdversary()
        self.seed = seed
        self.max_rounds = max_rounds
        self.stop_condition = stop_condition

        graph = network.graph
        adjacency = graph.adjacency
        node_ids = graph.node_ids
        # Unified per-graph neighbor table, built once and shared by the
        # protocol contexts, outbox validation, and the adversary edge
        # filter: ``_neighbors[u]`` is the graph's own sorted neighbor tuple,
        # ``_neighbor_sets[u]`` the matching frozenset, and
        # ``_neighbor_ids[u]`` the neighbor-index -> identifier map.
        self._neighbors: List[Tuple[int, ...]] = adjacency
        self._neighbor_sets: List[FrozenSet[int]] = [
            frozenset(nbrs) for nbrs in adjacency
        ]
        self._neighbor_ids: List[Dict[int, int]] = [
            {v: node_ids[v] for v in nbrs} for nbrs in adjacency
        ]
        self._contexts: Dict[int, NodeContext] = {}
        self._protocols: Dict[int, Protocol] = {}
        for u in network.honest:
            ctx = NodeContext(
                index=u,
                node_id=node_ids[u],
                neighbors=adjacency[u],
                neighbor_ids=self._neighbor_ids[u],
                rng=random.Random(split_seed(seed, "node", u)),
                round=0,
            )
            self._contexts[u] = ctx
            self._protocols[u] = protocol_factory(ctx)
        self._adversary_rng = random.Random(split_seed(seed, "adversary"))
        self.adversary.setup(graph, network.byzantine, self._adversary_rng)
        self.metrics = SimulationMetrics()

    # ------------------------------------------------------------------ #
    @property
    def protocols(self) -> Dict[int, Protocol]:
        """Live honest protocol objects (read access, also used by adversaries)."""
        return self._protocols

    @property
    def decided_count(self) -> int:
        """Number of honest nodes whose decision has been recorded (O(1)).

        Maintained incrementally as protocols run; stop conditions can test
        "all decided" against ``len(engine.protocols)`` without scanning every
        protocol every round.
        """
        return len(self.metrics.decision_rounds)

    def _validate_outbox(self, sender: int, outbox: Outbox) -> Outbox:
        """Drop messages addressed to non-neighbors (protocol bug guard)."""
        if not outbox:
            return outbox
        if isinstance(outbox, Broadcast):
            # The common fast path: a broadcast built straight from
            # ``ctx.neighbors`` is valid by construction (the tuple is the
            # engine's own); anything else is filtered per target.
            if outbox.targets is self._contexts[sender].neighbors:
                return outbox
            valid_targets = self._neighbor_sets[sender]
            targets = tuple(t for t in outbox.targets if t in valid_targets)
            return Broadcast(outbox.message, targets) if targets else {}
        valid_targets = self._neighbor_sets[sender]
        cleaned: Dict[int, List[Message]] = {}
        for target, msgs in outbox.items():
            if target in valid_targets and msgs:
                cleaned[target] = list(msgs)
        return cleaned

    def run(self, max_rounds: Optional[int] = None) -> RunResult:
        """Execute the protocol until termination and return the result."""
        graph = self.network.graph
        n = graph.n
        node_ids = graph.node_ids
        limit = max_rounds if max_rounds is not None else self.max_rounds
        stop = self.stop_condition
        metrics = self.metrics
        record_broadcast = metrics.record_broadcast
        decision_rounds = metrics.decision_rounds
        nbrs = self._neighbors
        protocols_map = self._protocols
        byzantine = self.network.byzantine
        track_adversary = bool(byzantine)

        # Dense per-node slots; the active list holds the non-halted honest
        # nodes in ascending order and shrinks as protocols halt.
        proto_list: List[Optional[Protocol]] = [None] * n
        ctx_list: List[Optional[NodeContext]] = [None] * n
        for u, protocol in protocols_map.items():
            proto_list[u] = protocol
            ctx_list[u] = self._contexts[u]
        active: List[int] = list(protocols_map)

        # Honest outboxes as shown to the adversary: one persistent dict in
        # honest-node order whose entries are refreshed for active nodes
        # (halted nodes keep their {} entry); a shallow per-round snapshot is
        # handed to the adversary view.
        adv_outboxes: Dict[int, Outbox] = (
            {u: {} for u in protocols_map} if track_adversary else {}
        )

        # Delivery state of the *previous* round.  ``env[v]`` holds v's
        # shared broadcast envelope (inverted delivery), ``extra`` the
        # targeted envelopes appended after the broadcasts; ``slow`` replaces
        # both with classic per-target buckets whenever some honest outbox
        # was not a full-neighborhood broadcast.
        env: List[Optional[DeliveredMessage]] = [None] * n
        extra: Dict[int, List[Message]] = {}
        slow: Optional[Dict[int, List[Message]]] = None

        def run_phase(round_number: int, nodes: List[int], start: bool) -> Tuple[
            List[Tuple[int, Outbox]], bool, bool
        ]:
            """Run one honest phase; returns (deliveries, fast, any_halted)."""
            deliveries: List[Tuple[int, Outbox]] = []
            fast = True
            any_halted = False
            for u in nodes:
                protocol = proto_list[u]
                ctx = ctx_list[u]
                ctx.round = round_number
                if start:
                    outbox = protocol.on_start(ctx)
                else:
                    if slow is not None:
                        inbox = slow.get(u, [])
                    else:
                        inbox = [e for v in nbrs[u] if (e := env[v]) is not None]
                        ex = extra.get(u)
                        if ex:
                            inbox += ex
                    outbox = protocol.on_round(ctx, inbox)
                # Dispatch without ever calling ``Broadcast.__bool__``: the
                # dominant case is a full-neighborhood Broadcast built from
                # the engine's own neighbor tuple, valid by construction.
                if type(outbox) is Broadcast:
                    targets = outbox.targets
                    if targets is ctx.neighbors:
                        if targets:
                            deliveries.append((u, outbox))
                    else:
                        outbox = self._validate_outbox(u, outbox)
                        if outbox:
                            fast = False
                            deliveries.append((u, outbox))
                elif outbox:
                    outbox = self._validate_outbox(u, outbox)
                    if outbox:
                        fast = False
                        deliveries.append((u, outbox))
                else:
                    outbox = {}
                if track_adversary:
                    adv_outboxes[u] = outbox
                if u not in decision_rounds and protocol.decided:
                    decision_rounds[u] = round_number
                if protocol.halted:
                    any_halted = True
            return deliveries, fast, any_halted

        def deliver_fast(
            deliveries: List[Tuple[int, Outbox]]
        ) -> List[Optional[DeliveredMessage]]:
            """Inverted delivery: one shared envelope per broadcasting sender.

            Receivers materialize their inboxes with one pass over their
            neighbor tuples, so a broadcast round costs one envelope and one
            accounting update per *sender* here plus one C-speed list
            comprehension per *receiver*, instead of per-edge dict bucket
            updates.  The metrics totals are accumulated locally and flushed
            once per round (``record_broadcast``, inlined and batched).
            """
            new_env: List[Optional[DeliveredMessage]] = [None] * n
            if not deliveries:
                return new_env
            per_node = metrics.per_node
            round_messages = 0
            round_bits = 0
            for u, outbox in deliveries:
                message = outbox.message
                stamped = DeliveredMessage(message, u, node_ids[u])
                new_env[u] = stamped
                copies = len(outbox.targets)
                bits = message.size_bits
                ids = message.num_ids
                round_messages += copies
                round_bits += bits * copies
                stats = per_node.get(u)
                if stats is None:
                    stats = per_node[u] = NodeMessageStats()
                stats.messages_sent += copies
                stats.bits_sent += bits * copies
                stats.ids_sent += ids * copies
                if bits > stats.max_message_bits:
                    stats.max_message_bits = bits
                if ids > stats.max_message_ids:
                    stats.max_message_ids = ids
            metrics.total_messages += round_messages
            metrics.total_bits += round_bits
            metrics.messages_per_round[-1] += round_messages
            return new_env

        def deliver_targeted(
            byz_outboxes: ByzantineOutbox, buckets: Dict[int, List[Message]]
        ) -> None:
            """Classic per-target delivery of Byzantine outboxes into buckets."""
            for b, per_target in byz_outboxes.items():
                sender_id = node_ids[b]
                envelopes: Dict[int, List] = {}
                for target, msgs in per_target.items():
                    bucket = buckets.get(target)
                    if bucket is None:
                        bucket = buckets[target] = []
                    for msg in msgs:
                        entry = envelopes.get(id(msg))
                        if entry is None:
                            entry = envelopes[id(msg)] = [
                                DeliveredMessage(msg, b, sender_id),
                                0,
                            ]
                        entry[1] += 1
                        bucket.append(entry[0])
                for stamped, copies in envelopes.values():
                    record_broadcast(b, stamped, copies)

        def deliver_slow(
            deliveries: List[Tuple[int, Outbox]], byz_outboxes: ByzantineOutbox
        ) -> Dict[int, List[Message]]:
            """Classic delivery for rounds with non-broadcast honest outboxes.

            One envelope per distinct outbox message: a broadcast that puts
            the same Message object in every target's list is delivered as a
            single shared, sender-stamped envelope instead of one clone per
            edge, and is accounted once with its delivery count.  Delivered
            messages are read-only by contract.
            """
            inboxes: Dict[int, List[Message]] = {}

            def deliver_from(sender: int, outbox: Mapping[int, List[Message]]) -> None:
                sender_id = node_ids[sender]
                if isinstance(outbox, Broadcast):
                    targets = outbox.targets
                    if not targets:
                        return
                    stamped = DeliveredMessage(outbox.message, sender, sender_id)
                    for target in targets:
                        bucket = inboxes.get(target)
                        if bucket is None:
                            bucket = inboxes[target] = []
                        bucket.append(stamped)
                    record_broadcast(sender, stamped, len(targets))
                    return
                envelopes: Dict[int, List] = {}
                for target, msgs in outbox.items():
                    bucket = inboxes.get(target)
                    if bucket is None:
                        bucket = inboxes[target] = []
                    for msg in msgs:
                        entry = envelopes.get(id(msg))
                        if entry is None:
                            entry = envelopes[id(msg)] = [
                                DeliveredMessage(msg, sender, sender_id),
                                0,
                            ]
                        entry[1] += 1
                        bucket.append(entry[0])
                for stamped, copies in envelopes.values():
                    record_broadcast(sender, stamped, copies)

            for sender, outbox in deliveries:
                deliver_from(sender, outbox)
            for sender, outbox in byz_outboxes.items():
                if outbox:
                    deliver_from(sender, outbox)
            return inboxes

        def adversary_step(round_number: int) -> ByzantineOutbox:
            if not track_adversary:
                return {}
            # Byzantine inboxes are materialized from the previous round's
            # delivery state exactly like honest inboxes.
            byz_inboxes: Dict[int, List[Message]] = {}
            for b in byzantine:
                if slow is not None:
                    byz_inboxes[b] = slow.get(b, [])
                else:
                    inbox = [e for v in nbrs[b] if (e := env[v]) is not None]
                    ex = extra.get(b)
                    if ex:
                        inbox += ex
                    byz_inboxes[b] = inbox
            view = AdversaryView(
                round=round_number,
                graph=graph,
                byzantine=byzantine,
                honest_protocols=protocols_map,
                honest_outboxes=dict(adv_outboxes),
                byzantine_inboxes=byz_inboxes,
                rng=self._adversary_rng,
            )
            raw = self.adversary.act(view) or {}
            # Byzantine nodes may only use their own incident edges.
            cleaned: ByzantineOutbox = {}
            neighbor_sets = self._neighbor_sets
            for b, per_target in raw.items():
                if b not in byzantine:
                    continue
                valid_targets = neighbor_sets[b]
                cleaned[b] = {
                    t: list(msgs)
                    for t, msgs in per_target.items()
                    if t in valid_targets and msgs
                }
            return cleaned

        def compact_active(nodes: List[int]) -> List[int]:
            """Drop newly halted nodes; their adversary-visible outbox
            becomes {} from the next round on (they no longer send), exactly
            as when the old engine re-tested every node every round."""
            still_active: List[int] = []
            for u in nodes:
                if proto_list[u].halted:
                    if track_adversary:
                        adv_outboxes[u] = {}
                else:
                    still_active.append(u)
            return still_active

        # Round 0: on_start for every honest node.
        metrics.start_round()
        deliveries, fast, any_halted = run_phase(0, active, True)
        byz_outboxes = adversary_step(0)
        if fast:
            env = deliver_fast(deliveries)
            extra = {}
            slow = None
            if byz_outboxes:
                deliver_targeted(byz_outboxes, extra)
        else:
            slow = deliver_slow(deliveries, byz_outboxes)
        if any_halted:
            active = compact_active(active)

        # ``executed`` is the last fully executed round (round 0 ran above);
        # the stop condition is always evaluated with it, whether the run ends
        # by stopping early, by exhausting the round budget, or immediately
        # when ``limit == 0``.
        completed = False
        executed = 0
        for round_number in range(1, limit + 1):
            if (not active) if stop is None else stop(protocols_map, executed):
                completed = True
                break
            metrics.start_round()
            deliveries, fast, any_halted = run_phase(round_number, active, False)
            byz_outboxes = adversary_step(round_number)
            if fast:
                env = deliver_fast(deliveries)
                extra = {}
                slow = None
                if byz_outboxes:
                    deliver_targeted(byz_outboxes, extra)
            else:
                slow = deliver_slow(deliveries, byz_outboxes)
            if any_halted:
                active = compact_active(active)
            executed = round_number
        else:
            completed = (
                (not active) if stop is None else stop(protocols_map, executed)
            )

        return RunResult(
            network=self.network,
            rounds_executed=metrics.rounds_executed,
            protocols=protocols_map,
            metrics=metrics,
            completed=completed,
        )
